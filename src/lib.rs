//! # janus — automatic dynamic binary parallelisation
//!
//! Facade crate for the Janus reproduction (Zhou & Jones, CGO 2019). It
//! re-exports the public API of every subsystem crate so applications can use
//! a single dependency:
//!
//! * [`ir`] — the Janus Virtual Architecture (instructions, encoding, JBin).
//! * [`vm`] — the guest machine, interpreter and shared system library.
//! * [`compile`] — the mini optimising compiler used to produce binaries.
//! * [`analysis`] — the static binary analyser (CFG, SSA, loops, dependence).
//! * [`schedule`] — rewrite rules and rewrite schedules.
//! * [`profile`] — statically-driven coverage and dependence profiling.
//! * [`dbm`] — the dynamic binary modifier and parallel runtime.
//! * [`spec`] — Block-STM-style speculative DOACROSS loop execution.
//! * [`core`] — the end-to-end Janus pipeline.
//! * [`serve`] — the multi-tenant serving layer: two-tier content-addressed
//!   artifact cache (memory LRU over a persistent disk store) plus a fair
//!   job executor with tenant quotas and deadline admission.
//! * [`obs`] — the flight recorder: structured tracing spans, latency
//!   histograms, and Chrome-trace/JSONL/Prometheus exporters, threaded
//!   through the serving and execution stack behind
//!   [`serve::ServeConfig::trace`] / [`core::JanusConfig::trace`].
//! * [`workloads`] — the synthetic SPEC-like benchmark programs.
//!
//! `docs/ARCHITECTURE.md` in the repository is the systems-level tour of
//! how these crates fit together — the end-to-end pipeline, the two
//! execution backends and why their modelled numbers are identical, and
//! the artifact lifecycle from content digest through memory cache to the
//! persistent disk store.
//!
//! # Quickstart
//!
//! ```
//! use janus::core::{Janus, JanusConfig};
//! use janus::workloads::workload;
//!
//! // Build a DOALL workload binary (training scale) and parallelise it.
//! let w = workload("470.lbm").expect("workload exists");
//! let binary = janus::compile::Compiler::new().compile(&w.train_program).expect("compiles");
//! let janus = Janus::with_config(JanusConfig { threads: 4, ..JanusConfig::default() });
//! let report = janus.run(&binary, &[]).expect("runs to completion");
//! assert!(report.outputs_match);
//! assert!(report.speedup() > 1.0);
//! ```
//!
//! # Serving many invocations
//!
//! For batch and multi-tenant workloads, open a serving session instead of
//! calling [`core::Janus::run`] per invocation: the session caches each
//! binary's analysis and rewrite schedule by content digest (built exactly
//! once, however many clients submit it) and executes jobs concurrently on
//! a worker pool that schedules tenants fairly by deficit round-robin.
//! Set [`serve::ServeConfig::store_dir`] to persist every artifact to a
//! content-addressed disk store shared across sessions and processes — a
//! restarted session warm-starts from it with zero pipeline rebuilds.
//!
//! ```
//! use std::sync::Arc;
//! use janus::core::Janus;
//! use janus::serve::{JobSpec, ServeConfig, ServeSession};
//! use janus::workloads::workload;
//!
//! let w = workload("470.lbm").expect("workload exists");
//! let binary = Arc::new(
//!     janus::compile::Compiler::new().compile(&w.train_program).expect("compiles"),
//! );
//! let handle = Janus::new().serve(ServeConfig::default());
//! handle.submit(JobSpec::new(binary.clone())).expect("admitted");
//! handle.submit(JobSpec::new(binary)).expect("admitted");
//! let outcomes = handle.join();
//! assert!(outcomes.iter().all(|(_, r)| r.is_ok()));
//! assert_eq!(handle.stats().cache_misses, 1, "one analysis for two jobs");
//! ```

pub use janus_analysis as analysis;
pub use janus_compile as compile;
pub use janus_core as core;
pub use janus_dbm as dbm;
pub use janus_ir as ir;
pub use janus_obs as obs;
pub use janus_profile as profile;
pub use janus_schedule as schedule;
pub use janus_serve as serve;
pub use janus_spec as spec;
pub use janus_vm as vm;
pub use janus_workloads as workloads;
