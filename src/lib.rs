//! # janus — automatic dynamic binary parallelisation
//!
//! Facade crate for the Janus reproduction (Zhou & Jones, CGO 2019). It
//! re-exports the public API of every subsystem crate so applications can use
//! a single dependency:
//!
//! * [`ir`] — the Janus Virtual Architecture (instructions, encoding, JBin).
//! * [`vm`] — the guest machine, interpreter and shared system library.
//! * [`compile`] — the mini optimising compiler used to produce binaries.
//! * [`analysis`] — the static binary analyser (CFG, SSA, loops, dependence).
//! * [`schedule`] — rewrite rules and rewrite schedules.
//! * [`profile`] — statically-driven coverage and dependence profiling.
//! * [`dbm`] — the dynamic binary modifier and parallel runtime.
//! * [`spec`] — Block-STM-style speculative DOACROSS loop execution.
//! * [`core`] — the end-to-end Janus pipeline.
//! * [`workloads`] — the synthetic SPEC-like benchmark programs.
//!
//! # Quickstart
//!
//! ```
//! use janus::core::{Janus, JanusConfig};
//! use janus::workloads::workload;
//!
//! // Build a DOALL workload binary (training scale) and parallelise it.
//! let w = workload("470.lbm").expect("workload exists");
//! let binary = janus::compile::Compiler::new().compile(&w.train_program).expect("compiles");
//! let janus = Janus::with_config(JanusConfig { threads: 4, ..JanusConfig::default() });
//! let report = janus.run(&binary, &[]).expect("runs to completion");
//! assert!(report.outputs_match);
//! assert!(report.speedup() > 1.0);
//! ```

pub use janus_analysis as analysis;
pub use janus_compile as compile;
pub use janus_core as core;
pub use janus_dbm as dbm;
pub use janus_ir as ir;
pub use janus_profile as profile;
pub use janus_schedule as schedule;
pub use janus_spec as spec;
pub use janus_vm as vm;
pub use janus_workloads as workloads;
