//! # janus-core — the end-to-end Janus pipeline
//!
//! This crate ties the subsystems together into the automatic-parallelisation
//! flow of Figure 1(a) of the paper:
//!
//! 1. **Static analysis** ([`janus_analysis::analyze`]) over the stripped
//!    binary, producing loop classifications.
//! 2. Optional **statically-driven profiling** on a training input
//!    ([`janus_profile`]): loop coverage plus memory-dependence observation.
//! 3. **Loop selection**: one loop per nest, preferring outermost static
//!    DOALL loops and falling back to dynamic DOALL loops when runtime checks
//!    are enabled; low-coverage loops are filtered when profile data is
//!    available.
//! 4. **Rewrite-schedule generation** ([`Janus::generate_schedule`]): the selected
//!    loops are encoded as `LOOP_INIT` / `LOOP_FINISH` / `LOOP_UPDATE_BOUND` /
//!    `MEM_*` / `TX_*` rules; may-dependent loops additionally carry a
//!    `SPECULATE` rule that routes them to the Block-STM-style
//!    iteration-level speculation engine (`janus-spec`).
//! 5. **Execution** under the dynamic binary modifier ([`janus_dbm::Dbm`]),
//!    compared against native execution of the same process.
//!
//! The four optimisation levels evaluated in Figure 7 map onto
//! [`OptimisationMode`]: DynamoRIO-only, statically-driven, statically-driven
//! with profile guidance, and full Janus (profile + runtime checks +
//! speculation).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use janus_analysis::{analyze, AnalysisError, BinaryAnalysis, LoopCategory, LoopInfo, VarRef};
use janus_dbm::{Dbm, DbmError, DbmRunResult};
use janus_ir::{Cond, JBinary};
use janus_obs::Recorder;
use janus_profile::{generate_profiling_schedule, profile, ProfileData};
use janus_schedule::{RewriteRule, RewriteSchedule, RuleId};
use janus_vm::{Process, RunResult, Vm, VmError};
use std::fmt;

pub use janus_dbm::{BackendKind, DbmConfig, PreparedDbm, SideSpec, SpecCommitMode, VarSpec};

/// The optimisation levels evaluated in the paper's Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimisationMode {
    /// Run under the DBM with an empty rewrite schedule (overhead baseline).
    DynamoRioOnly,
    /// Parallelise every statically proven DOALL loop; no profile guidance,
    /// no runtime checks.
    StaticallyDriven,
    /// Statically proven DOALL loops filtered by profile coverage.
    StaticallyDrivenProfile,
    /// Full Janus: profile guidance plus runtime checks and speculation,
    /// covering dynamic DOALL loops as well.
    #[default]
    Full,
}

impl OptimisationMode {
    /// Whether this mode uses profile information.
    #[must_use]
    pub fn uses_profile(self) -> bool {
        matches!(
            self,
            OptimisationMode::StaticallyDrivenProfile | OptimisationMode::Full
        )
    }

    /// Whether this mode enables runtime checks and speculation.
    #[must_use]
    pub fn uses_runtime_checks(self) -> bool {
        matches!(self, OptimisationMode::Full)
    }

    /// Human-readable label (matching the legend of Figure 7).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OptimisationMode::DynamoRioOnly => "DynamoRIO",
            OptimisationMode::StaticallyDriven => "Statically-Driven",
            OptimisationMode::StaticallyDrivenProfile => "Statically-Driven + Profile",
            OptimisationMode::Full => "Janus",
        }
    }
}

/// Configuration of a Janus run.
///
/// Not `Copy` (the [`trace`](JanusConfig::trace) recorder is a shared
/// handle); clone it where a copy was previously implicit.
#[derive(Debug, Clone, PartialEq)]
pub struct JanusConfig {
    /// Number of threads for parallel loops.
    pub threads: u32,
    /// Execution backend for parallel loops: the deterministic virtual-time
    /// simulator (default; reproduces the paper's figures bit-for-bit) or
    /// real OS worker threads (`BackendKind::NativeThreads`; identical guest
    /// results plus wall-clock measurements). Defaults to the `JANUS_BACKEND`
    /// environment variable when set.
    pub backend: BackendKind,
    /// Which parts of the pipeline to enable.
    pub mode: OptimisationMode,
    /// Loops with profile coverage below this fraction are not parallelised
    /// (only applies when profiling is enabled).
    pub coverage_threshold: f64,
    /// Attempt may-dependent (`Speculative`) loops under the Block-STM-style
    /// iteration-level speculation engine (`janus-spec`). Only takes effect
    /// in modes with runtime checks enabled; when `false`, loops with
    /// data-dependent accesses are never selected and run sequentially
    /// (conservative even where the seed pipeline would have chunked an
    /// unknown-access loop without verifying its independence).
    pub speculation: bool,
    /// Adaptive execution: let the DBM's per-loop tuner pick sequential vs
    /// parallel execution and the chunk count from measured wall time
    /// (see [`DbmConfig::adaptive`]). Guest results and `outputs_match` are
    /// unaffected; modelled cycles may differ when the tuner retargets a
    /// chunk count, so figure reproduction keeps this off. `false` here
    /// still honours the `JANUS_ADAPTIVE` environment variable through
    /// [`DbmConfig::default`]; setting it `true` forces adaptation on.
    pub adaptive: bool,
    /// Overrides for the DBM cost model.
    pub dbm: DbmConfig,
    /// Flight recorder the pipeline and the execution backends emit
    /// structured events to: analysis/profile/schedule spans from
    /// [`Janus::prepare`], per-chunk run/merge spans from both execution
    /// backends, and incarnation events from the racing speculation pool.
    /// Defaults to the null recorder — disabled, with a hot-path cost of
    /// one branch per emission site. Attach
    /// [`Recorder::enabled`](janus_obs::Recorder::enabled) and export via
    /// its `chrome_trace`/`jsonl`/`prometheus_text` methods.
    pub trace: Recorder,
}

impl Default for JanusConfig {
    fn default() -> Self {
        JanusConfig {
            threads: 8,
            backend: BackendKind::from_env(),
            mode: OptimisationMode::Full,
            coverage_threshold: 0.02,
            speculation: true,
            adaptive: false,
            dbm: DbmConfig::default(),
            trace: Recorder::default(),
        }
    }
}

/// Errors raised by the pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum JanusError {
    /// Static analysis failed.
    Analysis(AnalysisError),
    /// Native (baseline) execution failed.
    Native(VmError),
    /// Execution under the DBM failed.
    Dbm(DbmError),
}

impl fmt::Display for JanusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JanusError::Analysis(e) => write!(f, "static analysis failed: {e}"),
            JanusError::Native(e) => write!(f, "native execution failed: {e}"),
            JanusError::Dbm(e) => write!(f, "parallel execution failed: {e}"),
        }
    }
}

impl std::error::Error for JanusError {}

impl From<AnalysisError> for JanusError {
    fn from(e: AnalysisError) -> Self {
        JanusError::Analysis(e)
    }
}
impl From<VmError> for JanusError {
    fn from(e: VmError) -> Self {
        JanusError::Native(e)
    }
}
impl From<DbmError> for JanusError {
    fn from(e: DbmError) -> Self {
        JanusError::Dbm(e)
    }
}

/// The front half of the pipeline for one binary: everything derivable from
/// the binary (plus an optional training input) *before* any measured run —
/// static analysis, the optional profile, loop selection and the generated
/// rewrite schedule, keyed by the binary's content digest.
///
/// This is the unit a serving layer caches: building it once per distinct
/// binary and re-executing it on many inputs is exactly the amortisation the
/// rewrite-schedule design exists for. All fields are plain data
/// (`Clone + Send + Sync`), so an `Arc<PipelineArtifacts>` can be shared
/// across worker threads freely.
///
/// # Persistence
///
/// [`PipelineArtifacts::to_bytes`] / [`PipelineArtifacts::from_bytes`]
/// serialise the *executable* subset — digests, loop selection and the
/// rewrite schedule (which has its own stable byte format) — so a disk
/// store can share one preparation across processes and restarts. The
/// intermediate `analysis` and `profile` are deliberately **not**
/// persisted: the schedule already encodes every decision derived from
/// them (that compaction is the paper's central artifact design), so a
/// deserialised value carries `analysis: None`, `profile: None` and is
/// every bit as executable as a freshly built one.
#[derive(Debug, Clone)]
pub struct PipelineArtifacts {
    /// Content digest of the binary the artifacts were derived from
    /// ([`JBinary::content_digest`]).
    pub binary_digest: u64,
    /// Static analysis of the binary. `None` when the artifacts were
    /// deserialised from a persistent store ([`PipelineArtifacts::from_bytes`]):
    /// execution needs only the schedule, and the analysis is re-derivable
    /// from the binary with [`Janus::analyze`] when a caller wants it.
    pub analysis: Option<BinaryAnalysis>,
    /// Profile data, when the configured mode profiles. `None` for
    /// deserialised artifacts (see `analysis`).
    pub profile: Option<ProfileData>,
    /// Loop ids selected for parallelisation.
    pub selected_loops: Vec<usize>,
    /// The subset of `selected_loops` scheduled for iteration-level
    /// speculation (`SPECULATE` rules).
    pub speculative_loops: Vec<usize>,
    /// The generated rewrite schedule.
    pub schedule: RewriteSchedule,
    /// Serialised schedule size in bytes.
    pub schedule_size: u64,
    /// Serialised binary size in bytes (for the Figure 10 ratio).
    pub binary_size: u64,
}

/// Version of the serialised [`PipelineArtifacts`] container format
/// ([`PipelineArtifacts::to_bytes`]). Independent of
/// [`janus_schedule::SCHEDULE_FORMAT_VERSION`], which versions the embedded
/// schedule payload; both are recorded in the header and both must match for
/// [`PipelineArtifacts::from_bytes`] to load an image.
pub const PIPELINE_ARTIFACTS_FORMAT_VERSION: u32 = 1;

const ARTIFACT_MAGIC: &[u8; 4] = b"JPAF";

/// Why a serialised [`PipelineArtifacts`] image could not be decoded.
///
/// The distinction matters to persistent stores: a [`VersionMismatch`]
/// entry was written by a different (older or newer) build and is simply
/// stale — rebuild it, nothing is wrong with the medium — while
/// [`Malformed`] / [`DigestMismatch`] mean the bytes themselves are not
/// what was written (truncation, bit rot, torn write) and the entry should
/// be quarantined for inspection rather than silently deleted.
///
/// [`VersionMismatch`]: ArtifactDecodeError::VersionMismatch
/// [`Malformed`]: ArtifactDecodeError::Malformed
/// [`DigestMismatch`]: ArtifactDecodeError::DigestMismatch
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArtifactDecodeError {
    /// The byte stream is truncated or structurally invalid.
    Malformed {
        /// Human-readable description.
        reason: String,
    },
    /// The image was written under a different container or schedule format
    /// version. Stale, not corrupt: rebuild from the binary.
    VersionMismatch {
        /// Which header field mismatched (`"artifact"` or `"schedule"`).
        kind: &'static str,
        /// The version this build reads.
        expected: u32,
        /// The version found in the image.
        found: u32,
    },
    /// The embedded schedule's recomputed content digest does not match the
    /// digest recorded in the header — the payload was altered after it was
    /// written.
    DigestMismatch {
        /// Digest recorded in the header at write time.
        expected: u64,
        /// Digest recomputed from the embedded schedule bytes.
        found: u64,
    },
}

impl fmt::Display for ArtifactDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactDecodeError::Malformed { reason } => {
                write!(f, "malformed pipeline-artifact image: {reason}")
            }
            ArtifactDecodeError::VersionMismatch {
                kind,
                expected,
                found,
            } => write!(
                f,
                "pipeline-artifact {kind} format version {found} (this build reads {expected})"
            ),
            ArtifactDecodeError::DigestMismatch { expected, found } => write!(
                f,
                "pipeline-artifact schedule digest {found:#018x} does not match recorded {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for ArtifactDecodeError {}

impl PipelineArtifacts {
    /// Serialises the executable subset of the artifacts — digests, sizes,
    /// loop selection and the rewrite schedule — into a self-describing,
    /// versioned byte image suitable for a content-addressed disk store.
    ///
    /// The header records both [`PIPELINE_ARTIFACTS_FORMAT_VERSION`] and
    /// [`janus_schedule::SCHEDULE_FORMAT_VERSION`], plus the schedule's own
    /// content digest; [`PipelineArtifacts::from_bytes`] refuses images
    /// whose versions differ and detects payloads that no longer hash to
    /// the recorded digest. The `analysis` and `profile` fields are not
    /// serialised (see the type-level docs).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let schedule_bytes = self.schedule.to_bytes();
        let mut out = Vec::with_capacity(64 + schedule_bytes.len());
        out.extend_from_slice(ARTIFACT_MAGIC);
        out.extend_from_slice(&PIPELINE_ARTIFACTS_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&janus_schedule::SCHEDULE_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.binary_digest.to_le_bytes());
        out.extend_from_slice(&self.schedule.content_digest().to_le_bytes());
        out.extend_from_slice(&self.binary_size.to_le_bytes());
        out.extend_from_slice(&self.schedule_size.to_le_bytes());
        let push_ids = |out: &mut Vec<u8>, ids: &[usize]| {
            out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
            for &id in ids {
                out.extend_from_slice(&(id as u64).to_le_bytes());
            }
        };
        push_ids(&mut out, &self.selected_loops);
        push_ids(&mut out, &self.speculative_loops);
        out.extend_from_slice(&(schedule_bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&schedule_bytes);
        out
    }

    /// Decodes an image written by [`PipelineArtifacts::to_bytes`].
    ///
    /// The returned value has `analysis: None` and `profile: None`; every
    /// field a serving layer executes from (schedule, digests, loop
    /// selection) round-trips bit-exactly.
    ///
    /// # Errors
    ///
    /// [`ArtifactDecodeError::VersionMismatch`] when the image was written
    /// under a different container or schedule format version (stale —
    /// rebuild); [`ArtifactDecodeError::Malformed`] /
    /// [`ArtifactDecodeError::DigestMismatch`] when the bytes are damaged
    /// (quarantine).
    pub fn from_bytes(bytes: &[u8]) -> Result<PipelineArtifacts, ArtifactDecodeError> {
        let malformed = |reason: &str| ArtifactDecodeError::Malformed {
            reason: reason.to_string(),
        };
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], ArtifactDecodeError> {
            if *pos + n > bytes.len() {
                return Err(ArtifactDecodeError::Malformed {
                    reason: "unexpected end of image".to_string(),
                });
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let take_u32 = |pos: &mut usize| -> Result<u32, ArtifactDecodeError> {
            Ok(u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()))
        };
        let take_u64 = |pos: &mut usize| -> Result<u64, ArtifactDecodeError> {
            Ok(u64::from_le_bytes(take(pos, 8)?.try_into().unwrap()))
        };

        if take(&mut pos, 4)? != ARTIFACT_MAGIC {
            return Err(malformed("bad magic"));
        }
        let artifact_version = take_u32(&mut pos)?;
        if artifact_version != PIPELINE_ARTIFACTS_FORMAT_VERSION {
            return Err(ArtifactDecodeError::VersionMismatch {
                kind: "artifact",
                expected: PIPELINE_ARTIFACTS_FORMAT_VERSION,
                found: artifact_version,
            });
        }
        let schedule_version = take_u32(&mut pos)?;
        if schedule_version != janus_schedule::SCHEDULE_FORMAT_VERSION {
            return Err(ArtifactDecodeError::VersionMismatch {
                kind: "schedule",
                expected: janus_schedule::SCHEDULE_FORMAT_VERSION,
                found: schedule_version,
            });
        }
        let binary_digest = take_u64(&mut pos)?;
        let schedule_digest = take_u64(&mut pos)?;
        let binary_size = take_u64(&mut pos)?;
        let schedule_size = take_u64(&mut pos)?;
        let take_ids = |pos: &mut usize| -> Result<Vec<usize>, ArtifactDecodeError> {
            let count = take_u32(pos)? as usize;
            let mut ids = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                ids.push(take_u64(pos)? as usize);
            }
            Ok(ids)
        };
        let selected_loops = take_ids(&mut pos)?;
        let speculative_loops = take_ids(&mut pos)?;
        let schedule_len = take_u32(&mut pos)? as usize;
        let schedule_bytes = take(&mut pos, schedule_len)?;
        if pos != bytes.len() {
            return Err(malformed("trailing bytes after schedule payload"));
        }
        let schedule = RewriteSchedule::from_bytes(schedule_bytes)
            .map_err(|e| malformed(&format!("embedded schedule: {e}")))?;
        let found = schedule.content_digest();
        if found != schedule_digest {
            return Err(ArtifactDecodeError::DigestMismatch {
                expected: schedule_digest,
                found,
            });
        }
        Ok(PipelineArtifacts {
            binary_digest,
            analysis: None,
            profile: None,
            selected_loops,
            speculative_loops,
            schedule,
            schedule_size,
            binary_size,
        })
    }
}

/// The result of parallelising and running one binary.
#[derive(Debug, Clone)]
pub struct JanusReport {
    /// Native single-threaded execution result (the baseline).
    pub native: RunResult,
    /// Execution under the DBM with the generated rewrite schedule.
    pub parallel: DbmRunResult,
    /// The execution backend the parallel run used.
    pub backend: BackendKind,
    /// Content digest of the binary that ran
    /// ([`JBinary::content_digest`]) — the key under which a serving layer
    /// caches this binary's analysis and schedule.
    pub binary_digest: u64,
    /// Loop ids that were selected for parallelisation.
    pub selected_loops: Vec<usize>,
    /// The subset of `selected_loops` scheduled for iteration-level
    /// speculation (`SPECULATE` rules).
    pub speculative_loops: Vec<usize>,
    /// Size of the generated rewrite schedule in bytes.
    pub schedule_size: u64,
    /// Size of the executable in bytes (for the Figure 10 ratio).
    pub binary_size: u64,
    /// `true` when the parallel run produced exactly the same program output
    /// as the native run.
    pub outputs_match: bool,
    /// Profile data, when profiling was enabled.
    pub profile: Option<ProfileData>,
}

impl JanusReport {
    /// Whole-program speedup of the parallelised execution over native.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.native.cycles as f64 / self.parallel.cycles.max(1) as f64
    }

    /// Rewrite-schedule size as a fraction of the binary size (Figure 10).
    #[must_use]
    pub fn schedule_size_fraction(&self) -> f64 {
        self.schedule_size as f64 / self.binary_size.max(1) as f64
    }

    /// Speculative aborts observed by the run (0 when nothing speculated).
    #[must_use]
    pub fn spec_aborts(&self) -> u64 {
        self.parallel.stats.spec_aborts
    }

    /// Per-iteration retries of the speculative engine.
    #[must_use]
    pub fn spec_retries(&self) -> u64 {
        self.parallel.stats.spec_retries()
    }

    /// Speculative aborts per completed incarnation.
    #[must_use]
    pub fn spec_abort_rate(&self) -> f64 {
        self.parallel.stats.spec_abort_rate()
    }

    /// Largest number of OS worker threads any parallel-loop invocation
    /// spawned (0 under the virtual-time backend — its parallelism is
    /// modelled, not physical).
    #[must_use]
    pub fn os_threads_used(&self) -> u64 {
        self.parallel.stats.os_threads_used
    }

    /// Wall-clock seconds of the parallel run (whole DBM dispatch loop).
    /// Host-dependent, unlike the modelled [`JanusReport::speedup`]; use it
    /// to compare backends on the same machine.
    #[must_use]
    pub fn wall_seconds(&self) -> f64 {
        self.parallel.wall_nanos as f64 / 1e9
    }

    /// Wall-clock seconds spent inside parallel regions (chunk batches and
    /// speculative invocations). 0 under the virtual-time backend.
    #[must_use]
    pub fn parallel_wall_seconds(&self) -> f64 {
        self.parallel.stats.parallel_wall_nanos as f64 / 1e9
    }

    /// Adaptive-tuner decisions that chose (or kept) parallel execution.
    /// 0 when adaptation was off for the run.
    #[must_use]
    pub fn tune_parallel_decisions(&self) -> u64 {
        self.parallel.stats.tune_parallel_decisions
    }

    /// Adaptive-tuner decisions that sent a parallelisable invocation down
    /// the sequential path because parallelism was not paying for itself.
    #[must_use]
    pub fn tune_sequential_decisions(&self) -> u64 {
        self.parallel.stats.tune_sequential_decisions
    }

    /// Mapped guest pages the page-aware overlay merge skipped (no chunk
    /// dirtied them), summed over parallel invocations. 0 under the
    /// virtual-time backend.
    #[must_use]
    pub fn merge_pages_skipped(&self) -> u64 {
        self.parallel.stats.merge_pages_skipped
    }
}

/// The Janus automatic binary paralleliser.
///
/// # Example
///
/// ```
/// use janus_core::{Janus, JanusConfig};
/// use janus_compile::{ast, Compiler};
///
/// let program = ast::Program::builder("axpy")
///     .global_f64("x", 8192)
///     .global_f64("y", 8192)
///     .function(ast::Function::new("main").local("i", ast::Ty::I64).body(vec![
///         ast::Stmt::simple_for(
///             "i",
///             ast::Expr::const_i(0),
///             ast::Expr::const_i(8192),
///             vec![ast::Stmt::assign(
///                 ast::LValue::store("y", ast::Expr::var("i")),
///                 ast::Expr::add(
///                     ast::Expr::mul(ast::Expr::load("x", ast::Expr::var("i")), ast::Expr::const_f(3.0)),
///                     ast::Expr::load("y", ast::Expr::var("i")),
///                 ),
///             )],
///         ),
///         ast::Stmt::print(ast::Expr::load("y", ast::Expr::const_i(100))),
///     ]))
///     .build();
/// let binary = Compiler::new().compile(&program).unwrap();
/// let janus = Janus::with_config(JanusConfig { threads: 4, ..JanusConfig::default() });
/// let report = janus.run(&binary, &[]).unwrap();
/// assert!(report.outputs_match);
/// assert!(report.speedup() > 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Janus {
    config: JanusConfig,
}

impl Janus {
    /// A paralleliser with the default configuration (8 threads, full mode).
    #[must_use]
    pub fn new() -> Janus {
        Janus::default()
    }

    /// A paralleliser with an explicit configuration.
    #[must_use]
    pub fn with_config(config: JanusConfig) -> Janus {
        Janus { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &JanusConfig {
        &self.config
    }

    /// This paralleliser with `trace` attached (builder style): pipeline
    /// stages and execution backends emit structured events to it. Serving
    /// layers use this to install their session recorder into the pipeline
    /// they drive.
    #[must_use]
    pub fn with_trace(mut self, trace: Recorder) -> Janus {
        self.config.trace = trace;
        self
    }

    /// The flight recorder this paralleliser emits to (the null recorder
    /// unless one was configured).
    #[must_use]
    pub fn trace(&self) -> &Recorder {
        &self.config.trace
    }

    /// Statically analyses a binary.
    ///
    /// # Errors
    ///
    /// Returns an error if the binary cannot be decoded.
    pub fn analyze(&self, binary: &JBinary) -> Result<BinaryAnalysis, JanusError> {
        Ok(analyze(binary)?)
    }

    /// Runs the profiling stage on a training input.
    ///
    /// # Errors
    ///
    /// Returns an error if profiling execution faults.
    pub fn profile(
        &self,
        binary: &JBinary,
        analysis: &BinaryAnalysis,
        train_input: &[i64],
    ) -> Result<ProfileData, JanusError> {
        let schedule = generate_profiling_schedule(analysis, binary.producer());
        let process = Process::load(binary)?;
        Ok(profile(&process, &schedule, train_input)?)
    }

    /// Selects the loops to parallelise, one per loop nest.
    #[must_use]
    pub fn select_loops(
        &self,
        analysis: &BinaryAnalysis,
        profile: Option<&ProfileData>,
    ) -> Vec<usize> {
        let allow_dynamic = self.config.mode.uses_runtime_checks();
        let eligible = |l: &LoopInfo, want: LoopCategory| -> bool {
            if l.category != want {
                return false;
            }
            if !rulegen_supported(l) {
                return false;
            }
            if let Some(p) = profile {
                if self.config.mode.uses_profile() {
                    if p.coverage(l.id) < self.config.coverage_threshold {
                        return false;
                    }
                    // An observed dependence makes a loop Type D and rules
                    // out DOALL execution — but the speculative engine
                    // tolerates (and rolls back) real dependences, so it
                    // only loses candidates to the coverage filter.
                    if want != LoopCategory::Speculative
                        && p.loop_profile(l.id)
                            .is_some_and(|lp| lp.observed_dependence)
                    {
                        return false; // actually a Type D loop
                    }
                }
            }
            true
        };

        let mut selected: Vec<usize> = Vec::new();
        // Helper to test nesting conflicts against already-selected loops.
        let conflicts = |l: &LoopInfo, selected: &[usize]| -> bool {
            selected.iter().any(|&sid| {
                let s = &analysis.loops[sid];
                if s.function != l.function {
                    return false;
                }
                // Conflict when one contains the other.
                s.block_addrs.iter().all(|a| l.block_addrs.contains(a))
                    || l.block_addrs.iter().all(|a| s.block_addrs.contains(a))
            })
        };
        // Pass 1: outermost static DOALL loops.
        let mut by_depth: Vec<&LoopInfo> = analysis.loops.iter().collect();
        by_depth.sort_by_key(|l| (l.depth, l.id));
        for l in &by_depth {
            if eligible(l, LoopCategory::StaticDoall) && !conflicts(l, &selected) {
                selected.push(l.id);
            }
        }
        // Pass 2: dynamic DOALL loops (runtime checks / speculation).
        if allow_dynamic {
            for l in &by_depth {
                if eligible(l, LoopCategory::DynamicDoall) && !conflicts(l, &selected) {
                    selected.push(l.id);
                }
            }
        }
        // Pass 3: may-dependent loops under iteration-level speculation.
        if allow_dynamic && self.config.speculation {
            for l in &by_depth {
                if eligible(l, LoopCategory::Speculative) && !conflicts(l, &selected) {
                    selected.push(l.id);
                }
            }
        }
        selected.sort_unstable();
        selected
    }

    /// Generates the parallelisation rewrite schedule for the selected loops.
    #[must_use]
    pub fn generate_schedule(
        &self,
        binary: &JBinary,
        analysis: &BinaryAnalysis,
        selected: &[usize],
    ) -> RewriteSchedule {
        let mut schedule = RewriteSchedule::new(binary.producer());
        schedule.threads = self.config.threads;
        if self.config.mode == OptimisationMode::DynamoRioOnly {
            return schedule;
        }
        for &id in selected {
            let l = &analysis.loops[id];
            emit_loop_rules(&mut schedule, l);
        }
        schedule
    }

    /// Runs the full pipeline on a binary: analysis, optional profiling,
    /// schedule generation, then both native and DBM execution.
    ///
    /// The same `input` is used for training (when profiling is enabled) and
    /// for the measured runs; callers with distinct train/reference inputs
    /// should use [`Janus::run_with_inputs`].
    ///
    /// # Errors
    ///
    /// Returns an error if any stage fails.
    pub fn run(&self, binary: &JBinary, input: &[i64]) -> Result<JanusReport, JanusError> {
        self.run_with_inputs(binary, input, input)
    }

    /// Runs the front half of the pipeline — analysis, optional profiling on
    /// `train_input`, loop selection and schedule generation — and returns
    /// the digest-keyed [`PipelineArtifacts`]. This is the expensive
    /// per-binary work a serving layer caches; pair it with
    /// [`PreparedDbm`] (via `janus-serve`) to execute many inputs against
    /// one preparation.
    ///
    /// # Errors
    ///
    /// Returns an error if analysis or profiling fails.
    pub fn prepare(
        &self,
        binary: &JBinary,
        train_input: &[i64],
    ) -> Result<PipelineArtifacts, JanusError> {
        let rec = &self.config.trace;
        let digest = binary.content_digest();
        let analysis = {
            let _span = rec.span("core.pipeline", "analysis").arg("digest", digest);
            self.analyze(binary)?
        };
        let profile = if self.config.mode.uses_profile() {
            let _span = rec.span("core.pipeline", "profile").arg("digest", digest);
            Some(self.profile(binary, &analysis, train_input)?)
        } else {
            None
        };
        let (selected_loops, schedule) = {
            let mut span = rec.span("core.pipeline", "schedule").arg("digest", digest);
            let selected_loops = self.select_loops(&analysis, profile.as_ref());
            span.push_arg("selected_loops", selected_loops.len());
            let schedule = self.generate_schedule(binary, &analysis, &selected_loops);
            (selected_loops, schedule)
        };
        let speculative_loops: Vec<usize> = selected_loops
            .iter()
            .copied()
            .filter(|&id| analysis.loops[id].category == LoopCategory::Speculative)
            .collect();
        Ok(PipelineArtifacts {
            binary_digest: binary.content_digest(),
            schedule_size: schedule.byte_size(),
            binary_size: binary.file_size(),
            analysis: Some(analysis),
            profile,
            selected_loops,
            speculative_loops,
            schedule,
        })
    }

    /// The [`DbmConfig`] a measured run under this configuration uses: the
    /// configured cost knobs with the pipeline-level choices (threads,
    /// backend, runtime checks, speculation) folded in. Exposed so serving
    /// layers derive per-job configurations exactly the way
    /// [`Janus::run_with_inputs`] does.
    #[must_use]
    pub fn dbm_config(&self) -> DbmConfig {
        DbmConfig {
            threads: self.config.threads,
            backend: self.config.backend,
            enable_runtime_checks: self.config.mode.uses_runtime_checks(),
            enable_speculation: self.config.speculation && self.config.dbm.enable_speculation,
            adaptive: self.config.adaptive || self.config.dbm.adaptive,
            ..self.config.dbm
        }
    }

    /// Runs the full pipeline with separate training and reference inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if any stage fails.
    pub fn run_with_inputs(
        &self,
        binary: &JBinary,
        train_input: &[i64],
        ref_input: &[i64],
    ) -> Result<JanusReport, JanusError> {
        let artifacts = self.prepare(binary, train_input)?;

        // Native baseline.
        let process = Process::load(binary)?;
        let mut vm = Vm::new(process.clone());
        vm.set_input(ref_input);
        let native = vm.run()?;
        let native_ints = vm.output_ints().to_vec();
        let native_floats = vm.output_floats().to_vec();

        // Parallel execution under the DBM.
        let mut dbm = Dbm::new(process, &artifacts.schedule, self.dbm_config());
        dbm.set_recorder(self.config.trace.clone());
        dbm.set_input(ref_input);
        let parallel = dbm.run()?;

        // Bit-equality first: `|a - b| <= tol` is false for NaN vs NaN, so a
        // guest that prints NaN (0.0/0.0 is IEEE-legal in the JVA) would be
        // reported as diverging even when both legs produced the identical
        // bit pattern. Found by the differential fuzzer (seed 1093).
        let outputs_match = native_ints == parallel.output_ints
            && native_floats.len() == parallel.output_floats.len()
            && native_floats
                .iter()
                .zip(parallel.output_floats.iter())
                .all(|(a, b)| {
                    a.to_bits() == b.to_bits() || (a - b).abs() <= 1e-9 * a.abs().max(1.0)
                });

        Ok(JanusReport {
            native,
            parallel,
            backend: self.config.backend,
            binary_digest: artifacts.binary_digest,
            selected_loops: artifacts.selected_loops,
            speculative_loops: artifacts.speculative_loops,
            schedule_size: artifacts.schedule_size,
            binary_size: artifacts.binary_size,
            outputs_match,
            profile: artifacts.profile,
        })
    }
}

/// Returns `true` if the rule generator can express this loop.
fn rulegen_supported(l: &LoopInfo) -> bool {
    let Some(iv) = &l.induction else { return false };
    let Some(bound) = &iv.bound else { return false };
    // Only register-resident induction variables are parallelised. Memory-
    // resident iterators only occur in unoptimised (-O0) binaries, which the
    // paper does not target; running them sequentially is always safe.
    if !matches!(iv.var, VarRef::Reg(_)) {
        return false;
    }
    // Reductions must also live in registers for the same reason.
    if l.reductions
        .iter()
        .any(|r| !matches!(r.var, VarRef::Reg(_)))
    {
        return false;
    }
    !matches!(bound.continue_cond, Cond::Eq | Cond::Below | Cond::AboveEq)
}

fn cond_code(c: Cond) -> i64 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Le => 3,
        Cond::Gt => 4,
        Cond::Ge => 5,
        Cond::Below => 6,
        Cond::AboveEq => 7,
    }
}

fn var_spec(v: &VarRef) -> Option<VarSpec> {
    match v {
        VarRef::Reg(r) => Some(VarSpec::Reg(r.raw())),
        VarRef::Stack(off) => Some(VarSpec::Stack(*off)),
        VarRef::Global(_) => None,
    }
}

fn side_spec(extent: &janus_analysis::depend::BaseExtent, step: i64) -> SideSpec {
    match extent.base {
        janus_analysis::AddressBase::Global(g) => SideSpec {
            reg: None,
            base_or_offset: g as i64 + extent.offset,
            stride: extent.scale * step,
        },
        janus_analysis::AddressBase::Reg(r) => SideSpec {
            reg: Some(r.raw()),
            base_or_offset: extent.offset,
            stride: extent.scale * step,
        },
    }
}

/// Emits the parallelisation rules for one selected loop (Figure 2(a) of the
/// paper shows the equivalent generation pass in the original system).
fn emit_loop_rules(schedule: &mut RewriteSchedule, l: &LoopInfo) {
    let iv = l.induction.as_ref().expect("selected loop has induction");
    let bound = iv.bound.as_ref().expect("selected loop has bound");
    let Some(ind_spec) = var_spec(&iv.var) else {
        return;
    };
    let id = l.id as i64;
    let (ind_kind, ind_value) = ind_spec.encode();

    // LOOP_INIT at the loop header.
    schedule.push(
        RewriteRule::new(l.header_addr, RuleId::LoopInit)
            .with_data(0, id)
            .with_data(1, ind_kind)
            .with_data(2, ind_value)
            .with_data(3, iv.step)
            .with_data(4, bound.cmp_addr as i64)
            .with_data(5, cond_code(bound.continue_cond)),
    );
    schedule.push(RewriteRule::new(l.header_addr, RuleId::ThreadSchedule).with_data(0, id));

    // LOOP_FINISH / THREAD_YIELD at every exit target.
    for &exit in &l.exit_target_addrs {
        schedule.push(RewriteRule::new(exit, RuleId::LoopFinish).with_data(0, id));
        schedule.push(RewriteRule::new(exit, RuleId::ThreadYield).with_data(0, id));
    }

    // LOOP_UPDATE_BOUND at the controlling comparison.
    schedule.push(RewriteRule::new(bound.cmp_addr, RuleId::LoopUpdateBound).with_data(0, id));

    // May-dependent loops carry a SPECULATE rule: the runtime drives the
    // iteration-level speculation engine instead of chunked execution.
    if l.category == LoopCategory::Speculative {
        schedule.push(RewriteRule::new(l.header_addr, RuleId::Speculate).with_data(0, id));
    }

    // Reductions are privatised per thread and recombined at LOOP_FINISH.
    for r in &l.reductions {
        if let Some(spec) = var_spec(&r.var) {
            let (k, v) = spec.encode();
            let op = match r.op {
                janus_analysis::depend::ReductionOp::Add => 0,
                janus_analysis::depend::ReductionOp::Sub => 1,
            };
            schedule.push(
                RewriteRule::new(l.header_addr, RuleId::MemPrivatise)
                    .with_data(0, id)
                    .with_data(1, k)
                    .with_data(2, v)
                    .with_data(3, op)
                    .with_data(4, i64::from(r.is_float)),
            );
        }
    }

    // Runtime array-bounds checks, inserted at the loop entry (the
    // least-executed point where all inputs are available).
    for pair in &l.bounds_checks {
        let a = side_spec(&pair.write, iv.step);
        let b = side_spec(&pair.other, iv.step);
        let (a1, a2) = a.encode();
        let (b1, b2) = b.encode();
        schedule.push(
            RewriteRule::new(l.header_addr, RuleId::MemBoundsCheck)
                .with_data(0, id)
                .with_data(1, a1)
                .with_data(2, a2)
                .with_data(3, b1)
                .with_data(4, b2),
        );
    }

    // Read-only stack accesses are redirected to the main stack.
    for a in &l.accesses {
        if let janus_analysis::AccessPattern::StackSlot { offset } = a.pattern {
            if !a.is_write && l.read_only_stack_slots.contains(&offset) {
                schedule.push(
                    RewriteRule::new(a.addr, RuleId::MemMainStack)
                        .with_data(0, id)
                        .with_data(1, offset),
                );
            }
        }
    }

    // Dynamically discovered code (shared-library calls) runs speculatively.
    for &call in &l.external_call_addrs {
        schedule.push(RewriteRule::new(call, RuleId::TxStart).with_data(0, id));
        schedule.push(
            RewriteRule::new(call + janus_ir::INST_SIZE as u64, RuleId::TxFinish).with_data(0, id),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_compile::{ast, CompileOptions, Compiler};

    fn doall_program(n: i64) -> ast::Program {
        ast::Program::builder("doall")
            .global_f64("a", n as usize)
            .global_f64("b", n as usize)
            .function(
                ast::Function::new("main")
                    .local("i", ast::Ty::I64)
                    .local("s", ast::Ty::F64)
                    .body(vec![
                        ast::Stmt::simple_for(
                            "i",
                            ast::Expr::const_i(0),
                            ast::Expr::const_i(n),
                            vec![ast::Stmt::assign(
                                ast::LValue::store("b", ast::Expr::var("i")),
                                ast::Expr::add(
                                    ast::Expr::mul(
                                        ast::Expr::load("a", ast::Expr::var("i")),
                                        ast::Expr::const_f(2.0),
                                    ),
                                    ast::Expr::const_f(1.0),
                                ),
                            )],
                        ),
                        ast::Stmt::assign(ast::LValue::var("s"), ast::Expr::const_f(0.0)),
                        ast::Stmt::simple_for(
                            "i",
                            ast::Expr::const_i(0),
                            ast::Expr::const_i(n),
                            vec![ast::Stmt::assign(
                                ast::LValue::var("s"),
                                ast::Expr::add(
                                    ast::Expr::var("s"),
                                    ast::Expr::load("b", ast::Expr::var("i")),
                                ),
                            )],
                        ),
                        ast::Stmt::print(ast::Expr::var("s")),
                    ]),
            )
            .build()
    }

    #[test]
    fn full_pipeline_parallelises_and_preserves_output() {
        let bin = Compiler::with_options(CompileOptions::gcc_o2())
            .compile(&doall_program(4096))
            .unwrap();
        let janus = Janus::with_config(JanusConfig {
            threads: 8,
            ..JanusConfig::default()
        });
        let report = janus.run(&bin, &[]).unwrap();
        assert!(report.outputs_match, "parallel output must equal native");
        assert!(!report.selected_loops.is_empty());
        assert!(
            report.speedup() > 2.0,
            "expected a clear speedup, got {:.2}",
            report.speedup()
        );
        assert!(report.schedule_size > 0);
        assert!(report.schedule_size_fraction() < 0.5);
        assert!(report.parallel.stats.parallel_invocations >= 1);
    }

    #[test]
    fn prepare_matches_the_full_run_and_is_digest_keyed() {
        let bin = Compiler::with_options(CompileOptions::gcc_o2())
            .compile(&doall_program(1024))
            .unwrap();
        let janus = Janus::new();
        let artifacts = janus.prepare(&bin, &[]).unwrap();
        let report = janus.run(&bin, &[]).unwrap();
        assert_eq!(artifacts.binary_digest, bin.content_digest());
        assert_eq!(artifacts.binary_digest, report.binary_digest);
        assert_eq!(artifacts.selected_loops, report.selected_loops);
        assert_eq!(artifacts.speculative_loops, report.speculative_loops);
        assert_eq!(artifacts.schedule_size, report.schedule_size);
        assert_eq!(artifacts.schedule_size, artifacts.schedule.byte_size());
        assert!(!artifacts.schedule.is_empty());
        // Preparing twice is deterministic: same digest, same schedule bytes.
        let again = janus.prepare(&bin, &[]).unwrap();
        assert_eq!(
            again.schedule.content_digest(),
            artifacts.schedule.content_digest()
        );
    }

    #[test]
    fn pipeline_artifacts_round_trip_through_bytes() {
        let bin = Compiler::with_options(CompileOptions::gcc_o2())
            .compile(&doall_program(1024))
            .unwrap();
        let janus = Janus::new();
        let artifacts = janus.prepare(&bin, &[]).unwrap();
        let bytes = artifacts.to_bytes();
        let back = PipelineArtifacts::from_bytes(&bytes).unwrap();
        assert_eq!(back.binary_digest, artifacts.binary_digest);
        assert_eq!(back.selected_loops, artifacts.selected_loops);
        assert_eq!(back.speculative_loops, artifacts.speculative_loops);
        assert_eq!(back.schedule_size, artifacts.schedule_size);
        assert_eq!(back.binary_size, artifacts.binary_size);
        assert_eq!(
            back.schedule.content_digest(),
            artifacts.schedule.content_digest()
        );
        assert_eq!(back.schedule, artifacts.schedule);
        assert!(back.analysis.is_none(), "analysis is not persisted");
        assert!(back.profile.is_none(), "profile is not persisted");

        // Damage is detected, and stale versions are told apart from rot.
        let mut torn = bytes.clone();
        torn.truncate(torn.len() - 3);
        assert!(matches!(
            PipelineArtifacts::from_bytes(&torn),
            Err(ArtifactDecodeError::Malformed { .. })
        ));
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xff;
        assert!(matches!(
            PipelineArtifacts::from_bytes(&flipped),
            Err(ArtifactDecodeError::Malformed { .. })
                | Err(ArtifactDecodeError::DigestMismatch { .. })
        ));
        let mut stale = bytes;
        stale[4..8].copy_from_slice(&(PIPELINE_ARTIFACTS_FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            PipelineArtifacts::from_bytes(&stale),
            Err(ArtifactDecodeError::VersionMismatch {
                kind: "artifact",
                ..
            })
        ));
    }

    #[test]
    fn dynamorio_only_mode_adds_overhead_but_no_parallelism() {
        let bin = Compiler::with_options(CompileOptions::gcc_o2())
            .compile(&doall_program(512))
            .unwrap();
        let janus = Janus::with_config(JanusConfig {
            mode: OptimisationMode::DynamoRioOnly,
            ..JanusConfig::default()
        });
        let report = janus.run(&bin, &[]).unwrap();
        assert!(report.outputs_match);
        assert!(
            report.selected_loops.is_empty() || report.parallel.stats.parallel_invocations == 0
        );
        assert!(
            report.speedup() <= 1.0,
            "pure DBM execution cannot be faster than native, got {:.3}",
            report.speedup()
        );
    }

    #[test]
    fn statically_driven_mode_skips_loops_needing_checks() {
        // A pointer-based kernel needs bounds checks, so only the Full mode
        // parallelises it.
        let p = ast::Program::builder("ptr")
            .global_f64("x", 2048)
            .global_f64("y", 2048)
            .function(
                ast::Function::new("kernel")
                    .param("d", ast::Ty::Ptr)
                    .param("s", ast::Ty::Ptr)
                    .param("n", ast::Ty::I64)
                    .local("i", ast::Ty::I64)
                    .body(vec![ast::Stmt::simple_for(
                        "i",
                        ast::Expr::const_i(0),
                        ast::Expr::var("n"),
                        vec![ast::Stmt::assign(
                            ast::LValue::store_ptr("d", ast::Expr::var("i")),
                            ast::Expr::mul(
                                ast::Expr::load_ptr("s", ast::Expr::var("i")),
                                ast::Expr::const_f(0.5),
                            ),
                        )],
                    )]),
            )
            .function(ast::Function::new("main").body(vec![
                ast::Stmt::Call {
                    name: "kernel".into(),
                    args: vec![
                        ast::Expr::addr_of("y"),
                        ast::Expr::addr_of("x"),
                        ast::Expr::const_i(2048),
                    ],
                    ret: None,
                },
                ast::Stmt::print(ast::Expr::load("y", ast::Expr::const_i(33))),
            ]))
            .build();
        let bin = Compiler::with_options(CompileOptions::gcc_o2())
            .compile(&p)
            .unwrap();

        let static_only = Janus::with_config(JanusConfig {
            mode: OptimisationMode::StaticallyDriven,
            ..JanusConfig::default()
        })
        .run(&bin, &[])
        .unwrap();
        let full = Janus::new().run(&bin, &[]).unwrap();
        assert!(static_only.outputs_match && full.outputs_match);
        assert_eq!(static_only.parallel.stats.parallel_invocations, 0);
        assert!(full.parallel.stats.parallel_invocations >= 1);
        assert!(full.parallel.stats.bounds_checks_executed >= 1);
        assert!(full.speedup() > static_only.speedup());
    }

    #[test]
    fn profile_guidance_filters_low_coverage_loops() {
        // One hot loop and one tiny loop: with profiling only the hot loop is
        // selected.
        let p = ast::Program::builder("hotcold")
            .global_f64("a", 4096)
            .global_f64("b", 4096)
            .global_f64("c", 8)
            .function(
                ast::Function::new("main")
                    .local("i", ast::Ty::I64)
                    .body(vec![
                        ast::Stmt::simple_for(
                            "i",
                            ast::Expr::const_i(0),
                            ast::Expr::const_i(8),
                            vec![ast::Stmt::assign(
                                ast::LValue::store("c", ast::Expr::var("i")),
                                ast::Expr::const_f(2.0),
                            )],
                        ),
                        ast::Stmt::simple_for(
                            "i",
                            ast::Expr::const_i(0),
                            ast::Expr::const_i(4096),
                            vec![ast::Stmt::assign(
                                ast::LValue::store("b", ast::Expr::var("i")),
                                ast::Expr::mul(
                                    ast::Expr::load("a", ast::Expr::var("i")),
                                    ast::Expr::const_f(3.0),
                                ),
                            )],
                        ),
                        ast::Stmt::print(ast::Expr::load("b", ast::Expr::const_i(5))),
                    ]),
            )
            .build();
        let bin = Compiler::with_options(CompileOptions::gcc_o2())
            .compile(&p)
            .unwrap();
        let with_profile = Janus::with_config(JanusConfig {
            mode: OptimisationMode::StaticallyDrivenProfile,
            ..JanusConfig::default()
        })
        .run(&bin, &[])
        .unwrap();
        let without_profile = Janus::with_config(JanusConfig {
            mode: OptimisationMode::StaticallyDriven,
            ..JanusConfig::default()
        })
        .run(&bin, &[])
        .unwrap();
        assert!(with_profile.selected_loops.len() < without_profile.selected_loops.len());
        assert!(with_profile.outputs_match);
        assert!(
            with_profile.speedup() >= without_profile.speedup() * 0.95,
            "profile guidance should not hurt: {:.2} vs {:.2}",
            with_profile.speedup(),
            without_profile.speedup()
        );
    }

    fn scatter_program(n: i64, bins: i64) -> ast::Program {
        // hist[idx[i]] += w[i]: a may-dependent scatter the seed pipeline
        // serialises; `idx` is filled with mostly-distinct bin indices.
        ast::Program::builder("scatter")
            .global(ast::GlobalArray {
                name: "idx".into(),
                ty: ast::Ty::I64,
                len: n as usize,
                init: ast::Init::Pattern {
                    mul: 7,
                    add: 3,
                    modulus: bins,
                },
            })
            .global_f64("w", n as usize)
            .global_f64("hist", bins as usize)
            .function(
                ast::Function::new("main")
                    .local("i", ast::Ty::I64)
                    .local("s", ast::Ty::F64)
                    .body(vec![
                        ast::Stmt::simple_for(
                            "i",
                            ast::Expr::const_i(0),
                            ast::Expr::const_i(n),
                            vec![ast::Stmt::assign(
                                ast::LValue::store(
                                    "hist",
                                    ast::Expr::load("idx", ast::Expr::var("i")),
                                ),
                                ast::Expr::add(
                                    ast::Expr::load(
                                        "hist",
                                        ast::Expr::load("idx", ast::Expr::var("i")),
                                    ),
                                    ast::Expr::load("w", ast::Expr::var("i")),
                                ),
                            )],
                        ),
                        ast::Stmt::assign(ast::LValue::var("s"), ast::Expr::const_f(0.0)),
                        ast::Stmt::simple_for(
                            "i",
                            ast::Expr::const_i(0),
                            ast::Expr::const_i(bins),
                            vec![ast::Stmt::assign(
                                ast::LValue::var("s"),
                                ast::Expr::add(
                                    ast::Expr::var("s"),
                                    ast::Expr::load("hist", ast::Expr::var("i")),
                                ),
                            )],
                        ),
                        ast::Stmt::print(ast::Expr::var("s")),
                    ]),
            )
            .build()
    }

    #[test]
    fn may_dependent_scatter_is_speculated_and_matches_native() {
        let bin = Compiler::with_options(CompileOptions::gcc_o2())
            .compile(&scatter_program(4096, 2048))
            .unwrap();
        let with_spec = Janus::new().run(&bin, &[]).unwrap();
        assert!(
            !with_spec.speculative_loops.is_empty(),
            "the scatter loop must be selected for speculation: {:?}",
            with_spec.selected_loops
        );
        assert!(with_spec.outputs_match, "speculation must preserve output");
        assert!(
            with_spec.parallel.stats.spec_invocations >= 1,
            "{:?}",
            with_spec.parallel.stats
        );
        assert!(with_spec.parallel.stats.spec_iterations >= 4096);
        assert!(
            with_spec.speedup() > 1.0,
            "a mostly-independent scatter should speed up, got {:.2}",
            with_spec.speedup()
        );

        // The knob turns the engine off and the loop falls back to serial.
        let without = Janus::with_config(JanusConfig {
            speculation: false,
            ..JanusConfig::default()
        })
        .run(&bin, &[])
        .unwrap();
        assert!(without.outputs_match);
        assert!(without.speculative_loops.is_empty());
        assert_eq!(without.parallel.stats.spec_invocations, 0);
        assert!(
            with_spec.speedup() > without.speedup(),
            "speculation should beat the serial fallback: {:.2} vs {:.2}",
            with_spec.speedup(),
            without.speedup()
        );
    }

    #[test]
    fn thread_scaling_improves_speedup() {
        let bin = Compiler::with_options(CompileOptions::gcc_o2())
            .compile(&doall_program(8192))
            .unwrap();
        let mut last = 0.0;
        for threads in [1u32, 2, 4, 8] {
            let report = Janus::with_config(JanusConfig {
                threads,
                ..JanusConfig::default()
            })
            .run(&bin, &[])
            .unwrap();
            assert!(report.outputs_match);
            let s = report.speedup();
            assert!(
                s + 0.05 >= last,
                "speedup should not degrade with more threads ({threads}): {s:.2} vs {last:.2}"
            );
            last = s;
        }
        assert!(
            last > 3.0,
            "8 threads should give a solid speedup, got {last:.2}"
        );
    }
}
