//! Adaptive-execution equivalence: with the per-loop tuner on, every
//! workload must still produce correct guest results on both execution
//! backends.
//!
//! Adaptation is wall-time policy — it may re-route an invocation down the
//! sequential path or retarget its chunk count, which legitimately changes
//! modelled cycle totals and the exact floating-point summation order of
//! reductions. Correctness is therefore asserted the way the pipeline
//! itself defines it: program outputs match the native baseline exactly
//! for integers and at tolerance for floats (`outputs_match`), on every
//! backend.

use janus_compile::{CompileOptions, Compiler};
use janus_core::{BackendKind, DbmConfig, Janus, JanusConfig, JanusReport};
use janus_ir::JBinary;
use janus_workloads::{parallel_benchmarks, speculative_benchmarks, workload};

fn train_binary(name: &str) -> JBinary {
    let w = workload(name).expect("known workload");
    Compiler::with_options(CompileOptions::gcc_o3())
        .compile(&w.train_program)
        .expect("workload compiles")
}

fn run_adaptive(binary: &JBinary, backend: BackendKind, threads: u32) -> JanusReport {
    Janus::with_config(JanusConfig {
        threads,
        backend,
        adaptive: true,
        ..JanusConfig::default()
    })
    .run(binary, &[])
    .expect("pipeline succeeds")
}

#[test]
fn adaptive_execution_preserves_results_on_every_workload() {
    let names: Vec<&str> = parallel_benchmarks()
        .into_iter()
        .chain(speculative_benchmarks())
        .collect();
    for name in names {
        let binary = train_binary(name);
        for backend in [BackendKind::VirtualTime, BackendKind::NativeThreads] {
            let report = run_adaptive(&binary, backend, 4);
            assert!(
                report.outputs_match,
                "{name}@{backend}: adaptive run diverged from the native baseline"
            );
            assert_eq!(
                report.native.exit_code, report.parallel.exit_code,
                "{name}@{backend}: exit codes differ under adaptation"
            );
            // Chunked (non-speculative) parallel candidates go through the
            // tuner, so whenever any ran, decisions must have been recorded.
            let stats = &report.parallel.stats;
            let chunked = stats
                .parallel_invocations
                .saturating_sub(stats.spec_invocations);
            if chunked > 0 {
                assert!(
                    report.tune_parallel_decisions() + report.tune_sequential_decisions() > 0,
                    "{name}@{backend}: chunked invocations ran but no tuner decision was taken"
                );
            }
        }
    }
}

#[test]
fn virtual_time_adaptation_never_chooses_sequential() {
    // Under virtual time batch wall time is 0, so the parallel arm always
    // estimates 0 ns/iter: adaptation must keep every tuned invocation
    // parallel and the backend's determinism is preserved in effect.
    for name in ["470.lbm", "433.milc"] {
        let binary = train_binary(name);
        let report = run_adaptive(&binary, BackendKind::VirtualTime, 4);
        assert!(report.outputs_match, "{name}");
        assert_eq!(
            report.tune_sequential_decisions(),
            0,
            "{name}: virtual time must never measure parallelism as a loss"
        );
    }
}

#[test]
fn adaptation_off_keeps_tuning_counters_at_zero() {
    let binary = train_binary("470.lbm");
    // Pin the DBM-level flag too: `DbmConfig::default()` honours
    // JANUS_ADAPTIVE, and this test must hold on the adaptive CI leg.
    let report = Janus::with_config(JanusConfig {
        threads: 4,
        backend: BackendKind::NativeThreads,
        dbm: DbmConfig {
            adaptive: false,
            ..DbmConfig::default()
        },
        ..JanusConfig::default()
    })
    .run(&binary, &[])
    .expect("pipeline succeeds");
    assert!(report.outputs_match);
    assert_eq!(report.tune_parallel_decisions(), 0);
    assert_eq!(report.tune_sequential_decisions(), 0);
}

#[test]
fn native_adaptive_runs_report_page_merge_savings() {
    // The page-aware merge skips mapped pages no chunk dirtied; lbm's
    // image is large while each loop touches a bounded working set, so the
    // skip counter must move under the native backend.
    let binary = train_binary("470.lbm");
    let report = run_adaptive(&binary, BackendKind::NativeThreads, 4);
    assert!(report.outputs_match);
    if report.parallel.stats.parallel_invocations > report.parallel.stats.spec_invocations {
        assert!(
            report.merge_pages_skipped() + report.parallel.stats.merge_pages_merged > 0,
            "chunked parallel work ran but the merge visited no pages at all"
        );
    }
}
