//! Equivalence of the two speculative commit modes under the native-threads
//! backend: `Deterministic` (race the pool, replay the deterministic
//! coordinator, report modelled figures) and `RacedImage` (commit the pool's
//! converged image directly, skip the replay — pure wall-clock mode).
//!
//! Guest results must be identical: same final memory digest, same output
//! streams, same exit code, for every may-dependent workload. Only the
//! modelled numbers are allowed to differ (`RacedImage` charges no modelled
//! parallel cycles and its abort counters describe the actual race).

use janus_compile::{CompileOptions, Compiler};
use janus_core::{BackendKind, Janus, JanusConfig, JanusReport, SpecCommitMode};
use janus_dbm::DbmConfig;
use janus_workloads::{speculative_benchmarks, workload};

fn run(name: &str, commit: SpecCommitMode) -> JanusReport {
    let w = workload(name).expect("known workload");
    let binary = Compiler::with_options(CompileOptions::gcc_o3())
        .compile(&w.train_program)
        .expect("workload compiles");
    Janus::with_config(JanusConfig {
        threads: 4,
        backend: BackendKind::NativeThreads,
        dbm: DbmConfig {
            spec_commit: commit,
            // The cycles comparison between commit modes assumes the static
            // chunking policy; keep the tuner out even under JANUS_ADAPTIVE.
            adaptive: false,
            ..DbmConfig::default()
        },
        ..JanusConfig::default()
    })
    .run(&binary, &[])
    .expect("pipeline succeeds")
}

#[test]
fn raced_image_commit_matches_the_deterministic_replay() {
    for name in speculative_benchmarks() {
        let deterministic = run(name, SpecCommitMode::Deterministic);
        let raced = run(name, SpecCommitMode::RacedImage);

        // Both modes drove the speculation engine…
        assert!(
            deterministic.parallel.stats.spec_invocations >= 1,
            "{name}: nothing speculated deterministically"
        );
        assert!(
            raced.parallel.stats.spec_invocations >= 1,
            "{name}: nothing speculated in raced-image mode"
        );
        // …and landed the identical serial-equivalent guest state.
        assert_eq!(
            deterministic.parallel.memory_digest, raced.parallel.memory_digest,
            "{name}: commit modes disagree on the final memory image"
        );
        assert_eq!(
            deterministic.parallel.output_ints, raced.parallel.output_ints,
            "{name}: integer outputs differ between commit modes"
        );
        assert_eq!(
            deterministic.parallel.output_floats, raced.parallel.output_floats,
            "{name}: float outputs differ between commit modes"
        );
        assert_eq!(
            deterministic.parallel.exit_code, raced.parallel.exit_code,
            "{name}: exit codes differ between commit modes"
        );
        assert!(raced.outputs_match, "{name}: raced-image output diverged");

        // Skipping the replay must not *increase* modelled time: raced-image
        // invocations charge no modelled parallel cycles.
        assert!(
            raced.parallel.cycles <= deterministic.parallel.cycles,
            "{name}: raced-image mode reported more modelled cycles \
             ({} > {})",
            raced.parallel.cycles,
            deterministic.parallel.cycles
        );
    }
}

#[test]
fn virtual_time_backend_ignores_the_commit_mode() {
    // The knob only affects the native-threads backend; under virtual time
    // both modes are the same deterministic engine, bit for bit.
    let name = "spec.histogram";
    let w = workload(name).expect("known workload");
    let binary = Compiler::with_options(CompileOptions::gcc_o3())
        .compile(&w.train_program)
        .expect("workload compiles");
    let run = |commit: SpecCommitMode| {
        Janus::with_config(JanusConfig {
            threads: 4,
            backend: BackendKind::VirtualTime,
            dbm: DbmConfig {
                spec_commit: commit,
                ..DbmConfig::default()
            },
            ..JanusConfig::default()
        })
        .run(&binary, &[])
        .expect("pipeline succeeds")
    };
    let deterministic = run(SpecCommitMode::Deterministic);
    let raced = run(SpecCommitMode::RacedImage);
    assert_eq!(
        deterministic.parallel.cycles, raced.parallel.cycles,
        "virtual time must be bit-identical regardless of the commit mode"
    );
    assert_eq!(
        deterministic.parallel.stats, raced.parallel.stats,
        "virtual-time statistics must not depend on the commit mode"
    );
    assert_eq!(
        deterministic.parallel.memory_digest,
        raced.parallel.memory_digest
    );
}
