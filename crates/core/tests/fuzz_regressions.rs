//! Named regression tests for divergences found by the differential
//! guest-program fuzzer (`janus_bench::fuzz`). Each test pins one shrunk
//! counterexample; the same shape also lives on as a named workload (see
//! `janus_workloads::fuzz_regressions`), so the fuzzer only ever finds
//! each bug once.

use janus_bench::fuzz::check_spec;
use janus_compile::ast::{Expr, Function, Program, Stmt};
use janus_compile::Compiler;
use janus_core::{BackendKind, Janus, JanusConfig};
use janus_workloads::{program_by_name, ArraySpec, ElemTy, GenOp, LoopSpec, ProgramSpec};

/// Generator seed 1093, shrunk: aliasing pointer kernel + shifted
/// element-wise subtraction + signed scatter. Before the fixes this
/// tripped the oracle at every thread count: the scatter's sign-following
/// `%` wrote below the destination array and corrupted the float global
/// next to it, whose NaN-laden checksum then failed the `outputs_match`
/// comparison even though both legs printed identical bits.
#[test]
fn seed_1093_signed_scatter_passes_the_matrix() {
    let spec = ProgramSpec {
        seed: 1093,
        arrays: vec![
            ArraySpec {
                ty: ElemTy::I64,
                len: 56,
                init_mul: 3,
                init_add: 7,
                init_modulus: 56,
            },
            ArraySpec {
                ty: ElemTy::F64,
                len: 44,
                init_mul: 5,
                init_add: 1,
                init_modulus: 97,
            },
            ArraySpec {
                ty: ElemTy::I64,
                len: 63,
                init_mul: 9,
                init_add: 2,
                init_modulus: 63,
            },
            ArraySpec {
                ty: ElemTy::F64,
                len: 7,
                init_mul: 11,
                init_add: 4,
                init_modulus: 37,
            },
        ],
        loops: vec![
            LoopSpec::PointerKernel {
                a: 2,
                b: 0,
                alias: true,
                iters: 44,
            },
            LoopSpec::Elementwise {
                dst: 0,
                a: 0,
                b: 2,
                op: GenOp::Sub,
                shift: 4,
                iters: 34,
            },
            LoopSpec::Scatter {
                dst: 2,
                table: 0,
                w: 0,
                iters: 35,
            },
        ],
    };
    check_spec(&spec).expect("seed-1093 shape must pass the differential matrix");
}

/// The exact generated spec (not just the shrunk shape) must also pass.
#[test]
fn seed_1093_as_generated_passes_the_matrix() {
    let spec = ProgramSpec::generate(1093);
    check_spec(&spec).expect("generated seed 1093 must pass the differential matrix");
}

/// The promoted workload built from the counterexample runs clean through
/// both backends.
#[test]
fn promoted_nan_scatter_workload_passes() {
    let program = program_by_name("fuzz.nan-scatter").expect("promoted workload exists");
    let binary = Compiler::new().compile(&program).expect("compiles");
    for backend in [BackendKind::VirtualTime, BackendKind::NativeThreads] {
        let report = Janus::with_config(JanusConfig {
            threads: 4,
            backend,
            ..JanusConfig::default()
        })
        .run(&binary, &[])
        .expect("runs");
        assert!(
            report.outputs_match,
            "fuzz.nan-scatter must match on {backend} (NaN prints included)"
        );
        assert_eq!(report.parallel.exit_code, 0);
    }
}

/// A guest that prints NaN (IEEE 0.0/0.0) must still count as matching
/// when both legs produce the identical bit pattern — `|a - b| <= tol`
/// alone is false for NaN vs NaN.
#[test]
fn bit_identical_nan_output_counts_as_matching() {
    let program = Program::builder("nan-print")
        .function(Function::new("main").body(vec![
            Stmt::print(Expr::div(Expr::const_f(0.0), Expr::const_f(0.0))),
            Stmt::print(Expr::const_f(1.5)),
        ]))
        .build();
    let binary = Compiler::new().compile(&program).expect("compiles");
    for backend in [BackendKind::VirtualTime, BackendKind::NativeThreads] {
        let report = Janus::with_config(JanusConfig {
            threads: 2,
            backend,
            ..JanusConfig::default()
        })
        .run(&binary, &[])
        .expect("runs");
        assert!(
            report.parallel.output_floats[0].is_nan(),
            "guest printed NaN"
        );
        assert!(
            report.outputs_match,
            "identical NaN streams must match on {backend}"
        );
    }
}

/// The generated scatter/gather subscript wrap is euclidean: a table full
/// of negative values must never index outside the destination, so the
/// float global that sits beside it comes through with a finite checksum.
#[test]
fn negative_scatter_indices_stay_in_bounds() {
    let spec = ProgramSpec {
        seed: 0,
        arrays: vec![
            // All-negative table: (i * -5 - 3).rem_euclid(200) stays
            // positive, so drive negativity through Elementwise instead.
            ArraySpec {
                ty: ElemTy::I64,
                len: 32,
                init_mul: 7,
                init_add: 1,
                init_modulus: 200,
            },
            ArraySpec {
                ty: ElemTy::I64,
                len: 24,
                init_mul: 3,
                init_add: 5,
                init_modulus: 24,
            },
            ArraySpec {
                ty: ElemTy::F64,
                len: 16,
                init_mul: 5,
                init_add: 2,
                init_modulus: 31,
            },
        ],
        loops: vec![
            // table[i] = table[i] - big => negative subscript source.
            LoopSpec::Elementwise {
                dst: 0,
                a: 1,
                b: 0,
                op: GenOp::Sub,
                shift: 0,
                iters: 32,
            },
            LoopSpec::Scatter {
                dst: 1,
                table: 0,
                w: 1,
                iters: 32,
            },
            LoopSpec::Gather {
                dst: 1,
                table: 0,
                src: 1,
                iters: 24,
            },
        ],
    };
    check_spec(&spec).expect("negative subscripts must stay in bounds");
    // And the bystander float array's checksum is finite on a direct run.
    let binary = Compiler::new().compile(&spec.lower()).expect("compiles");
    let report = Janus::with_config(JanusConfig {
        threads: 4,
        ..JanusConfig::default()
    })
    .run(&binary, &[])
    .expect("runs");
    assert!(
        report.parallel.output_floats.iter().all(|f| f.is_finite()),
        "no generated float checksum may be poisoned by out-of-bounds writes: {:?}",
        report.parallel.output_floats
    );
}
