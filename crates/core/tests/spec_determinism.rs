//! Determinism stress for the racing speculative runtime: the native
//! backend's Block-STM worker pool races incarnations nondeterministically,
//! so every *reported* number must come from the deterministic commit-order
//! replay — re-running the same workload many times must produce
//! bit-identical memory digests, outputs, modelled cycles and table-3
//! speculation statistics, with zero schedule-dependent drift.
//!
//! `spec.doacross-window` is the stress pick: its sliding-window
//! read-after-write chain has the highest abort rate of the suite, so it
//! exercises estimates, dependency wakeups and re-execution on every run.

use janus_compile::{CompileOptions, Compiler};
use janus_core::{BackendKind, DbmConfig, Janus, JanusConfig, JanusReport};
use janus_ir::JBinary;
use janus_workloads::workload;

fn compile_once() -> JBinary {
    let w = workload("spec.doacross-window").expect("known workload");
    Compiler::with_options(CompileOptions::gcc_o3())
        .compile(&w.train_program)
        .expect("workload compiles")
}

fn run_native(binary: &JBinary, threads: u32) -> JanusReport {
    // Bit-identical repeats are a static-policy contract: the adaptive
    // tuner folds measured wall time into its decisions, which is
    // legitimately run-dependent. Pin it off even under JANUS_ADAPTIVE=1.
    Janus::with_config(JanusConfig {
        threads,
        backend: BackendKind::NativeThreads,
        dbm: DbmConfig {
            adaptive: false,
            ..DbmConfig::default()
        },
        ..JanusConfig::default()
    })
    .run(binary, &[])
    .expect("pipeline succeeds")
}

/// Everything the run reports that must not depend on the race the OS
/// happened to schedule.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    memory_digest: u64,
    output_ints: Vec<i64>,
    output_floats: Vec<f64>,
    cycles: u64,
    exit_code: i64,
    // The table-3 surface: invocations, iterations, executions, aborts,
    // validations, fallbacks — plus the derived retry/abort-rate inputs.
    spec: (u64, u64, u64, u64, u64, u64),
    os_threads_used: u64,
}

fn fingerprint(report: &JanusReport) -> Fingerprint {
    let s = &report.parallel.stats;
    Fingerprint {
        memory_digest: report.parallel.memory_digest,
        output_ints: report.parallel.output_ints.clone(),
        output_floats: report.parallel.output_floats.clone(),
        cycles: report.parallel.cycles,
        exit_code: report.parallel.exit_code,
        spec: (
            s.spec_invocations,
            s.spec_iterations,
            s.spec_executions,
            s.spec_aborts,
            s.spec_validations,
            s.spec_fallbacks,
        ),
        os_threads_used: s.os_threads_used,
    }
}

#[test]
fn twenty_native_runs_are_bit_identical() {
    let binary = compile_once();
    let first = run_native(&binary, 4);
    assert!(first.outputs_match, "doacross-window must reproduce output");
    assert!(
        first.parallel.stats.spec_invocations > 0,
        "the workload must actually speculate"
    );
    assert!(
        first.parallel.stats.spec_aborts > 0,
        "doacross-window must conflict (that is the point of the stress)"
    );
    assert!(
        first.os_threads_used() > 1,
        "incarnations must race on >1 OS thread, got {}",
        first.os_threads_used()
    );
    let reference = fingerprint(&first);
    for attempt in 1..20 {
        let report = run_native(&binary, 4);
        assert_eq!(
            fingerprint(&report),
            reference,
            "run {attempt}: native speculative run drifted from run 0 — \
             a racing artifact leaked into the reported statistics"
        );
    }
}
