//! Cross-backend equivalence: every parallelisable and speculative workload
//! must produce the same guest results under the virtual-time simulator and
//! the native-threads runtime.
//!
//! The anchor is strict: identical final guest memory image (by digest),
//! identical program output, and — because the native backend replays its
//! code-cache and lane accounting in chunk order — identical modelled cycle
//! breakdowns. The only permitted differences are the wall-clock and
//! OS-thread statistics the native backend adds on top.

use janus_compile::{CompileOptions, Compiler};
use janus_core::{BackendKind, DbmConfig, Janus, JanusConfig, JanusReport};
use janus_ir::JBinary;
use janus_workloads::{parallel_benchmarks, speculative_benchmarks, workload};

fn train_binary(name: &str) -> JBinary {
    let w = workload(name).expect("known workload");
    Compiler::with_options(CompileOptions::gcc_o3())
        .compile(&w.train_program)
        .expect("workload compiles")
}

fn run(binary: &JBinary, backend: BackendKind, threads: u32) -> JanusReport {
    // Modelled-cycle invariance is a *static-policy* contract: the adaptive
    // tuner may legitimately retarget chunk counts from wall-time evidence,
    // so pin it off here even when JANUS_ADAPTIVE is set (the adaptive CI
    // leg). `adaptive_equivalence.rs` covers the tuner-on guarantees.
    Janus::with_config(JanusConfig {
        threads,
        backend,
        dbm: DbmConfig {
            adaptive: false,
            ..DbmConfig::default()
        },
        ..JanusConfig::default()
    })
    .run(binary, &[])
    .expect("pipeline succeeds")
}

#[test]
fn backends_agree_on_every_workload() {
    let names: Vec<&str> = parallel_benchmarks()
        .into_iter()
        .chain(speculative_benchmarks())
        .collect();
    for name in names {
        let binary = train_binary(name);
        let virt = run(&binary, BackendKind::VirtualTime, 4);
        let native = run(&binary, BackendKind::NativeThreads, 4);

        assert!(virt.outputs_match, "{name}: virtual-time output diverged");
        assert!(
            native.outputs_match,
            "{name}: native-threads output diverged"
        );
        assert_eq!(
            virt.parallel.memory_digest, native.parallel.memory_digest,
            "{name}: final guest memory images differ between backends"
        );
        assert_eq!(
            virt.parallel.output_ints, native.parallel.output_ints,
            "{name}: integer output streams differ"
        );
        assert_eq!(
            virt.parallel.output_floats, native.parallel.output_floats,
            "{name}: float output streams differ"
        );
        assert_eq!(
            virt.parallel.cycles, native.parallel.cycles,
            "{name}: modelled cycle totals differ"
        );
        assert_eq!(
            virt.parallel.stats.breakdown, native.parallel.stats.breakdown,
            "{name}: modelled cycle breakdowns differ"
        );
        assert_eq!(
            virt.parallel.exit_code, native.parallel.exit_code,
            "{name}: exit codes differ"
        );

        // Physical-parallelism accounting: the virtual backend never spawns
        // OS threads; the native backend must have, whenever chunked
        // parallel work ran that was eligible for fan-out (loops with
        // STM-wrapped calls conservatively take the sequential chunk path,
        // so a workload whose only chunked loops carry transactions may
        // legitimately report 0).
        assert_eq!(virt.os_threads_used(), 0, "{name}");
        let chunked_invocations =
            native.parallel.stats.parallel_invocations - native.parallel.stats.spec_invocations;
        if chunked_invocations > 0 && native.parallel.stats.stm_transactions == 0 {
            assert!(
                native.os_threads_used() > 1,
                "{name}: native backend must fan chunked loops out across \
                 OS threads, reported {}",
                native.os_threads_used()
            );
        }
    }
}

/// Speculative (`SPECULATE`) equivalence across the thread axis: under the
/// native backend every may-dependent workload's incarnations race on a real
/// Block-STM worker pool, yet the *reported* numbers — final memory image,
/// output streams, modelled cycles and breakdown, and the speculation
/// counters feeding table 3 — must be bit-identical to the deterministic
/// virtual-time coordinator at every thread count, because the native
/// backend replays the deterministic engine in commit order for everything
/// it reports.
#[test]
fn speculative_workloads_agree_across_thread_counts() {
    for name in speculative_benchmarks() {
        let binary = train_binary(name);
        for threads in [1u32, 2, 4, 8] {
            let virt = run(&binary, BackendKind::VirtualTime, threads);
            let native = run(&binary, BackendKind::NativeThreads, threads);

            assert!(virt.outputs_match, "{name}@{threads}: virtual diverged");
            assert!(native.outputs_match, "{name}@{threads}: native diverged");
            assert_eq!(
                virt.parallel.memory_digest, native.parallel.memory_digest,
                "{name}@{threads}: final guest memory images differ"
            );
            assert_eq!(
                virt.parallel.output_ints, native.parallel.output_ints,
                "{name}@{threads}: integer output streams differ"
            );
            assert_eq!(
                virt.parallel.output_floats, native.parallel.output_floats,
                "{name}@{threads}: float output streams differ"
            );
            assert_eq!(
                virt.parallel.cycles, native.parallel.cycles,
                "{name}@{threads}: modelled cycle totals differ"
            );
            assert_eq!(
                virt.parallel.stats.breakdown, native.parallel.stats.breakdown,
                "{name}@{threads}: modelled cycle breakdowns differ"
            );
            // The speculation counters behind `figures table3`.
            let (vs, ns) = (&virt.parallel.stats, &native.parallel.stats);
            assert_eq!(
                (
                    vs.spec_invocations,
                    vs.spec_iterations,
                    vs.spec_executions,
                    vs.spec_aborts,
                    vs.spec_validations,
                    vs.spec_fallbacks,
                ),
                (
                    ns.spec_invocations,
                    ns.spec_iterations,
                    ns.spec_executions,
                    ns.spec_aborts,
                    ns.spec_validations,
                    ns.spec_fallbacks,
                ),
                "{name}@{threads}: speculation statistics differ"
            );

            // Physical fan-out: whenever speculative invocations actually
            // ran under the native backend with >1 lane, the racing pool
            // must have spawned >1 OS worker thread.
            assert_eq!(virt.os_threads_used(), 0, "{name}@{threads}");
            if threads >= 2 && ns.spec_invocations > 0 {
                assert!(
                    native.os_threads_used() > 1,
                    "{name}@{threads}: native backend must race speculative \
                     incarnations across OS threads, reported {}",
                    native.os_threads_used()
                );
            }
        }
    }
}

#[test]
fn native_backend_spawns_real_threads_and_measures_wall_time() {
    let binary = train_binary("470.lbm");
    let native = run(&binary, BackendKind::NativeThreads, 8);
    assert!(native.outputs_match);
    assert!(
        native.os_threads_used() > 1,
        "expected >1 OS threads, got {}",
        native.os_threads_used()
    );
    assert!(
        native.parallel.stats.parallel_wall_nanos > 0,
        "native parallel regions must take measurable wall time"
    );
    assert!(native.wall_seconds() > 0.0);

    let virt = run(&binary, BackendKind::VirtualTime, 8);
    assert_eq!(
        virt.parallel.stats.parallel_wall_nanos, 0,
        "virtual time must not report wall-clock parallel time"
    );
}
