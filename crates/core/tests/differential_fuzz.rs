//! The differential guest-program fuzzer as a tier-1 test.
//!
//! Every generated program runs through the whole equivalence matrix —
//! backend × thread count ∈ {1, 2, 4, 8} × speculative commit mode ×
//! adaptive on/off — via `janus_bench::fuzz::check_spec`, which asserts
//! exactly the contracts the hand-written equivalence batteries promise
//! (see that module's docs). Failures shrink to a minimal counterexample.
//!
//! The default case count keeps the test inside a tier-1 budget; set
//! `JANUS_FUZZ_CASES` (and optionally `JANUS_FUZZ_SEED`) to fuzz harder:
//!
//! ```text
//! JANUS_FUZZ_CASES=1024 cargo test -p janus-core --test differential_fuzz
//! ```
//!
//! The `figures fuzz --cases N --seed S` subcommand runs the same oracle
//! from the command line for long campaigns.

use janus_bench::fuzz::run_differential_fuzz;

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn generated_programs_agree_across_the_execution_matrix() {
    let cases = env_or("JANUS_FUZZ_CASES", 48) as usize;
    let seed = env_or("JANUS_FUZZ_SEED", 0);
    let report = run_differential_fuzz(cases, seed);
    assert_eq!(
        report.runs,
        cases * 24,
        "every case must run the full matrix"
    );
    assert!(
        report.failures.is_empty(),
        "{}\n{}",
        report.summary(),
        report
            .failures
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
