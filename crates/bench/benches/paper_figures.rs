//! Criterion benches, one group per table/figure of the paper plus two
//! ablation studies. Each bench measures the wall-clock cost of regenerating
//! the experiment (the experiment's own *result* — speedups, fractions — is
//! printed by the `figures` binary and recorded in `EXPERIMENTS.md`).

use criterion::{criterion_group, criterion_main, Criterion};
use janus_bench as bench;
use janus_compile::{CompileOptions, Compiler};
use janus_core::{Janus, JanusConfig, OptimisationMode};
use janus_workloads::workload;

fn bench_fig6_loop_classification(c: &mut Criterion) {
    // Static analysis + profiling of a representative workload (training
    // input), the per-benchmark unit of Figure 6.
    let w = workload("462.libquantum").unwrap();
    let binary = Compiler::new().compile(&w.train_program).unwrap();
    c.bench_function("fig6_classify_and_profile_libquantum_train", |b| {
        b.iter(|| {
            let janus = Janus::new();
            let analysis = janus.analyze(&binary).unwrap();
            let profile = janus.profile(&binary, &analysis, &[]).unwrap();
            (analysis.category_histogram(), profile.total_instructions)
        })
    });
}

fn bench_fig7_speedup(c: &mut Criterion) {
    let binary = bench::compile_train("470.lbm", CompileOptions::gcc_o3());
    let mut group = c.benchmark_group("fig7_speedup_lbm_train");
    group.sample_size(10);
    for (label, mode) in [
        ("dynamorio_only", OptimisationMode::DynamoRioOnly),
        ("janus_full_8t", OptimisationMode::Full),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                Janus::with_config(JanusConfig {
                    threads: 8,
                    mode,
                    ..JanusConfig::default()
                })
                .run(&binary, &[])
                .unwrap()
                .speedup()
            })
        });
    }
    group.finish();
}

fn bench_fig9_scaling(c: &mut Criterion) {
    let binary = bench::compile_train("462.libquantum", CompileOptions::gcc_o3());
    let mut group = c.benchmark_group("fig9_scaling_libquantum_train");
    group.sample_size(10);
    for threads in [1u32, 4, 8] {
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| {
                Janus::with_config(JanusConfig {
                    threads,
                    ..JanusConfig::default()
                })
                .run(&binary, &[])
                .unwrap()
                .speedup()
            })
        });
    }
    group.finish();
}

fn bench_fig10_schedule_size(c: &mut Criterion) {
    let binary = bench::compile_train("459.GemsFDTD", CompileOptions::gcc_o3());
    c.bench_function("fig10_schedule_generation_gemsfdtd", |b| {
        b.iter(|| {
            let janus = Janus::new();
            let analysis = janus.analyze(&binary).unwrap();
            let selected = janus.select_loops(&analysis, None);
            janus
                .generate_schedule(&binary, &analysis, &selected)
                .byte_size()
        })
    });
}

fn bench_fig11_and_fig12_compilation(c: &mut Criterion) {
    // The unit of Figures 11/12 that is not already covered above: compiling
    // the same workload under the different compiler configurations.
    let w = workload("436.cactusADM").unwrap();
    let mut group = c.benchmark_group("fig11_fig12_compiler_configs");
    for (label, opts) in [
        ("gcc_o2", CompileOptions::gcc_o2()),
        ("gcc_o3", CompileOptions::gcc_o3()),
        ("gcc_o3_avx", CompileOptions::gcc_o3_avx()),
        ("icc_o3", CompileOptions::icc_o3()),
        ("gcc_parallel8", CompileOptions::gcc_parallel(8)),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                Compiler::with_options(opts)
                    .compile(&w.train_program)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_table1_bounds_checks(c: &mut Criterion) {
    let binary = bench::compile_train("459.GemsFDTD", CompileOptions::gcc_o3());
    c.bench_function("table1_alias_analysis_gemsfdtd", |b| {
        b.iter(|| {
            let analysis = Janus::new().analyze(&binary).unwrap();
            analysis
                .loops
                .iter()
                .map(|l| l.bounds_checks.len())
                .sum::<usize>()
        })
    });
}

fn bench_ablation_sched_policy(c: &mut Criterion) {
    // Ablation: profitability threshold (minimum iterations per thread).
    let binary = bench::compile_train("433.milc", CompileOptions::gcc_o3());
    let mut group = c.benchmark_group("ablation_min_iterations_per_thread");
    group.sample_size(10);
    for min_iters in [1u64, 8, 64] {
        group.bench_function(format!("min_{min_iters}"), |b| {
            b.iter(|| {
                let mut config = JanusConfig::default();
                config.dbm.min_iterations_per_thread = min_iters;
                Janus::with_config(config)
                    .run(&binary, &[])
                    .unwrap()
                    .speedup()
            })
        });
    }
    group.finish();
}

fn bench_ablation_stm(c: &mut Criterion) {
    // Ablation: the STM path (bwaves' shared-library call) vs a workload
    // without speculation.
    let bwaves = bench::compile_train("410.bwaves", CompileOptions::gcc_o3());
    let lbm = bench::compile_train("470.lbm", CompileOptions::gcc_o3());
    let mut group = c.benchmark_group("ablation_stm_speculation");
    group.sample_size(10);
    group.bench_function("bwaves_with_stm", |b| {
        b.iter(|| Janus::new().run(&bwaves, &[]).unwrap().speedup())
    });
    group.bench_function("lbm_without_stm", |b| {
        b.iter(|| Janus::new().run(&lbm, &[]).unwrap().speedup())
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig6_loop_classification,
    bench_fig7_speedup,
    bench_fig9_scaling,
    bench_fig10_schedule_size,
    bench_fig11_and_fig12_compilation,
    bench_table1_bounds_checks,
    bench_ablation_sched_policy,
    bench_ablation_stm
);
criterion_main!(figures);
