//! Regenerates every table and figure of the paper's evaluation and prints
//! them as text tables, plus a machine-readable per-backend benchmark.
//!
//! Usage:
//! `cargo run --release -p janus-bench --bin figures -- \
//!     [fig6|fig7|...|table3|bench-json|trace|all] [--backend virtual|native] [--threads N]`
//!
//! `--backend` selects the execution backend for every figure; it defaults
//! to `JANUS_BACKEND` (or virtual time) and is threaded explicitly through
//! every figure function — the process environment is never mutated.
//! Modelled cycles — and therefore every printed figure — are identical
//! across backends, so the flag matters for wall-clock measurements and for
//! `bench-json`, which writes `BENCH_<backend>.json` with per-workload
//! speedup and wall time. `--threads` controls the thread-scaling figures
//! (default 8). `fuzz [--cases N] [--seed S]` runs the differential
//! guest-program fuzzer (see `janus_bench::fuzz`) instead of a figure.

use janus_bench as bench;
use janus_core::BackendKind;

/// A named figure renderer taking the execution backend and thread count.
type Figure = (&'static str, fn(BackendKind, u32));

const FIGURES: [Figure; 12] = [
    ("fig6", |_, _| fig6()),
    ("fig7", fig7),
    ("fig8", |backend, _| fig8(backend)),
    ("fig9", fig9),
    ("fig10", |backend, _| fig10(backend)),
    ("fig11", fig11),
    ("fig12", fig12),
    ("table1", |_, _| table1()),
    ("table2", |_, _| table2()),
    ("table3", table3),
    ("bench-json", bench_json),
    ("trace", |backend, _| trace(backend)),
];

fn usage() -> ! {
    let names: Vec<&str> = FIGURES.iter().map(|(n, _)| *n).collect();
    eprintln!(
        "usage: figures [{} | fuzz | all] [--backend virtual|native] \
         [--threads N] [--cases N] [--seed S]\n       \
         figures bench-diff BASELINE.json NEW.json [--wall-tol FRACTION]",
        names.join(" | ")
    );
    std::process::exit(2);
}

fn main() {
    let mut positionals: Vec<String> = Vec::new();
    let mut threads: u32 = 8;
    // The backend is threaded explicitly through every figure function
    // (never written back into the environment); the flag overrides the
    // JANUS_BACKEND default.
    let mut backend = BackendKind::from_env();
    let mut cases: usize = 256;
    let mut seed: u64 = 0;
    let mut wall_tol: f64 = janus_bench::diff::DEFAULT_WALL_TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => {
                let value = args.next().unwrap_or_else(|| usage());
                let Some(kind) = BackendKind::parse(&value) else {
                    eprintln!("unknown backend {value:?}; expected virtual or native");
                    std::process::exit(2);
                };
                backend = kind;
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t| *t > 0)
                    .unwrap_or_else(|| usage());
            }
            "--cases" => {
                cases = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|c| *c > 0)
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--wall-tol" => {
                wall_tol = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| *t >= 0.0)
                    .unwrap_or_else(|| usage());
            }
            name if !name.starts_with('-') => {
                positionals.push(name.to_string());
            }
            _ => usage(),
        }
    }
    let which = positionals
        .first()
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    if which == "bench-diff" {
        let [_, baseline, fresh] = positionals.as_slice() else {
            usage();
        };
        bench_diff(baseline, fresh, wall_tol);
        return;
    }
    if positionals.len() > 1 {
        usage();
    }
    if which == "fuzz" {
        fuzz(cases, seed);
        return;
    }
    if which == "all" {
        for (name, run) in FIGURES {
            // `bench-json` and `trace` are export commands (they write
            // files); keep the default figure sweep a pure print.
            if name != "bench-json" && name != "trace" {
                run(backend, threads);
            }
        }
        return;
    }
    match FIGURES.iter().find(|(name, _)| *name == which) {
        Some((_, run)) => run(backend, threads),
        None => usage(),
    }
}

/// The regression sentinel: diff a fresh `BENCH_<backend>.json` against the
/// committed baseline, failing (exit 1) on any correctness-counter change
/// or a wall-clock regression past the tolerance. See `janus_bench::diff`.
fn bench_diff(baseline: &str, fresh: &str, wall_tol: f64) {
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench-diff: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let old = read(baseline);
    let new = read(fresh);
    let diff = match bench::diff::diff_bench_json(&old, &new, wall_tol) {
        Ok(diff) => diff,
        Err(e) => {
            eprintln!("bench-diff: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "bench-diff: {} vs {}: {} metrics compared, {} skipped as \
         nondeterministic, wall tolerance {:.0}%",
        baseline,
        fresh,
        diff.compared,
        diff.skipped,
        wall_tol * 100.0
    );
    for note in &diff.notes {
        println!("  note: {note}");
    }
    if diff.passed() {
        println!("bench-diff: PASS");
        return;
    }
    for failure in &diff.failures {
        eprintln!("  FAIL: {failure}");
    }
    eprintln!("bench-diff: {} regression(s)", diff.failures.len());
    std::process::exit(1);
}

/// The differential guest-program fuzzer: `cases` generated programs from
/// `seed`, each checked across the whole (backend × threads × commit mode ×
/// adaptive) equivalence matrix. Both backends are always exercised —
/// `--backend` does not apply here.
fn fuzz(cases: usize, seed: u64) {
    println!("=== Differential fuzz: {cases} generated programs, seed {seed} ===");
    let report = bench::fuzz::run_differential_fuzz(cases, seed);
    println!("{}", report.summary());
    if !report.failures.is_empty() {
        for f in &report.failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
}

fn bench_json(backend: BackendKind, threads: u32) {
    let rows = bench::backend_bench(backend, threads);
    // The serving figure: a mixed 200-job batch over the whole suite through
    // a 4-worker `janus-serve` session (jobs/sec, cache hit rate, p50/p99
    // job wall time) — the trajectory's record of serving performance.
    let serve = bench::serve_throughput(backend, 4, 200);
    // The warm-vs-cold serve figure: the suite served against an empty
    // artifact store, then again by a restarted session over the populated
    // one — persistence's restart payoff (zero rebuilds) on record.
    let warm = bench::serve_warm_start(backend, 4);
    // The adaptive-execution figure: every workload with the per-loop tuner
    // off and on, so the trajectory records what runtime adaptation buys in
    // wall time (gain > 1) and that no workload pays for it (gain ≈ 1 when
    // the tuner settles on the static policy).
    let adaptive = bench::adaptive_bench(backend, threads);
    let json =
        bench::backend_bench_json(&rows, threads, Some(&serve), Some(&warm), Some(&adaptive));
    let path = format!("BENCH_{}.json", backend.label());
    std::fs::write(&path, &json).expect("write benchmark json");
    println!(
        "\n=== Backend benchmark ({} backend, {} threads) -> {} ===",
        backend.label(),
        threads,
        path
    );
    println!(
        "{:<22} {:>9} {:>14} {:>12} {:>10} {:>6}",
        "workload", "speedup", "cycles", "wall (s)", "threads", "match"
    );
    for r in &rows {
        println!(
            "{:<22} {:>9.2} {:>14} {:>12.4} {:>10} {:>6}",
            r.name,
            r.speedup,
            r.cycles,
            r.wall_seconds,
            r.os_threads_used,
            if r.outputs_match { "yes" } else { "NO" },
        );
    }
    println!(
        "serve-throughput: {} jobs / {} workers: {:.1} jobs/s, \
         hit rate {:.1}%, p50 {:.4}s, p99 {:.4}s, {} failures",
        serve.jobs,
        serve.workers,
        serve.jobs_per_sec,
        serve.cache_hit_rate * 100.0,
        serve.p50_job_seconds,
        serve.p99_job_seconds,
        serve.failures,
    );
    println!(
        "serve-warm-start: {} workloads: cold {:.3}s ({} analyses) -> \
         warm {:.3}s ({} analyses, {} disk hits, {:.1}x), store {} bytes",
        warm.workloads,
        warm.cold_seconds,
        warm.cold_misses,
        warm.warm_seconds,
        warm.warm_misses,
        warm.warm_disk_hits,
        warm.warm_speedup,
        warm.store_bytes,
    );
    println!(
        "\n{:<22} {:>12} {:>12} {:>7} {:>9} {:>9} {:>10} {:>6}",
        "adaptive", "static (s)", "tuned (s)", "gain", "tune.par", "tune.seq", "pg.skip", "match"
    );
    for r in &adaptive {
        println!(
            "{:<22} {:>12.4} {:>12.4} {:>7.2} {:>9} {:>9} {:>10} {:>6}",
            r.name,
            r.static_wall_seconds,
            r.adaptive_wall_seconds,
            r.adaptive_gain,
            r.tune_parallel,
            r.tune_sequential,
            r.pages_skipped,
            if r.outputs_match { "yes" } else { "NO" },
        );
    }
    println!(
        "adaptive geomean gain: {:.3}x",
        bench::geomean(&adaptive.iter().map(|r| r.adaptive_gain).collect::<Vec<_>>())
    );
}

fn trace(backend: BackendKind) {
    let run = bench::serve_trace(backend, 4);
    let path = format!("TRACE_{}.json", backend.label());
    std::fs::write(&path, &run.chrome_json).expect("write chrome trace");
    println!(
        "\n=== Flight recorder: {} jobs / {} workers ({} backend) -> {} ===",
        run.jobs,
        run.workers,
        backend.label(),
        path
    );
    println!(
        "events: {} captured, {} dropped; load the file in ui.perfetto.dev",
        run.events, run.dropped
    );
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "stage", "count", "p50 (s)", "p90 (s)", "p99 (s)", "max (s)"
    );
    for (stage, s) in [
        ("queue-wait", run.stats.job_queue_wait),
        ("execute", run.stats.job_execute),
        ("job-wall", run.stats.job_wall),
    ] {
        println!(
            "{:<14} {:>6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            stage,
            s.count,
            s.p50_seconds(),
            s.p90_seconds(),
            s.p99_seconds(),
            s.max_seconds(),
        );
    }
}

fn fig6() {
    println!("\n=== Figure 6: loop classification (static % | execution-time %) ===");
    println!(
        "{:<16} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}   {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "benchmark", "A", "B", "C", "D", "spec", "inc", "A", "B", "C", "D", "spec", "inc"
    );
    for row in bench::fig6_loop_classification() {
        let s = row.static_fraction;
        let t = row.time_fraction;
        println!(
            "{:<16} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%   {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            row.name,
            s[0] * 100.0, s[1] * 100.0, s[2] * 100.0, s[3] * 100.0, s[4] * 100.0, s[5] * 100.0,
            t[0] * 100.0, t[1] * 100.0, t[2] * 100.0, t[3] * 100.0, t[4] * 100.0, t[5] * 100.0
        );
    }
}

fn fig7(backend: BackendKind, threads: u32) {
    println!("\n=== Figure 7: whole-program speedup, {threads} threads ===");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "DynamoRIO", "Static", "+Profile", "Janus"
    );
    let rows = bench::fig7_speedup(backend, threads);
    for r in &rows {
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            r.name, r.dynamorio, r.statically_driven, r.with_profile, r.janus
        );
    }
    println!(
        "{:<16} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
        "geomean",
        bench::geomean(&rows.iter().map(|r| r.dynamorio).collect::<Vec<_>>()),
        bench::geomean(&rows.iter().map(|r| r.statically_driven).collect::<Vec<_>>()),
        bench::geomean(&rows.iter().map(|r| r.with_profile).collect::<Vec<_>>()),
        bench::geomean(&rows.iter().map(|r| r.janus).collect::<Vec<_>>()),
    );
}

fn fig8(backend: BackendKind) {
    println!("\n=== Figure 8: execution-time breakdown (fractions) ===");
    println!(
        "{:<16} {:>3}  {:>10} {:>10} {:>12} {:>12} {:>10}",
        "benchmark", "T", "sequential", "parallel", "init/finish", "translation", "checks"
    );
    for row in bench::fig8_breakdown(backend) {
        let f = row.fractions;
        println!(
            "{:<16} {:>3}  {:>9.1}% {:>9.1}% {:>11.1}% {:>11.1}% {:>9.1}%",
            row.name,
            row.threads,
            f[0] * 100.0,
            f[1] * 100.0,
            f[2] * 100.0,
            f[3] * 100.0,
            f[4] * 100.0
        );
    }
}

fn fig9(backend: BackendKind, threads: u32) {
    println!("\n=== Figure 9: speedup vs number of threads ===");
    print!("{:<16}", "benchmark");
    for t in 1..=threads {
        print!(" {:>6}", format!("{t}T"));
    }
    println!();
    for (name, series) in bench::fig9_scaling(backend, threads) {
        print!("{name:<16}");
        for (_, s) in series {
            print!(" {s:>6.2}");
        }
        println!();
    }
}

fn fig10(backend: BackendKind) {
    println!("\n=== Figure 10: rewrite-schedule size (% of binary size) ===");
    let rows = bench::fig10_schedule_size(backend);
    for (name, pct) in &rows {
        println!("{name:<16} {pct:>6.2}%");
    }
    println!(
        "{:<16} {:>6.2}%",
        "geomean",
        bench::geomean(&rows.iter().map(|(_, p)| *p).collect::<Vec<_>>())
    );
}

fn fig11(backend: BackendKind, threads: u32) {
    println!("\n=== Figure 11: Janus vs compiler auto-parallelisation ({threads} threads) ===");
    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>14}",
        "benchmark", "gcc -parallel", "Janus on gcc", "icc -parallel", "Janus on icc"
    );
    let rows = bench::fig11_compiler_comparison(backend, threads);
    for r in &rows {
        println!(
            "{:<16} {:>12.2} {:>14.2} {:>12.2} {:>14.2}",
            r.name, r.gcc_parallel, r.janus_on_gcc, r.icc_parallel, r.janus_on_icc
        );
    }
    println!(
        "{:<16} {:>12.2} {:>14.2} {:>12.2} {:>14.2}",
        "geomean",
        bench::geomean(&rows.iter().map(|r| r.gcc_parallel).collect::<Vec<_>>()),
        bench::geomean(&rows.iter().map(|r| r.janus_on_gcc).collect::<Vec<_>>()),
        bench::geomean(&rows.iter().map(|r| r.icc_parallel).collect::<Vec<_>>()),
        bench::geomean(&rows.iter().map(|r| r.janus_on_icc).collect::<Vec<_>>()),
    );
}

fn fig12(backend: BackendKind, threads: u32) {
    println!("\n=== Figure 12: Janus speedup by compiler optimisation level ===");
    println!(
        "{:<16} {:>8} {:>8} {:>10}",
        "benchmark", "-O2", "-O3", "-O3 -mavx"
    );
    let rows = bench::fig12_opt_levels(backend, threads);
    for (name, s) in &rows {
        println!("{:<16} {:>8.2} {:>8.2} {:>10.2}", name, s[0], s[1], s[2]);
    }
    for (i, label) in ["-O2", "-O3", "-O3 -mavx"].iter().enumerate() {
        let g = bench::geomean(&rows.iter().map(|(_, s)| s[i]).collect::<Vec<_>>());
        println!("geomean {label:<10} {g:>8.2}");
    }
}

fn table1() {
    println!("\n=== Table I: mean array-bounds checks per loop requiring them ===");
    for (name, mean) in bench::table1_bounds_checks() {
        println!("{name:<16} {mean:>6.1}");
    }
}

fn table3(backend: BackendKind, threads: u32) {
    println!("\n=== Table III: speculative DOACROSS execution ({threads} threads) ===");
    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>8} {:>8} {:>10} {:>9} {:>6}",
        "workload",
        "iters",
        "execs",
        "aborts",
        "retries",
        "abort%",
        "stm.abrts",
        "speedup",
        "match"
    );
    for r in bench::table3_speculation(backend, threads) {
        println!(
            "{:<22} {:>10} {:>10} {:>8} {:>8} {:>7.1}% {:>10} {:>9.2} {:>6}",
            r.name,
            r.iterations,
            r.executions,
            r.aborts,
            r.retries,
            r.abort_rate * 100.0,
            r.stm_aborts,
            r.speedup,
            if r.outputs_match { "yes" } else { "NO" },
        );
    }
}

fn table2() {
    println!("\n=== Table II: binary parallelisation tools (qualitative) ===");
    for row in bench::table2_tool_comparison() {
        println!(
            "{:<22} {:<26} {:<12} {:<22} {:<15} {:<17} {}",
            row[0], row[1], row[2], row[3], row[4], row[5], row[6]
        );
    }
}
