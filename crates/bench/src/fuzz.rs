//! # The differential guest-program fuzzer
//!
//! Runs every program that [`janus_workloads::gen`] generates through the
//! whole configuration matrix the repo's equivalence batteries promise
//! anything about — backend × thread count ∈ {1, 2, 4, 8} × speculative
//! commit mode × adaptive on/off — and asserts exactly the contracts the
//! hand-written tests pin on the named suite:
//!
//! * **Always** (every cell): the parallel run reproduces the native
//!   baseline (`outputs_match` — exact integers, tolerance floats) and its
//!   exit code.
//! * **Deterministic commit, tuner off**: virtual-time and native-threads
//!   are bit-identical — final memory digest, both output streams, modelled
//!   cycle total and breakdown, exit code — at every thread count.
//! * **Raced-image commit** under native threads: identical guest state
//!   (digest, streams, exit code) to the deterministic commit, and no
//!   *more* modelled cycles; under virtual time the knob must change
//!   nothing at all, statistics included.
//! * **Adaptive on**: guest results still match the baseline on both
//!   backends (modelled numbers may legitimately move).
//!
//! A violated contract is shrunk to a locally-minimal counterexample with
//! [`ProgramSpec::shrink`] (re-running the full matrix on every candidate)
//! and reported with the seed, the violated check and the minimal spec.
//! The promotion rule: any minimal counterexample becomes a named workload
//! in `janus_workloads::suite` and a named regression test, so the fuzzer
//! only ever finds each bug once.

use janus_compile::Compiler;
use janus_core::{BackendKind, DbmConfig, Janus, JanusConfig, JanusReport, SpecCommitMode};
use janus_ir::JBinary;
use janus_workloads::ProgramSpec;
use std::fmt;

/// The thread counts every generated program is exercised at.
pub const FUZZ_THREADS: [u32; 4] = [1, 2, 4, 8];

/// One contract violation, after shrinking.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Seed of the originally-failing generated program.
    pub seed: u64,
    /// The first violated check on the *minimal* spec.
    pub check: String,
    /// Human-readable minimal counterexample.
    pub minimal: String,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {}: {}\n  minimal counterexample: {}",
            self.seed, self.check, self.minimal
        )
    }
}

/// The result of a fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Programs generated and checked.
    pub cases: usize,
    /// First seed of the campaign (seeds are consecutive from here).
    pub start_seed: u64,
    /// Total pipeline runs executed (compiles excluded).
    pub runs: usize,
    /// Contract violations, each shrunk to a minimal counterexample.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} generated programs (seeds {}..{}), {} pipeline runs across \
             backend x threads {:?} x commit mode x adaptive: {} divergence(s)",
            self.cases,
            self.start_seed,
            self.start_seed + self.cases as u64,
            self.runs,
            FUZZ_THREADS,
            self.failures.len(),
        )
    }
}

fn run_config(
    binary: &JBinary,
    backend: BackendKind,
    threads: u32,
    commit: SpecCommitMode,
    adaptive: bool,
) -> Result<JanusReport, String> {
    Janus::with_config(JanusConfig {
        threads,
        backend,
        dbm: DbmConfig {
            spec_commit: commit,
            adaptive,
            ..DbmConfig::default()
        },
        ..JanusConfig::default()
    })
    .run(binary, &[])
    .map_err(|e| {
        format!(
            "pipeline failed ({backend}, {threads}t, {}, adaptive={adaptive}): {e}",
            commit.label()
        )
    })
}

/// Asserts one bit-identity between two reports; formats a counterexample
/// message on mismatch.
macro_rules! must_eq {
    ($ctx:expr, $what:expr, $a:expr, $b:expr) => {
        if $a != $b {
            return Err(format!("{}: {} differ: {:?} vs {:?}", $ctx, $what, $a, $b));
        }
    };
}

/// Runs the full differential matrix over one generated spec. `Ok(runs)`
/// carries the number of pipeline runs; `Err` describes the first violated
/// contract.
pub fn check_spec(spec: &ProgramSpec) -> Result<usize, String> {
    let program = spec.lower();
    let binary = Compiler::new()
        .compile(&program)
        .map_err(|e| format!("generated program failed to compile: {e}"))?;
    let mut runs = 0usize;

    for threads in FUZZ_THREADS {
        // --- Deterministic commit, tuner off: the bit-identity anchor. ---
        let det_v = run_config(
            &binary,
            BackendKind::VirtualTime,
            threads,
            SpecCommitMode::Deterministic,
            false,
        )?;
        let det_n = run_config(
            &binary,
            BackendKind::NativeThreads,
            threads,
            SpecCommitMode::Deterministic,
            false,
        )?;
        runs += 2;
        let ctx = format!("{threads}t deterministic");
        if !det_v.outputs_match {
            return Err(format!(
                "{ctx}: virtual-time output diverged from native baseline"
            ));
        }
        if !det_n.outputs_match {
            return Err(format!(
                "{ctx}: native-threads output diverged from native baseline"
            ));
        }
        must_eq!(
            ctx,
            "final memory digests",
            det_v.parallel.memory_digest,
            det_n.parallel.memory_digest
        );
        must_eq!(
            ctx,
            "integer output streams",
            det_v.parallel.output_ints,
            det_n.parallel.output_ints
        );
        must_eq!(
            ctx,
            "float output streams",
            det_v.parallel.output_floats,
            det_n.parallel.output_floats
        );
        must_eq!(
            ctx,
            "modelled cycle totals",
            det_v.parallel.cycles,
            det_n.parallel.cycles
        );
        must_eq!(
            ctx,
            "modelled cycle breakdowns",
            det_v.parallel.stats.breakdown,
            det_n.parallel.stats.breakdown
        );
        must_eq!(
            ctx,
            "exit codes",
            det_v.parallel.exit_code,
            det_n.parallel.exit_code
        );
        let (vs, ns) = (&det_v.parallel.stats, &det_n.parallel.stats);
        must_eq!(
            ctx,
            "speculation statistics",
            (
                vs.spec_invocations,
                vs.spec_iterations,
                vs.spec_executions,
                vs.spec_aborts,
                vs.spec_validations,
                vs.spec_fallbacks
            ),
            (
                ns.spec_invocations,
                ns.spec_iterations,
                ns.spec_executions,
                ns.spec_aborts,
                ns.spec_validations,
                ns.spec_fallbacks
            )
        );

        // --- Raced-image commit: identical guest state, fewer-or-equal
        // modelled cycles under native threads; a no-op under virtual time. ---
        let raced_v = run_config(
            &binary,
            BackendKind::VirtualTime,
            threads,
            SpecCommitMode::RacedImage,
            false,
        )?;
        let raced_n = run_config(
            &binary,
            BackendKind::NativeThreads,
            threads,
            SpecCommitMode::RacedImage,
            false,
        )?;
        runs += 2;
        let ctx = format!("{threads}t raced-image");
        if !raced_v.outputs_match || !raced_n.outputs_match {
            return Err(format!("{ctx}: output diverged from native baseline"));
        }
        must_eq!(
            ctx,
            "virtual-time digests across commit modes",
            raced_v.parallel.memory_digest,
            det_v.parallel.memory_digest
        );
        must_eq!(
            ctx,
            "virtual-time cycles across commit modes",
            raced_v.parallel.cycles,
            det_v.parallel.cycles
        );
        must_eq!(
            ctx,
            "virtual-time statistics across commit modes",
            raced_v.parallel.stats,
            det_v.parallel.stats
        );
        must_eq!(
            ctx,
            "native digests across commit modes",
            raced_n.parallel.memory_digest,
            det_n.parallel.memory_digest
        );
        must_eq!(
            ctx,
            "native integer outputs across commit modes",
            raced_n.parallel.output_ints,
            det_n.parallel.output_ints
        );
        must_eq!(
            ctx,
            "native float outputs across commit modes",
            raced_n.parallel.output_floats,
            det_n.parallel.output_floats
        );
        must_eq!(
            ctx,
            "native exit codes across commit modes",
            raced_n.parallel.exit_code,
            det_n.parallel.exit_code
        );
        if raced_n.parallel.cycles > det_n.parallel.cycles {
            return Err(format!(
                "{ctx}: raced-image reported more modelled cycles ({} > {})",
                raced_n.parallel.cycles, det_n.parallel.cycles
            ));
        }

        // --- Adaptive on: wall-time policy, so guest results only. ---
        let adp_v = run_config(
            &binary,
            BackendKind::VirtualTime,
            threads,
            SpecCommitMode::Deterministic,
            true,
        )?;
        let adp_n = run_config(
            &binary,
            BackendKind::NativeThreads,
            threads,
            SpecCommitMode::Deterministic,
            true,
        )?;
        runs += 2;
        let ctx = format!("{threads}t adaptive");
        if !adp_v.outputs_match {
            return Err(format!(
                "{ctx}: virtual-time output diverged under adaptation"
            ));
        }
        if !adp_n.outputs_match {
            return Err(format!(
                "{ctx}: native-threads output diverged under adaptation"
            ));
        }
        must_eq!(
            ctx,
            "virtual exit codes",
            adp_v.parallel.exit_code,
            adp_v.native.exit_code
        );
        must_eq!(
            ctx,
            "native exit codes",
            adp_n.parallel.exit_code,
            adp_n.native.exit_code
        );
    }
    Ok(runs)
}

/// Runs `cases` consecutive seeds starting at `start_seed` through
/// [`check_spec`], shrinking every failure to a minimal counterexample.
#[must_use]
pub fn run_differential_fuzz(cases: usize, start_seed: u64) -> FuzzReport {
    let mut report = FuzzReport {
        cases,
        start_seed,
        runs: 0,
        failures: Vec::new(),
    };
    for i in 0..cases {
        let seed = start_seed + i as u64;
        let spec = ProgramSpec::generate(seed);
        match check_spec(&spec) {
            Ok(runs) => report.runs += runs,
            Err(first) => {
                // Shrink while the failure (any failure — a shifted check is
                // still the same campaign) reproduces.
                let minimal = spec.shrink(|s| check_spec(s).is_err());
                let check = check_spec(&minimal).err().unwrap_or(first);
                report.failures.push(FuzzFailure {
                    seed,
                    check,
                    minimal: minimal.to_string(),
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_seed_passes_the_whole_matrix() {
        let spec = ProgramSpec::generate(7);
        let runs = check_spec(&spec).expect("seed must pass the matrix");
        // 3 configurations x 2 backends at each of the 4 thread counts.
        assert_eq!(runs, 24);
    }
}
