//! # janus-bench — reproduction of every table and figure
//!
//! Each public function regenerates the data behind one table or figure of
//! the paper's evaluation (section III) using the synthetic workload suite.
//! The `figures` binary prints them all; the Criterion benches in
//! `benches/paper_figures.rs` wrap the same functions so `cargo bench`
//! exercises every experiment.
//!
//! Absolute numbers differ from the paper (the substrate is a deterministic
//! virtual-time simulator, not an eight-core Xeon), but the qualitative
//! shapes — which benchmarks speed up, by roughly what factor, and where the
//! overheads sit — are reproduced. `EXPERIMENTS.md` records a side-by-side
//! comparison.

#![warn(missing_docs)]

pub mod diff;
pub mod fuzz;

use janus_analysis::LoopCategory;
use janus_compile::{CompileOptions, Compiler, OptLevel};
use janus_core::{BackendKind, Janus, JanusConfig, OptimisationMode};
use janus_ir::JBinary;
use janus_vm::{Process, Vm};
use janus_workloads::{parallel_benchmarks, speculative_benchmarks, suite, workload};

/// Compiles a workload's reference program with the given options.
#[must_use]
pub fn compile_ref(name: &str, options: CompileOptions) -> JBinary {
    let w = workload(name).expect("known workload");
    Compiler::with_options(options)
        .compile(&w.program)
        .expect("workload compiles")
}

/// Compiles a workload's training program.
#[must_use]
pub fn compile_train(name: &str, options: CompileOptions) -> JBinary {
    let w = workload(name).expect("known workload");
    Compiler::with_options(options)
        .compile(&w.train_program)
        .expect("workload compiles")
}

/// Runs a binary natively and returns its cycle count.
#[must_use]
pub fn native_cycles(binary: &JBinary) -> u64 {
    let mut vm = Vm::new(Process::load(binary).expect("loads"));
    vm.run().expect("native run succeeds").cycles
}

/// One row of Figure 6: per-category static loop fractions and execution-time
/// fractions for one benchmark.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Fraction of static loops per category (A, B, C, D, speculative,
    /// incompatible).
    pub static_fraction: [f64; 6],
    /// Fraction of execution time per category.
    pub time_fraction: [f64; 6],
}

/// Figure 6: loop classification across the whole suite (training inputs).
#[must_use]
pub fn fig6_loop_classification() -> Vec<Fig6Row> {
    let order = [
        LoopCategory::StaticDoall,
        LoopCategory::StaticDependence,
        LoopCategory::DynamicDoall,
        LoopCategory::DynamicDependence,
        LoopCategory::Speculative,
        LoopCategory::Incompatible,
    ];
    let mut rows = Vec::new();
    for w in suite() {
        let binary = Compiler::with_options(CompileOptions::gcc_o3())
            .compile(&w.train_program)
            .expect("compiles");
        let janus = Janus::new();
        let analysis = janus.analyze(&binary).expect("analysis succeeds");
        let profile = janus
            .profile(&binary, &analysis, &[])
            .expect("profiling succeeds");
        let total_loops = analysis.loops.len().max(1) as f64;
        let hist = analysis.category_histogram();
        let mut static_fraction = [0.0; 6];
        for (i, cat) in order.iter().enumerate() {
            static_fraction[i] =
                hist.iter().find(|(c, _)| c == cat).map_or(0, |(_, n)| *n) as f64 / total_loops;
        }
        let times = profile.category_time_fractions(&analysis);
        let mut time_fraction = [0.0; 6];
        for (i, cat) in order.iter().enumerate() {
            time_fraction[i] = times
                .iter()
                .find(|(c, _)| c == cat)
                .map_or(0.0, |(_, f)| *f);
        }
        rows.push(Fig6Row {
            name: w.name,
            static_fraction,
            time_fraction,
        });
    }
    rows
}

/// One row of Figure 7: speedups of the four configurations for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Benchmark name.
    pub name: &'static str,
    /// DynamoRIO-only (overhead) speedup.
    pub dynamorio: f64,
    /// Statically-driven parallelisation.
    pub statically_driven: f64,
    /// Statically-driven plus profile guidance.
    pub with_profile: f64,
    /// Full Janus (profile + runtime checks + speculation).
    pub janus: f64,
}

fn run_mode(
    binary: &JBinary,
    backend: BackendKind,
    mode: OptimisationMode,
    threads: u32,
) -> janus_core::JanusReport {
    Janus::with_config(JanusConfig {
        threads,
        backend,
        mode,
        ..JanusConfig::default()
    })
    .run(binary, &[])
    .expect("pipeline succeeds")
}

/// Figure 7: whole-program speedup with eight threads for the nine
/// parallelisable benchmarks, under the four configurations.
#[must_use]
pub fn fig7_speedup(backend: BackendKind, threads: u32) -> Vec<Fig7Row> {
    parallel_benchmarks()
        .iter()
        .map(|name| {
            let binary = compile_ref(name, CompileOptions::gcc_o3());
            let rows = [
                OptimisationMode::DynamoRioOnly,
                OptimisationMode::StaticallyDriven,
                OptimisationMode::StaticallyDrivenProfile,
                OptimisationMode::Full,
            ]
            .map(|mode| run_mode(&binary, backend, mode, threads).speedup());
            Fig7Row {
                name,
                dynamorio: rows[0],
                statically_driven: rows[1],
                with_profile: rows[2],
                janus: rows[3],
            }
        })
        .collect()
}

/// One row of Figure 8: execution-time breakdown for one benchmark at a given
/// thread count, as fractions of that run's total time.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Threads used.
    pub threads: u32,
    /// (sequential, parallel, init/finish, translation, checks + stm).
    pub fractions: [f64; 5],
}

/// Figure 8: breakdown of execution time for one and eight threads.
#[must_use]
pub fn fig8_breakdown(backend: BackendKind) -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    for name in parallel_benchmarks() {
        let binary = compile_ref(name, CompileOptions::gcc_o3());
        for threads in [1u32, 8] {
            let report = run_mode(&binary, backend, OptimisationMode::Full, threads);
            let f = report.parallel.stats.breakdown.fractions();
            rows.push(Fig8Row {
                name,
                threads,
                fractions: [f[0], f[1], f[2], f[3], f[4] + f[5]],
            });
        }
    }
    rows
}

/// Figure 9: speedup for 1..=8 threads per benchmark. Returns
/// `(name, Vec<(threads, speedup)>)` series.
#[must_use]
pub fn fig9_scaling(
    backend: BackendKind,
    max_threads: u32,
) -> Vec<(&'static str, Vec<(u32, f64)>)> {
    parallel_benchmarks()
        .iter()
        .map(|name| {
            let binary = compile_ref(name, CompileOptions::gcc_o3());
            let series = (1..=max_threads)
                .map(|t| {
                    (
                        t,
                        run_mode(&binary, backend, OptimisationMode::Full, t).speedup(),
                    )
                })
                .collect();
            (*name, series)
        })
        .collect()
}

/// Figure 10: rewrite-schedule size as a percentage of binary size.
#[must_use]
pub fn fig10_schedule_size(backend: BackendKind) -> Vec<(&'static str, f64)> {
    parallel_benchmarks()
        .iter()
        .map(|name| {
            let binary = compile_ref(name, CompileOptions::gcc_o3());
            let report = run_mode(&binary, backend, OptimisationMode::Full, 8);
            (*name, report.schedule_size_fraction() * 100.0)
        })
        .collect()
}

/// One row of Figure 11: Janus vs compiler auto-parallelisation, for gcc-like
/// and icc-like configurations, normalised to each compiler's own `-O3`.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Row {
    /// Benchmark name.
    pub name: &'static str,
    /// `gcc -O3 -ftree-parallelize-loops=8` over `gcc -O3`.
    pub gcc_parallel: f64,
    /// Janus on the `gcc -O3` binary.
    pub janus_on_gcc: f64,
    /// `icc -O3 -parallel` over `icc -O3`.
    pub icc_parallel: f64,
    /// Janus on the `icc -O3` binary.
    pub janus_on_icc: f64,
}

/// Figure 11: comparison with compiler auto-parallelisation.
#[must_use]
pub fn fig11_compiler_comparison(backend: BackendKind, threads: u32) -> Vec<Fig11Row> {
    parallel_benchmarks()
        .iter()
        .map(|name| {
            let gcc_seq = compile_ref(name, CompileOptions::gcc_o3());
            let gcc_par = compile_ref(name, CompileOptions::gcc_parallel(threads));
            let icc_seq = compile_ref(name, CompileOptions::icc_o3());
            let icc_par = compile_ref(name, CompileOptions::icc_parallel(threads));
            let gcc_base = native_cycles(&gcc_seq);
            let icc_base = native_cycles(&icc_seq);
            Fig11Row {
                name,
                gcc_parallel: gcc_base as f64 / native_cycles(&gcc_par).max(1) as f64,
                janus_on_gcc: run_mode(&gcc_seq, backend, OptimisationMode::Full, threads)
                    .speedup(),
                icc_parallel: icc_base as f64 / native_cycles(&icc_par).max(1) as f64,
                janus_on_icc: run_mode(&icc_seq, backend, OptimisationMode::Full, threads)
                    .speedup(),
            }
        })
        .collect()
}

/// Figure 12: Janus speedup on `-O2`, `-O3` and `-O3 -mavx` binaries.
#[must_use]
pub fn fig12_opt_levels(backend: BackendKind, threads: u32) -> Vec<(&'static str, [f64; 3])> {
    parallel_benchmarks()
        .iter()
        .map(|name| {
            let speedups = [
                CompileOptions::opt(OptLevel::O2),
                CompileOptions::gcc_o3(),
                CompileOptions::gcc_o3_avx(),
            ]
            .map(|opts| {
                let binary = compile_ref(name, opts);
                run_mode(&binary, backend, OptimisationMode::Full, threads).speedup()
            });
            (*name, speedups)
        })
        .collect()
}

/// Table I: mean number of array-bounds checks per loop that requires them.
#[must_use]
pub fn table1_bounds_checks() -> Vec<(&'static str, f64)> {
    parallel_benchmarks()
        .iter()
        .filter_map(|name| {
            let binary = compile_ref(name, CompileOptions::gcc_o3());
            let analysis = Janus::new().analyze(&binary).expect("analysis succeeds");
            let loops_with: Vec<_> = analysis
                .loops
                .iter()
                .filter(|l| !l.bounds_checks.is_empty())
                .collect();
            if loops_with.is_empty() {
                None
            } else {
                let mean = loops_with
                    .iter()
                    .map(|l| l.bounds_checks.len() as f64)
                    .sum::<f64>()
                    / loops_with.len() as f64;
                Some((*name, mean))
            }
        })
        .collect()
}

/// One row of Table III: speculation statistics for one may-dependent
/// workload run under the `janus-spec` engine.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// Workload name.
    pub name: &'static str,
    /// Iterations executed speculatively.
    pub iterations: u64,
    /// Incarnations executed (iterations + conflict-driven re-executions).
    pub executions: u64,
    /// Speculative aborts.
    pub aborts: u64,
    /// Per-iteration retries (`executions - iterations`).
    pub retries: u64,
    /// Aborts per completed incarnation.
    pub abort_rate: f64,
    /// JudoSTM transactions aborted (the shared-library call path).
    pub stm_aborts: u64,
    /// Whole-program speedup over native.
    pub speedup: f64,
    /// Whether the speculative run reproduced the native output.
    pub outputs_match: bool,
}

/// Table III: abort/retry statistics and speedup of the speculative
/// DOACROSS engine over the may-dependent workloads (new in this
/// reproduction — the paper has no counterpart because Janus serialises
/// these loops).
#[must_use]
pub fn table3_speculation(backend: BackendKind, threads: u32) -> Vec<Table3Row> {
    speculative_benchmarks()
        .iter()
        .map(|name| {
            let binary = compile_ref(name, CompileOptions::gcc_o3());
            let report = run_mode(&binary, backend, OptimisationMode::Full, threads);
            let stats = &report.parallel.stats;
            Table3Row {
                name,
                iterations: stats.spec_iterations,
                executions: stats.spec_executions,
                aborts: stats.spec_aborts,
                retries: stats.spec_retries(),
                abort_rate: stats.spec_abort_rate(),
                stm_aborts: stats.stm_aborts,
                speedup: report.speedup(),
                outputs_match: report.outputs_match,
            }
        })
        .collect()
}

/// Table II: qualitative comparison of binary parallelisation tools (static
/// content reproduced from the paper).
#[must_use]
pub fn table2_tool_comparison() -> Vec<[&'static str; 7]> {
    vec![
        [
            "Tool",
            "Platform",
            "Open source",
            "Automatic",
            "Runtime checks",
            "Shared-libraries",
            "Parallelisation",
        ],
        [
            "Yardimci and Franz",
            "PowerPC",
            "no",
            "no (manual profiling)",
            "no",
            "no",
            "Static DOALL",
        ],
        [
            "SecondWrite",
            "x86-64",
            "no",
            "no (manual profiling)",
            "yes",
            "no",
            "Affine loops",
        ],
        [
            "Pradelle et al",
            "x86-64",
            "no",
            "no (manual profiling)",
            "no",
            "decompile",
            "Src2Src affine",
        ],
        [
            "Janus",
            "x86-64, AArch64 (JVA here)",
            "yes",
            "yes",
            "yes",
            "yes",
            "Dynamic DOALL",
        ],
    ]
}

/// One row of the machine-readable per-backend benchmark
/// (`BENCH_<backend>.json`): whole-program speedup, modelled cycles and
/// wall-clock time for one workload under the full Janus configuration.
#[derive(Debug, Clone, Copy)]
pub struct BackendBenchRow {
    /// Workload name.
    pub name: &'static str,
    /// Backend the row was measured under.
    pub backend: BackendKind,
    /// Whole-program modelled speedup over native execution.
    pub speedup: f64,
    /// Modelled cycles of the parallel run.
    pub cycles: u64,
    /// Wall-clock seconds of the parallel run (host-dependent).
    pub wall_seconds: f64,
    /// Wall-clock seconds spent inside parallel regions.
    pub parallel_wall_seconds: f64,
    /// Largest OS-thread fan-out of any parallel invocation.
    pub os_threads_used: u64,
    /// Whether the parallel run reproduced the native output.
    pub outputs_match: bool,
}

/// Runs every parallelisable and speculative workload under `backend` with
/// the full Janus configuration and returns one row per workload — the data
/// behind `BENCH_<backend>.json`, which tracks the performance trajectory of
/// the runtime across commits.
#[must_use]
pub fn backend_bench(backend: BackendKind, threads: u32) -> Vec<BackendBenchRow> {
    parallel_benchmarks()
        .into_iter()
        .chain(speculative_benchmarks())
        .map(|name| {
            let binary = compile_ref(name, CompileOptions::gcc_o3());
            let report = Janus::with_config(JanusConfig {
                threads,
                backend,
                ..JanusConfig::default()
            })
            .run(&binary, &[])
            .expect("pipeline succeeds");
            BackendBenchRow {
                name,
                backend,
                speedup: report.speedup(),
                cycles: report.parallel.cycles,
                wall_seconds: report.wall_seconds(),
                parallel_wall_seconds: report.parallel_wall_seconds(),
                os_threads_used: report.os_threads_used(),
                outputs_match: report.outputs_match,
            }
        })
        .collect()
}

/// One row of the adaptive-execution section of `BENCH_<backend>.json`:
/// the same workload run with the per-loop tuner off and on, so the
/// trajectory records what runtime adaptation buys (or costs) in wall
/// time per workload.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveBenchRow {
    /// Workload name.
    pub name: &'static str,
    /// Backend both runs executed under.
    pub backend: BackendKind,
    /// Wall-clock seconds of the run with adaptation off (static policy).
    pub static_wall_seconds: f64,
    /// Wall-clock seconds of the run with the tuner on.
    pub adaptive_wall_seconds: f64,
    /// `static_wall_seconds / adaptive_wall_seconds` — > 1 means the tuner
    /// paid for itself on this workload.
    pub adaptive_gain: f64,
    /// Tuner decisions that chose (or kept) parallel execution.
    pub tune_parallel: u64,
    /// Tuner decisions that routed an invocation down the sequential path.
    pub tune_sequential: u64,
    /// Mapped pages the page-aware merge skipped across the adaptive run.
    pub pages_skipped: u64,
    /// Whether the adaptive run reproduced the native output.
    pub outputs_match: bool,
}

/// Runs every parallelisable and speculative workload twice under
/// `backend` — adaptation off, then on — and returns one comparison row
/// per workload: the data behind the `adaptive` section of
/// `BENCH_<backend>.json`. Under the virtual-time backend both walls are
/// near-zero dispatch overhead and the gain is noise; the section earns
/// its keep on the native backend, where the tuner's sequential fallbacks
/// and the page-aware merge move real wall time.
#[must_use]
pub fn adaptive_bench(backend: BackendKind, threads: u32) -> Vec<AdaptiveBenchRow> {
    parallel_benchmarks()
        .into_iter()
        .chain(speculative_benchmarks())
        .map(|name| {
            let binary = compile_ref(name, CompileOptions::gcc_o3());
            let run = |adaptive: bool| {
                Janus::with_config(JanusConfig {
                    threads,
                    backend,
                    adaptive,
                    ..JanusConfig::default()
                })
                .run(&binary, &[])
                .expect("pipeline succeeds")
            };
            let fixed = run(false);
            let tuned = run(true);
            let static_wall_seconds = fixed.wall_seconds();
            let adaptive_wall_seconds = tuned.wall_seconds();
            AdaptiveBenchRow {
                name,
                backend,
                static_wall_seconds,
                adaptive_wall_seconds,
                adaptive_gain: static_wall_seconds / adaptive_wall_seconds.max(1e-9),
                tune_parallel: tuned.tune_parallel_decisions(),
                tune_sequential: tuned.tune_sequential_decisions(),
                pages_skipped: tuned.merge_pages_skipped(),
                outputs_match: fixed.outputs_match && tuned.outputs_match,
            }
        })
        .collect()
}

/// The serving-layer throughput figure: a mixed batch of jobs over the
/// whole workload suite pushed through one `janus-serve` session, recorded
/// per commit in `BENCH_<backend>.json` so the trajectory tracks serving
/// performance alongside per-workload speedups.
#[derive(Debug, Clone, Copy)]
pub struct ServeThroughputRow {
    /// Backend the session executed under.
    pub backend: BackendKind,
    /// Worker threads draining the session's queue.
    pub workers: usize,
    /// Jobs in the batch.
    pub jobs: usize,
    /// Wall-clock seconds from first submission to the batch joining.
    pub total_seconds: f64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Artifact-cache hit rate over the batch (hits + in-flight waits over
    /// all lookups).
    pub cache_hit_rate: f64,
    /// Analyses actually run (cache misses; distinct binaries in the batch).
    pub cache_misses: u64,
    /// Median per-job wall time in seconds, read from the session's
    /// log-bucketed latency histogram
    /// ([`ServeStats::job_wall`](janus_serve::ServeStats::job_wall)) — a
    /// nearest-rank bucket upper bound, never more than 2× the exact
    /// median and exact for an empty batch (0).
    pub p50_job_seconds: f64,
    /// 99th-percentile per-job wall time in seconds, from the same
    /// histogram.
    pub p99_job_seconds: f64,
    /// Jobs that finished with an error (0 on a healthy run).
    pub failures: u64,
}

/// Runs a mixed `jobs`-deep batch — the parallel and speculative training
/// workloads round-robin — through a `workers`-wide serving session on
/// `backend`, and summarises throughput, cache behaviour and the per-job
/// wall-time distribution.
///
/// # Panics
///
/// Panics if a workload fails to compile or the session rejects a
/// submission (the queue is sized to the batch).
#[must_use]
pub fn serve_throughput(backend: BackendKind, workers: usize, jobs: usize) -> ServeThroughputRow {
    use janus_serve::{JobSpec, ServeConfig, ServeSession};
    use std::sync::Arc;

    let names: Vec<&str> = parallel_benchmarks()
        .into_iter()
        .chain(speculative_benchmarks())
        .collect();
    let binaries: Vec<Arc<JBinary>> = names
        .iter()
        .map(|name| Arc::new(compile_train(name, CompileOptions::gcc_o3())))
        .collect();
    let janus = Janus::with_config(JanusConfig {
        threads: 4,
        backend,
        ..JanusConfig::default()
    });
    let handle = janus.serve(ServeConfig {
        workers,
        queue_depth: jobs.max(1),
        ..ServeConfig::default()
    });

    // One spec per binary, cloned per job: the content digest is computed
    // once here rather than once per submission.
    let specs: Vec<JobSpec> = binaries.iter().map(|b| JobSpec::new(b.clone())).collect();
    let start = std::time::Instant::now();
    for i in 0..jobs {
        handle
            .submit(specs[i % specs.len()].clone())
            .expect("queue sized to the batch");
    }
    let outcomes = handle.join();
    let total_seconds = start.elapsed().as_secs_f64();

    // Percentiles come from the session's always-on latency histogram.
    // The old sort-the-samples path both retained every sample and rounded
    // the rank (`(len - 1) * p` rounds p99 of a 26-job batch to the *25th*
    // of 26 samples, not the top one); nearest-rank over log buckets is
    // cheap, streaming, and within 2× by construction.
    let stats = handle.stats();
    ServeThroughputRow {
        backend,
        workers,
        jobs,
        total_seconds,
        jobs_per_sec: outcomes.len() as f64 / total_seconds.max(1e-9),
        cache_hit_rate: stats.cache_hit_rate(),
        cache_misses: stats.cache_misses,
        p50_job_seconds: stats.job_wall.p50_seconds(),
        p99_job_seconds: stats.job_wall.p99_seconds(),
        failures: stats.jobs_failed,
    }
}

/// One traced serving run over the workload suite: the Chrome-trace
/// document plus the latency summary `figures trace` prints alongside it.
#[derive(Debug, Clone)]
pub struct ServeTraceRun {
    /// Backend the traced session executed under.
    pub backend: BackendKind,
    /// Worker threads that drained the session's queue.
    pub workers: usize,
    /// Jobs the traced batch completed.
    pub jobs: usize,
    /// Chrome trace-event JSON — load it in Perfetto (`ui.perfetto.dev`)
    /// or `chrome://tracing`. Validated against the vendored JSON parser
    /// before it is returned.
    pub chrome_json: String,
    /// Session counters, including the histogram-backed latency quantiles
    /// (`job_wall` / `job_queue_wait` / `job_execute`).
    pub stats: janus_serve::ServeStats,
    /// Events resident in the recorder's ring buffers at export.
    pub events: usize,
    /// Events dropped by ring overflow (the flight recorder keeps the most
    /// recent window; a non-zero value means the window was exceeded).
    pub dropped: u64,
}

/// Serves the whole workload suite (two jobs per workload) through a traced
/// session and exports the flight recorder: per-job `serve.job` spans
/// (queue wait, cache probe, execute), the core pipeline's
/// analysis/schedule spans and the execution backends' chunk/speculation
/// events, on one timeline with one track per worker.
///
/// # Panics
///
/// Panics if a workload fails to compile, a submission is rejected, a job
/// fails, or the exported trace is not valid JSON (the export is the
/// product here, so a malformed document is a hard error).
#[must_use]
pub fn serve_trace(backend: BackendKind, workers: usize) -> ServeTraceRun {
    use janus_serve::{JobSpec, ServeConfig, ServeSession};
    use std::sync::Arc;

    let names: Vec<&str> = parallel_benchmarks()
        .into_iter()
        .chain(speculative_benchmarks())
        .collect();
    let janus = Janus::with_config(JanusConfig {
        threads: 4,
        backend,
        ..JanusConfig::default()
    });
    let trace = janus_obs::Recorder::enabled();
    let handle = janus.serve(ServeConfig {
        workers,
        queue_depth: names.len() * 2,
        trace: trace.clone(),
        ..ServeConfig::default()
    });
    // Two jobs per workload: the second submission of each binary is a
    // cache hit, so the trace shows both a cold job (analysis + schedule
    // spans inside the probe) and a warm one (probe returns immediately).
    let mut jobs = 0;
    for name in &names {
        let spec = JobSpec::new(Arc::new(compile_train(name, CompileOptions::gcc_o3())));
        for _ in 0..2 {
            handle.submit(spec.clone()).expect("queue sized to batch");
            jobs += 1;
        }
    }
    let outcomes = handle.join();
    for (id, outcome) in &outcomes {
        outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("traced batch job {id} failed: {e}"));
    }
    let chrome_json = trace.chrome_trace();
    janus_obs::json::parse(&chrome_json).expect("chrome trace is valid JSON");
    ServeTraceRun {
        backend,
        workers,
        jobs,
        chrome_json,
        stats: handle.shutdown(),
        events: trace.len(),
        dropped: trace.dropped(),
    }
}

/// One warm-vs-cold serving comparison: the same workload suite served by
/// a cold session (empty artifact store, every pipeline built) and by a
/// restarted session over the now-populated store (disk hits only).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeWarmStartRow {
    /// Execution backend the sessions ran on.
    pub backend: BackendKind,
    /// Worker threads per session.
    pub workers: usize,
    /// Distinct workloads served (one job each per session).
    pub workloads: usize,
    /// Wall-clock seconds of the cold session (submit → join).
    pub cold_seconds: f64,
    /// Wall-clock seconds of the warm session over the populated store.
    pub warm_seconds: f64,
    /// `cold_seconds / warm_seconds` — what persistence buys a restart.
    pub warm_speedup: f64,
    /// Analyses run by the cold session (= workloads on a healthy run).
    pub cold_misses: u64,
    /// Analyses run by the warm session (**0** on a healthy run — the
    /// acceptance criterion).
    pub warm_misses: u64,
    /// Warm-session artifacts served from the disk store.
    pub warm_disk_hits: u64,
    /// Bytes the populated store occupies on disk (schedule compactness,
    /// Figure 10 flavoured).
    pub store_bytes: u64,
    /// Jobs that finished with an error across both sessions (0 healthy).
    pub failures: u64,
}

/// Serves the whole workload suite twice — a cold session against an empty
/// store directory, then a restarted session against the populated one —
/// and summarises what the persistent artifact store buys a warm start.
/// The store directory is created under the system temp dir and removed
/// afterwards.
///
/// # Panics
///
/// Panics if a workload fails to compile, the store cannot be opened, or a
/// submission is rejected.
#[must_use]
pub fn serve_warm_start(backend: BackendKind, workers: usize) -> ServeWarmStartRow {
    use janus_serve::{JobSpec, ServeConfig, ServeSession};
    use std::sync::Arc;

    let names: Vec<&str> = parallel_benchmarks()
        .into_iter()
        .chain(speculative_benchmarks())
        .collect();
    let binaries: Vec<Arc<JBinary>> = names
        .iter()
        .map(|name| Arc::new(compile_train(name, CompileOptions::gcc_o3())))
        .collect();
    let janus = Janus::with_config(JanusConfig {
        threads: 4,
        backend,
        ..JanusConfig::default()
    });
    let dir = std::env::temp_dir().join(format!(
        "janus-bench-warm-start-{}-{}",
        backend.label(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServeConfig {
        workers,
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    let mut failures = 0;
    let session = |label: &str| -> (f64, janus_serve::ServeStats) {
        let handle = janus
            .try_serve(config())
            .unwrap_or_else(|e| panic!("{label} session opens its store: {e}"));
        let start = std::time::Instant::now();
        for binary in &binaries {
            handle
                .submit(JobSpec::new(binary.clone()))
                .expect("queue sized to the suite");
        }
        let outcomes = handle.join();
        let seconds = start.elapsed().as_secs_f64();
        assert_eq!(outcomes.len(), binaries.len());
        (seconds, handle.stats())
    };

    let (cold_seconds, cold_stats) = session("cold");
    failures += cold_stats.jobs_failed;
    let (warm_seconds, warm_stats) = session("warm");
    failures += warm_stats.jobs_failed;

    let store_bytes = std::fs::read_dir(&dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|ext| ext == "jpa"))
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0);
    let _ = std::fs::remove_dir_all(&dir);

    ServeWarmStartRow {
        backend,
        workers,
        workloads: names.len(),
        cold_seconds,
        warm_seconds,
        warm_speedup: cold_seconds / warm_seconds.max(1e-9),
        cold_misses: cold_stats.cache_misses,
        warm_misses: warm_stats.cache_misses,
        warm_disk_hits: warm_stats.disk_hits,
        store_bytes,
        failures,
    }
}

/// Renders backend-bench rows — plus optional serving-throughput,
/// warm-start and adaptive-execution sections — as a JSON document (no
/// external dependencies; the format is flat and append-friendly for
/// trend tooling).
#[must_use]
pub fn backend_bench_json(
    rows: &[BackendBenchRow],
    threads: u32,
    serve: Option<&ServeThroughputRow>,
    warm: Option<&ServeWarmStartRow>,
    adaptive: Option<&[AdaptiveBenchRow]>,
) -> String {
    let mut out = String::from("{\n");
    let backend = rows.first().map_or("unknown", |r| r.backend.label());
    out.push_str(&format!("  \"backend\": \"{backend}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!(
        "  \"geomean_speedup\": {:.6},\n",
        geomean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>())
    ));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"speedup\": {:.6}, \"cycles\": {}, \
             \"wall_seconds\": {:.6}, \"parallel_wall_seconds\": {:.6}, \
             \"os_threads_used\": {}, \"outputs_match\": {}}}{}\n",
            r.name,
            r.speedup,
            r.cycles,
            r.wall_seconds,
            r.parallel_wall_seconds,
            r.os_threads_used,
            r.outputs_match,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    let mut sections = Vec::new();
    if let Some(s) = serve {
        sections.push(format!(
            "  \"serve_throughput\": {{\"workers\": {}, \"jobs\": {}, \
             \"total_seconds\": {:.6}, \"jobs_per_sec\": {:.3}, \
             \"cache_hit_rate\": {:.6}, \"cache_misses\": {}, \
             \"p50_job_seconds\": {:.6}, \"p99_job_seconds\": {:.6}, \
             \"failures\": {}}}",
            s.workers,
            s.jobs,
            s.total_seconds,
            s.jobs_per_sec,
            s.cache_hit_rate,
            s.cache_misses,
            s.p50_job_seconds,
            s.p99_job_seconds,
            s.failures,
        ));
    }
    if let Some(w) = warm {
        sections.push(format!(
            "  \"serve_warm_start\": {{\"workers\": {}, \"workloads\": {}, \
             \"cold_seconds\": {:.6}, \"warm_seconds\": {:.6}, \
             \"warm_speedup\": {:.3}, \"cold_misses\": {}, \
             \"warm_misses\": {}, \"warm_disk_hits\": {}, \
             \"store_bytes\": {}, \"failures\": {}}}",
            w.workers,
            w.workloads,
            w.cold_seconds,
            w.warm_seconds,
            w.warm_speedup,
            w.cold_misses,
            w.warm_misses,
            w.warm_disk_hits,
            w.store_bytes,
            w.failures,
        ));
    }
    if let Some(rows) = adaptive.filter(|rows| !rows.is_empty()) {
        let mut section = format!(
            "  \"adaptive\": {{\"geomean_gain\": {:.6}, \"workloads\": [\n",
            geomean(&rows.iter().map(|r| r.adaptive_gain).collect::<Vec<_>>())
        );
        for (i, r) in rows.iter().enumerate() {
            section.push_str(&format!(
                "    {{\"name\": \"{}\", \"static_wall_seconds\": {:.6}, \
                 \"adaptive_wall_seconds\": {:.6}, \"adaptive_gain\": {:.3}, \
                 \"tune_parallel\": {}, \"tune_sequential\": {}, \
                 \"pages_skipped\": {}, \"outputs_match\": {}}}{}\n",
                r.name,
                r.static_wall_seconds,
                r.adaptive_wall_seconds,
                r.adaptive_gain,
                r.tune_parallel,
                r.tune_sequential,
                r.pages_skipped,
                r.outputs_match,
                if i + 1 == rows.len() { "" } else { "," },
            ));
        }
        section.push_str("  ]}");
        sections.push(section);
    }
    if sections.is_empty() {
        out.push_str("  ]\n}\n");
    } else {
        out.push_str("  ],\n");
        out.push_str(&sections.join(",\n"));
        out.push_str("\n}\n");
    }
    out
}

/// Geometric mean helper used when summarising speedups.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values_is_that_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn table2_has_a_row_per_tool_plus_header() {
        assert_eq!(table2_tool_comparison().len(), 5);
    }

    #[test]
    fn backend_bench_json_is_well_formed() {
        let rows = [
            BackendBenchRow {
                name: "470.lbm",
                backend: BackendKind::NativeThreads,
                speedup: 6.5,
                cycles: 123,
                wall_seconds: 0.25,
                parallel_wall_seconds: 0.125,
                os_threads_used: 8,
                outputs_match: true,
            },
            BackendBenchRow {
                name: "433.milc",
                backend: BackendKind::NativeThreads,
                speedup: 0.75,
                cycles: 456,
                wall_seconds: 0.5,
                parallel_wall_seconds: 0.0,
                os_threads_used: 0,
                outputs_match: true,
            },
        ];
        let json = backend_bench_json(&rows, 8, None, None, None);
        assert!(json.contains("\"backend\": \"native\""));
        assert!(json.contains("\"threads\": 8"));
        assert!(json.contains("\"name\": \"470.lbm\""));
        assert!(json.contains("\"os_threads_used\": 8"));
        assert!(
            json.matches('{').count() == json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        // Exactly one trailing comma between the two workload objects.
        assert_eq!(json.matches("},\n").count(), rows.len() - 1);

        // With the serving section appended the document stays well formed.
        let serve = ServeThroughputRow {
            backend: BackendKind::NativeThreads,
            workers: 4,
            jobs: 200,
            total_seconds: 2.5,
            jobs_per_sec: 80.0,
            cache_hit_rate: 0.935,
            cache_misses: 13,
            p50_job_seconds: 0.01,
            p99_job_seconds: 0.05,
            failures: 0,
        };
        let json = backend_bench_json(&rows, 8, Some(&serve), None, None);
        assert!(json.contains("\"serve_throughput\""));
        assert!(json.contains("\"jobs\": 200"));
        assert!(json.contains("\"cache_hit_rate\": 0.935000"));
        assert!(
            json.matches('{').count() == json.matches('}').count(),
            "balanced braces:\n{json}"
        );

        // And with both serving sections present.
        let warm = ServeWarmStartRow {
            backend: BackendKind::NativeThreads,
            workers: 4,
            workloads: 13,
            cold_seconds: 1.8,
            warm_seconds: 0.4,
            warm_speedup: 4.5,
            cold_misses: 13,
            warm_misses: 0,
            warm_disk_hits: 13,
            store_bytes: 4096,
            failures: 0,
        };
        let json = backend_bench_json(&rows, 8, Some(&serve), Some(&warm), None);
        assert!(json.contains("\"serve_warm_start\""));
        assert!(json.contains("\"warm_misses\": 0"));
        assert!(json.contains("\"store_bytes\": 4096"));
        assert!(
            json.matches('{').count() == json.matches('}').count(),
            "balanced braces:\n{json}"
        );

        // And with every section present, including the adaptive one.
        let adaptive = [
            AdaptiveBenchRow {
                name: "470.lbm",
                backend: BackendKind::NativeThreads,
                static_wall_seconds: 0.5,
                adaptive_wall_seconds: 0.4,
                adaptive_gain: 1.25,
                tune_parallel: 40,
                tune_sequential: 2,
                pages_skipped: 1024,
                outputs_match: true,
            },
            AdaptiveBenchRow {
                name: "433.milc",
                backend: BackendKind::NativeThreads,
                static_wall_seconds: 0.2,
                adaptive_wall_seconds: 0.2,
                adaptive_gain: 1.0,
                tune_parallel: 0,
                tune_sequential: 12,
                pages_skipped: 0,
                outputs_match: true,
            },
        ];
        let json = backend_bench_json(&rows, 8, Some(&serve), Some(&warm), Some(&adaptive));
        assert!(json.contains("\"adaptive\""));
        assert!(json.contains("\"geomean_gain\""));
        assert!(json.contains("\"tune_sequential\": 12"));
        assert!(json.contains("\"pages_skipped\": 1024"));
        assert!(
            json.matches('{').count() == json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        assert!(
            json.matches('[').count() == json.matches(']').count(),
            "balanced brackets:\n{json}"
        );

        // The adaptive section alone (no serving sections) also closes the
        // workloads array correctly.
        let json = backend_bench_json(&rows, 8, None, None, Some(&adaptive));
        assert!(json.contains("\"adaptive\""));
        assert!(
            json.matches('{').count() == json.matches('}').count(),
            "balanced braces:\n{json}"
        );
    }

    #[test]
    fn serve_throughput_amortises_analysis_over_the_batch() {
        // A small batch keeps the smoke test quick; the 13 distinct binaries
        // each build once, every further job is a cache hit.
        let row = serve_throughput(BackendKind::from_env(), 4, 26);
        assert_eq!(row.jobs, 26);
        assert_eq!(row.failures, 0);
        assert_eq!(row.cache_misses, 13, "one analysis per distinct binary");
        assert!(
            (row.cache_hit_rate - 0.5).abs() < 1e-12,
            "13 of 26 amortised"
        );
        assert!(row.jobs_per_sec > 0.0);
        assert!(row.p50_job_seconds <= row.p99_job_seconds);
    }

    #[test]
    fn histogram_percentiles_cross_check_against_exact_values() {
        // The satellite fix: `serve_throughput` used to sort the samples and
        // round the rank (p99 of 26 samples picked index 25*0.99 ≈ 25 → the
        // *second-largest*); the histogram path must bound the exact
        // nearest-rank value from above by strictly less than 2×.
        let samples: Vec<u64> = (1..=200u64)
            .map(|i| i * 7_000 + (i % 13) * 911) // skewed, non-uniform
            .collect();
        let hist = janus_obs::Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let stats = hist.latency_stats();
        for (q, estimate) in [
            (0.50, stats.p50_nanos),
            (0.90, stats.p90_nanos),
            (0.99, stats.p99_nanos),
        ] {
            // Exact nearest-rank: ceil(q*n), 1-based.
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            assert!(
                estimate >= exact,
                "p{q}: histogram {estimate} under-reports exact {exact}"
            );
            assert!(
                estimate < exact * 2,
                "p{q}: histogram {estimate} exceeds 2x exact {exact}"
            );
        }
        assert_eq!(stats.max_nanos, *sorted.last().unwrap(), "max is exact");
    }

    #[test]
    fn serve_trace_exports_a_valid_chrome_document() {
        let run = serve_trace(BackendKind::from_env(), 4);
        assert_eq!(run.stats.jobs_failed, 0);
        assert_eq!(run.stats.job_wall.count as usize, run.jobs);
        let doc = janus_obs::json::parse(&run.chrome_json).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents");
        for span in ["queue.wait", "cache.probe", "execute", "analysis"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.get("name").and_then(|n| n.as_str()) == Some(span)),
                "trace is missing {span:?} events"
            );
        }
    }

    #[test]
    fn serve_warm_start_replays_the_suite_with_zero_rebuilds() {
        let row = serve_warm_start(BackendKind::from_env(), 4);
        assert_eq!(row.failures, 0);
        assert_eq!(row.cold_misses, row.workloads as u64);
        assert_eq!(row.warm_misses, 0, "warm session must not rebuild");
        assert_eq!(row.warm_disk_hits, row.workloads as u64);
        assert!(row.store_bytes > 0, "the store persisted real entries");
    }

    #[test]
    fn fig7_on_the_two_headline_benchmarks_shows_the_paper_shape() {
        // lbm and libquantum are the paper's best performers: Janus beats the
        // statically-driven configuration, which beats DynamoRIO-only.
        for name in ["470.lbm", "462.libquantum"] {
            let binary = compile_ref(name, CompileOptions::gcc_o3());
            let backend = BackendKind::from_env();
            let dr = run_mode(&binary, backend, OptimisationMode::DynamoRioOnly, 8).speedup();
            let full = run_mode(&binary, backend, OptimisationMode::Full, 8).speedup();
            assert!(dr <= 1.05, "{name}: DBM alone must not speed up ({dr:.2})");
            assert!(full > 3.0, "{name}: Janus should scale well, got {full:.2}");
        }
    }

    #[test]
    fn table3_speculation_parallelises_may_dependent_workloads() {
        let rows = table3_speculation(BackendKind::from_env(), 8);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.outputs_match, "{}: speculative output diverged", r.name);
            assert!(r.iterations > 0, "{}: nothing ran speculatively", r.name);
            assert!(r.executions >= r.iterations, "{}", r.name);
        }
        // The acceptance bar: loops the seed serialises now go faster than
        // native, with abort accounting in the report.
        assert!(
            rows.iter().any(|r| r.speedup > 1.0),
            "at least one may-dependent workload must speed up: {rows:#?}"
        );
        // The sliding-window kernel conflicts inside the speculation window:
        // its abort counters must be non-trivial.
        let window = rows
            .iter()
            .find(|r| r.name == "spec.doacross-window")
            .unwrap();
        assert!(
            window.aborts > 0 && window.retries > 0,
            "distance-6 dependences under 8 lanes must abort: {window:?}"
        );
    }

    #[test]
    fn table1_reports_benchmarks_with_checks() {
        let t = table1_bounds_checks();
        assert!(t.iter().any(|(n, _)| *n == "459.GemsFDTD"));
        for (_, mean) in &t {
            assert!(*mean >= 1.0);
        }
    }
}
