//! The benchmark regression sentinel: a structural diff of two
//! `BENCH_<backend>.json` documents (`figures bench-diff OLD NEW`), used in
//! CI to gate merges against the committed per-backend baselines.
//!
//! Metrics are classified by leaf key, not position, so the diff survives
//! reordering and new sections:
//!
//! * **Correctness counters** (`cycles`, `outputs_match`, `failures`,
//!   cache/disk miss counts, …) must match **exactly** — any drift means
//!   the guest computed something different or the caching contract
//!   changed, and no tolerance excuses that.
//! * **Wall-clock metrics** (`*_seconds`, `jobs_per_sec`, speedups, hit
//!   rates) are noisy; they fail only on a **regression** beyond the
//!   tolerance (default 15%), judged direction-aware — slower seconds and
//!   lower speedups regress, improvements of any size pass.
//! * **Nondeterministic counters** (`tune_*`, `pages_skipped`) are
//!   timing-dependent by design and are skipped entirely.
//!
//! A metric present in the baseline but missing from the new run fails
//! (silently dropping a measurement is how regressions hide); metrics new
//! in the new run are ignored so adding sections never requires a
//! lock-step baseline refresh.

use janus_obs::json::{self, Value};

/// Default wall-clock regression tolerance: 15%.
pub const DEFAULT_WALL_TOLERANCE: f64 = 0.15;

/// How one leaf metric is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricClass {
    /// Must match exactly (correctness counters, configuration echoes).
    Exact,
    /// Noisy measurement where smaller is better (`*_seconds`).
    WallLowerIsBetter,
    /// Noisy measurement where larger is better (speedups, rates).
    WallHigherIsBetter,
    /// Nondeterministic by design; never compared.
    Skipped,
}

/// Classifies a metric by its leaf key.
fn classify(key: &str) -> MetricClass {
    match key {
        "tune_parallel" | "tune_sequential" | "pages_skipped" => MetricClass::Skipped,
        "jobs_per_sec" | "cache_hit_rate" | "speedup" | "geomean_speedup" | "warm_speedup"
        | "adaptive_gain" => MetricClass::WallHigherIsBetter,
        key if key.ends_with("_seconds") => MetricClass::WallLowerIsBetter,
        _ => MetricClass::Exact,
    }
}

/// The outcome of one bench-diff run.
#[derive(Debug, Default)]
pub struct BenchDiff {
    /// Human-readable failure lines; empty means the gate passes.
    pub failures: Vec<String>,
    /// Regressions within tolerance and improvements — reported, not fatal.
    pub notes: Vec<String>,
    /// Leaf metrics compared.
    pub compared: usize,
    /// Leaf metrics skipped as nondeterministic.
    pub skipped: usize,
}

impl BenchDiff {
    /// Whether the new run is acceptable against the baseline.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Flattens a JSON document to `(path, leaf)` pairs. Array elements that
/// carry a `"name"` key are addressed by that name (`workloads[470.lbm]`),
/// so the diff is stable under reordering; anonymous elements use their
/// index.
fn flatten(value: &Value, path: &str, out: &mut Vec<(String, Value)>) {
    match value {
        Value::Obj(pairs) => {
            for (key, v) in pairs {
                let sub = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                flatten(v, &sub, out);
            }
        }
        Value::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = item
                    .get("name")
                    .and_then(Value::as_str)
                    .map_or_else(|| i.to_string(), str::to_string);
                flatten(item, &format!("{path}[{label}]"), out);
            }
        }
        leaf => out.push((path.to_string(), leaf.clone())),
    }
}

/// The leaf key of a flattened path (`workloads[470.lbm].cycles` →
/// `cycles`).
fn leaf_key(path: &str) -> &str {
    path.rsplit('.').next().unwrap_or(path)
}

/// Diffs two benchmark JSON documents; see the [module docs](self) for the
/// comparison rules. `wall_tolerance` is the fractional wall-clock
/// regression allowed (0.15 = 15%).
///
/// # Errors
///
/// Returns a message when either document fails to parse as JSON.
pub fn diff_bench_json(old: &str, new: &str, wall_tolerance: f64) -> Result<BenchDiff, String> {
    let old = json::parse(old).map_err(|e| format!("baseline: {e}"))?;
    let new = json::parse(new).map_err(|e| format!("new run: {e}"))?;
    let mut old_flat = Vec::new();
    let mut new_flat = Vec::new();
    flatten(&old, "", &mut old_flat);
    flatten(&new, "", &mut new_flat);

    let mut diff = BenchDiff::default();
    for (path, old_value) in &old_flat {
        let class = classify(leaf_key(path));
        if class == MetricClass::Skipped {
            diff.skipped += 1;
            continue;
        }
        let Some((_, new_value)) = new_flat.iter().find(|(p, _)| p == path) else {
            diff.failures
                .push(format!("{path}: present in baseline, missing from new run"));
            continue;
        };
        diff.compared += 1;
        match class {
            MetricClass::Exact => {
                if !exact_eq(old_value, new_value) {
                    diff.failures.push(format!(
                        "{path}: correctness counter changed: {} -> {}",
                        render(old_value),
                        render(new_value)
                    ));
                }
            }
            MetricClass::WallLowerIsBetter | MetricClass::WallHigherIsBetter => {
                let (Some(a), Some(b)) = (old_value.as_f64(), new_value.as_f64()) else {
                    diff.failures.push(format!(
                        "{path}: expected numbers, got {} -> {}",
                        render(old_value),
                        render(new_value)
                    ));
                    continue;
                };
                // Relative change, signed so that positive = regression.
                let denom = a.abs().max(1e-12);
                let regression = match class {
                    MetricClass::WallLowerIsBetter => (b - a) / denom,
                    _ => (a - b) / denom,
                };
                if regression > wall_tolerance {
                    diff.failures.push(format!(
                        "{path}: wall-clock regression {:.1}% exceeds {:.1}% tolerance \
                         ({a:.6} -> {b:.6})",
                        regression * 100.0,
                        wall_tolerance * 100.0
                    ));
                } else if regression > wall_tolerance / 2.0 {
                    diff.notes.push(format!(
                        "{path}: within tolerance but drifting {:.1}% ({a:.6} -> {b:.6})",
                        regression * 100.0
                    ));
                }
            }
            MetricClass::Skipped => unreachable!("skipped above"),
        }
    }
    Ok(diff)
}

/// Exact equality for correctness counters: numbers bitwise via their
/// parsed `f64` (both sides came through the same parser), everything else
/// structurally.
fn exact_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => x == y,
        _ => a == b,
    }
}

fn render(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => format!("{n}"),
        Value::Str(s) => format!("{s:?}"),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(wall: f64, cycles: u64, matches: bool, tune: u64) -> String {
        format!(
            r#"{{
  "backend": "native",
  "threads": 4,
  "geomean_speedup": 1.5,
  "workloads": [
    {{"name": "a", "speedup": 2.0, "cycles": {cycles}, "wall_seconds": {wall}, "outputs_match": {matches}}},
    {{"name": "b", "speedup": 1.0, "cycles": 100, "wall_seconds": 0.5, "outputs_match": true}}
  ],
  "adaptive": {{"geomean_gain": 1.05, "workloads": [
    {{"name": "a", "adaptive_gain": 1.1, "tune_parallel": {tune}, "pages_skipped": 7}}
  ]}}
}}"#
        )
    }

    #[test]
    fn identical_documents_pass() {
        let base = doc(1.0, 500, true, 3);
        let diff = diff_bench_json(&base, &base, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(diff.passed(), "{:?}", diff.failures);
        assert!(diff.compared > 0);
    }

    #[test]
    fn the_fifteen_percent_wall_criterion_is_pinned() {
        let base = doc(1.0, 500, true, 3);
        // 14% slower: inside the default 15% tolerance.
        let near =
            diff_bench_json(&base, &doc(1.14, 500, true, 3), DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(near.passed(), "{:?}", near.failures);
        // 16% slower: over the line, and the message names the path.
        let over =
            diff_bench_json(&base, &doc(1.16, 500, true, 3), DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(!over.passed());
        assert!(
            over.failures[0].contains("workloads[a].wall_seconds"),
            "{:?}",
            over.failures
        );
        // A 16% improvement is not a regression.
        let faster =
            diff_bench_json(&base, &doc(0.84, 500, true, 3), DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(faster.passed(), "{:?}", faster.failures);
        // A custom tolerance moves the line.
        let loose = diff_bench_json(&base, &doc(1.4, 500, true, 3), 0.5).unwrap();
        assert!(loose.passed(), "{:?}", loose.failures);
    }

    #[test]
    fn higher_is_better_metrics_regress_downward() {
        let base = doc(1.0, 500, true, 3);
        // Drop the geomean speedup by 20%: that is the regression direction.
        let slower = base.replace("\"geomean_speedup\": 1.5", "\"geomean_speedup\": 1.2");
        let diff = diff_bench_json(&base, &slower, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(!diff.passed());
        assert!(
            diff.failures[0].contains("geomean_speedup"),
            "{:?}",
            diff.failures
        );
        // Raising it by 20% passes.
        let faster = base.replace("\"geomean_speedup\": 1.5", "\"geomean_speedup\": 1.8");
        assert!(diff_bench_json(&base, &faster, DEFAULT_WALL_TOLERANCE)
            .unwrap()
            .passed());
    }

    #[test]
    fn any_correctness_counter_change_fails_regardless_of_size() {
        let base = doc(1.0, 500, true, 3);
        let cycles =
            diff_bench_json(&base, &doc(1.0, 501, true, 3), DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(!cycles.passed(), "one cycle of drift is a failure");
        assert!(
            cycles.failures[0].contains("cycles"),
            "{:?}",
            cycles.failures
        );
        let mismatch =
            diff_bench_json(&base, &doc(1.0, 500, false, 3), DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(!mismatch.passed());
        assert!(
            mismatch.failures[0].contains("outputs_match"),
            "{:?}",
            mismatch.failures
        );
    }

    #[test]
    fn nondeterministic_counters_are_skipped() {
        let base = doc(1.0, 500, true, 3);
        let retuned = doc(1.0, 500, true, 9999);
        let diff = diff_bench_json(&base, &retuned, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(diff.passed(), "{:?}", diff.failures);
        assert!(diff.skipped >= 2, "tune_parallel and pages_skipped skipped");
    }

    #[test]
    fn missing_metrics_fail_and_new_metrics_are_ignored() {
        let base = doc(1.0, 500, true, 3);
        // New run drops workload "b" entirely.
        let dropped = base.replace(
            ",\n    {\"name\": \"b\", \"speedup\": 1.0, \"cycles\": 100, \"wall_seconds\": 0.5, \"outputs_match\": true}",
            "",
        );
        assert_ne!(base, dropped, "replacement matched");
        let diff = diff_bench_json(&base, &dropped, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(!diff.passed());
        assert!(
            diff.failures.iter().any(|f| f.contains("workloads[b]")),
            "{:?}",
            diff.failures
        );
        // The reverse direction — new sections in the new run — is fine.
        let diff = diff_bench_json(&dropped, &base, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(diff.passed(), "{:?}", diff.failures);
    }

    #[test]
    fn reordered_workloads_compare_by_name() {
        let base = doc(1.0, 500, true, 3);
        // Swap the two workload rows; every metric still lines up.
        let swapped = base.replace(
            "{\"name\": \"a\", \"speedup\": 2.0, \"cycles\": 500, \"wall_seconds\": 1, \"outputs_match\": true},\n    {\"name\": \"b\", \"speedup\": 1.0, \"cycles\": 100, \"wall_seconds\": 0.5, \"outputs_match\": true}",
            "{\"name\": \"b\", \"speedup\": 1.0, \"cycles\": 100, \"wall_seconds\": 0.5, \"outputs_match\": true},\n    {\"name\": \"a\", \"speedup\": 2.0, \"cycles\": 500, \"wall_seconds\": 1, \"outputs_match\": true}",
        );
        let diff = diff_bench_json(&base, &swapped, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(diff.passed(), "{:?}", diff.failures);
    }

    #[test]
    fn malformed_documents_error_instead_of_passing() {
        assert!(diff_bench_json("{", &doc(1.0, 1, true, 0), 0.15).is_err());
        assert!(diff_bench_json(&doc(1.0, 1, true, 0), "not json", 0.15).is_err());
    }
}
