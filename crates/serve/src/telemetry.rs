//! The live telemetry endpoint: a dependency-free HTTP/1.0 server bound to
//! [`ServeConfig::telemetry_addr`](crate::ServeConfig::telemetry_addr),
//! answering operator scrapes for the lifetime of the serving session.
//!
//! # Endpoints
//!
//! | Path        | Content          | Body                                        |
//! |-------------|------------------|---------------------------------------------|
//! | `/metrics`  | `text/plain`     | Prometheus exposition of the session's registry (plus process self-metrics, refreshed per scrape) |
//! | `/healthz`  | `text/plain`     | Liveness plus a saturation verdict (`503` once shutdown begins) |
//! | `/statusz`  | `application/json` | Snapshot of [`ServeStats`](crate::ServeStats), per-tenant queues, SLO attainment and store occupancy |
//! | `/tracez`   | `application/json` | Chrome trace of the session's flight recorder (`404` when tracing is disabled) |
//!
//! # Design
//!
//! The server is deliberately minimal: one `std::net::TcpListener`, one
//! accept thread, HTTP/1.0 with `Connection: close` — no keep-alive, no
//! chunking, no dependencies. Every response is rendered from a coherent
//! point-in-time snapshot; gauges (queue depth, occupancy) are re-sampled
//! from their sources of truth on each scrape, so the hot path never
//! maintains a gauge. Shutdown is graceful and bounded: the handle sets a
//! stop flag and pokes the listener with a self-connection so the accept
//! loop observes it immediately.

use crate::executor::Shared;
use janus_obs::metrics::ProcessMetrics;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection I/O budget: a scraper that stalls past this is dropped so
/// one bad client cannot wedge the accept loop.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Upper bound on accepted request bytes (method + path + headers); scrape
/// requests are tiny, anything larger is noise.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// The running telemetry listener of one serving session. Owned by the
/// session's `ServeHandle`; dropping it (or the handle) stops the thread.
pub(crate) struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl TelemetryServer {
    /// Binds `addr` and spawns the accept thread. Process self-metrics
    /// (uptime, RSS, thread count) are registered into the session's
    /// registry here and refreshed on every `/metrics` scrape.
    pub(crate) fn start(addr: &str, shared: Arc<Shared>) -> Result<TelemetryServer, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let process = ProcessMetrics::register(&shared.meter().registry);
        let thread = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("janus-telemetry".to_string())
                .spawn(move || accept_loop(&listener, &shared, &stop, &process))
                .map_err(|e| format!("spawn telemetry thread: {e}"))?
        };
        Ok(TelemetryServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves `"host:0"` to the ephemeral port).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and joins it.
    pub(crate) fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop may be blocked in accept(); a throwaway
        // self-connection wakes it so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Shared,
    stop: &AtomicBool,
    process: &ProcessMetrics,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        // Scrapes are cheap (a snapshot and a render); handling them inline
        // on the accept thread keeps the server single-threaded and bounds
        // concurrent snapshot work to one scrape at a time.
        let response = match read_request_path(&mut stream) {
            Ok(Some(path)) => route(&path, shared, process),
            Ok(None) => Response::text(405, "method not allowed\n"),
            Err(_) => Response::text(400, "bad request\n"),
        };
        let _ = response.write_to(&mut stream);
    }
}

/// Reads the request head and returns the path of a GET request (`None`
/// for other methods). Errors on malformed or oversized requests.
fn read_request_path(stream: &mut TcpStream) -> Result<Option<String>, ()> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    while !head_complete(&buf) {
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(()),
        }
    }
    let head = std::str::from_utf8(&buf).map_err(|_| ())?;
    let request_line = head.lines().next().ok_or(())?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(())?;
    let target = parts.next().ok_or(())?;
    if method != "GET" {
        return Ok(None);
    }
    // Ignore any query string: `/metrics?format=x` routes as `/metrics`.
    let path = target.split('?').next().unwrap_or(target);
    Ok(Some(path.to_string()))
}

/// Whether `buf` holds a complete request head (blank line seen). A bare
/// request line followed by EOF also completes via the `Ok(0)` arm above.
fn head_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

/// One rendered HTTP response.
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        let head = format!(
            "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

fn route(path: &str, shared: &Shared, process: &ProcessMetrics) -> Response {
    match path {
        "/metrics" => metrics_response(shared, process),
        "/healthz" => healthz_response(shared),
        "/statusz" => statusz_response(shared),
        "/tracez" => tracez_response(shared),
        _ => Response::text(404, "not found; try /metrics /healthz /statusz /tracez\n"),
    }
}

/// `/metrics`: the Prometheus exposition of the session's registry, with
/// the point-in-time gauges (queue depth, occupancy, process self-metrics)
/// re-sampled first so every scrape is current.
fn metrics_response(shared: &Shared, process: &ProcessMetrics) -> Response {
    shared.refresh_gauges();
    process.refresh();
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        body: shared.meter().registry.prometheus_text(),
    }
}

/// `/healthz`: liveness plus a saturation verdict. `503` once shutdown has
/// begun (the session no longer accepts work); `200` otherwise, with the
/// verdict and the in-flight/limit numbers in the body for humans.
fn healthz_response(shared: &Shared) -> Response {
    if shared.is_stopping() {
        return Response::text(503, "stopping\n");
    }
    let stats = shared.stats_snapshot();
    let in_flight = stats.jobs_pending + stats.jobs_running;
    let limit = shared.serve_config().effective_max_in_flight() as u64;
    let saturated =
        stats.jobs_pending >= shared.serve_config().queue_depth as u64 || in_flight >= limit;
    let verdict = if saturated { "saturated" } else { "ok" };
    Response::text(
        200,
        format!("{verdict}\nin_flight: {in_flight}\nlimit: {limit}\npending: {pending}\nqueue_depth: {depth}\n",
            pending = stats.jobs_pending,
            depth = shared.serve_config().queue_depth),
    )
}

/// `/statusz`: a JSON snapshot of the session — [`crate::ServeStats`]
/// field-for-field, latency quantiles, deadline SLO attainment, per-tenant
/// queues and accounts, and store occupancy. Hand-rendered (and validated
/// round-trip by `janus_obs::json` in the tests); key order is stable.
fn statusz_response(shared: &Shared) -> Response {
    let stats = shared.stats_snapshot();
    let tenants = shared.tenant_snapshots();
    let config = shared.serve_config();
    let mut body = String::with_capacity(2048);
    body.push_str("{\n");
    body.push_str(&format!(
        "  \"workers\": {},\n  \"queue_depth\": {},\n  \"max_in_flight\": {},\n",
        config.workers,
        config.queue_depth,
        config.effective_max_in_flight()
    ));
    body.push_str("  \"jobs\": {\n");
    let jobs: &[(&str, u64)] = &[
        ("submitted", stats.jobs_submitted),
        ("completed", stats.jobs_completed),
        ("failed", stats.jobs_failed),
        ("rejected_saturated", stats.jobs_rejected),
        ("rejected_deadline", stats.jobs_deadline_rejected),
        ("rejected_quota", stats.jobs_quota_rejected),
        ("deadline_hit", stats.jobs_deadline_hit),
        ("deadline_missed", stats.jobs_deadline_missed),
        ("pending", stats.jobs_pending),
        ("running", stats.jobs_running),
        ("max_in_flight_seen", stats.max_in_flight_seen),
    ];
    push_fields(&mut body, "    ", jobs);
    body.push_str("  },\n");
    body.push_str(&format!(
        "  \"deadline_attainment\": {},\n",
        stats
            .deadline_attainment()
            .map_or_else(|| "null".to_string(), |f| format!("{f:.6}"))
    ));
    body.push_str("  \"cache\": {\n");
    let cache: &[(&str, u64)] = &[
        ("hits", stats.cache_hits),
        ("misses", stats.cache_misses),
        ("inflight_waits", stats.cache_inflight_waits),
        ("evictions", stats.cache_evictions),
        ("entries", stats.cache_entries),
    ];
    push_fields(&mut body, "    ", cache);
    body.push_str("  },\n");
    body.push_str("  \"store\": {\n");
    let store: &[(&str, u64)] = &[
        ("hits", stats.disk_hits),
        ("misses", stats.disk_misses),
        ("corrupt", stats.disk_corrupt),
        ("evicted_bytes", stats.disk_evicted_bytes),
        ("entries", stats.disk_entries),
        ("bytes", shared.disk_store_bytes()),
    ];
    push_fields(&mut body, "    ", store);
    body.push_str("  },\n");
    body.push_str("  \"latency_nanos\": {\n");
    for (i, (name, l)) in [
        ("job_wall", stats.job_wall),
        ("queue_wait", stats.job_queue_wait),
        ("execute", stats.job_execute),
    ]
    .iter()
    .enumerate()
    {
        body.push_str(&format!(
            "    \"{name}\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}{}\n",
            l.count,
            l.p50_nanos,
            l.p90_nanos,
            l.p99_nanos,
            l.max_nanos,
            if i < 2 { "," } else { "" }
        ));
    }
    body.push_str("  },\n");
    body.push_str("  \"tenants\": [\n");
    for (i, t) in tenants.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"tenant\": \"{}\", \"pending\": {}, \"deficit\": {}, \"quantum\": {}, \"served\": {}, \"deadline_hit\": {}, \"deadline_missed\": {}}}{}\n",
            janus_obs::json::escape(&t.tenant),
            t.pending,
            t.deficit,
            t.quantum,
            t.served,
            t.deadline_hit,
            t.deadline_missed,
            if i + 1 < tenants.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    Response::json(200, body)
}

/// Appends `"key": value,` lines (the last without the comma).
fn push_fields(body: &mut String, indent: &str, fields: &[(&str, u64)]) {
    for (i, (key, value)) in fields.iter().enumerate() {
        body.push_str(&format!(
            "{indent}\"{key}\": {value}{}\n",
            if i + 1 < fields.len() { "," } else { "" }
        ));
    }
}

/// `/tracez`: the flight recorder's Chrome trace, when tracing is on.
fn tracez_response(shared: &Shared) -> Response {
    if !shared.recorder().is_enabled() {
        return Response::text(
            404,
            "tracing disabled; configure ServeConfig::trace with an enabled Recorder\n",
        );
    }
    Response::json(200, shared.recorder().chrome_trace())
}
