//! Always-on serving metrics: cached handles into a
//! [`janus_obs::metrics::Registry`], wired through the executor, the
//! artifact cache and the persistent store.
//!
//! A session meters into [`ServeConfig::metrics`](crate::ServeConfig::metrics)
//! when one is configured and into the process-global registry otherwise,
//! so a default session's `/metrics` endpoint covers the whole process
//! (including the DBM's global families). Handles are registered once at
//! session start; every event site is a relaxed atomic op on a cached
//! `Arc` — no locks, no allocation on the hot path. Sessions sharing the
//! global registry share counters: the exposition is a process-wide
//! aggregate, which is what a scrape wants. Tests that need exact
//! per-session reconciliation pass their own `Registry`.

use janus_obs::metrics::{Counter, Gauge, Registry};
use janus_obs::Histogram;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache-tier counters ([`ArtifactCache`](crate::ArtifactCache)). The
/// default meter holds detached counters — a cache outside a serving
/// session meters into nowhere at the same cost.
#[derive(Debug, Clone)]
pub(crate) struct CacheMeter {
    pub hits: Arc<Counter>,
    pub misses: Arc<Counter>,
    pub inflight_waits: Arc<Counter>,
    pub evictions: Arc<Counter>,
}

impl Default for CacheMeter {
    fn default() -> CacheMeter {
        CacheMeter {
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            inflight_waits: Arc::new(Counter::new()),
            evictions: Arc::new(Counter::new()),
        }
    }
}

impl CacheMeter {
    pub(crate) fn register(registry: &Registry) -> CacheMeter {
        CacheMeter {
            hits: registry.counter(
                "janus_serve_cache_hits_total",
                "Artifact-cache lookups served from a ready in-memory entry.",
                &[],
            ),
            misses: registry.counter(
                "janus_serve_cache_misses_total",
                "Artifact-cache lookups that ran a full pipeline build.",
                &[],
            ),
            inflight_waits: registry.counter(
                "janus_serve_cache_inflight_waits_total",
                "Lookups that blocked on another submission's in-progress build.",
                &[],
            ),
            evictions: registry.counter(
                "janus_serve_cache_evictions_total",
                "Artifacts evicted by the in-memory LRU capacity bound.",
                &[],
            ),
        }
    }
}

/// Disk-store counters ([`ArtifactStore`](crate::ArtifactStore)); same
/// detached-by-default contract as [`CacheMeter`].
#[derive(Debug, Clone)]
pub(crate) struct StoreMeter {
    pub hits: Arc<Counter>,
    pub misses: Arc<Counter>,
    pub corrupt: Arc<Counter>,
    pub evicted_bytes: Arc<Counter>,
    pub errors: Arc<Counter>,
}

impl Default for StoreMeter {
    fn default() -> StoreMeter {
        StoreMeter {
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            corrupt: Arc::new(Counter::new()),
            evicted_bytes: Arc::new(Counter::new()),
            errors: Arc::new(Counter::new()),
        }
    }
}

impl StoreMeter {
    pub(crate) fn register(registry: &Registry) -> StoreMeter {
        StoreMeter {
            hits: registry.counter(
                "janus_store_hits_total",
                "Disk-store loads served from a verified entry (no rebuild).",
                &[],
            ),
            misses: registry.counter(
                "janus_store_misses_total",
                "Disk-store probes that found no usable entry (absent, stale \
                 or corrupt).",
                &[],
            ),
            corrupt: registry.counter(
                "janus_store_corrupt_total",
                "Disk entries quarantined after failing verification.",
                &[],
            ),
            evicted_bytes: registry.counter(
                "janus_store_evicted_bytes_total",
                "Bytes removed by the disk store's byte-budget LRU policy.",
                &[],
            ),
            errors: registry.counter(
                "janus_store_errors_total",
                "Artifact persistence attempts that failed with an I/O error.",
                &[],
            ),
        }
    }
}

/// Per-tenant handles, labelled `{tenant=...}`. Registered lazily on the
/// tenant's first submission and cached in the scheduler's tenant entry.
#[derive(Debug, Clone)]
pub(crate) struct TenantMeter {
    /// Current deficit-round-robin balance (tokens).
    pub deficit: Arc<Gauge>,
    /// Jobs currently queued for this tenant.
    pub pending: Arc<Gauge>,
    /// Jobs started (dequeued) for this tenant.
    pub served: Arc<Counter>,
    /// Completed jobs with a deadline that finished within it.
    pub deadline_hit: Arc<Counter>,
    /// Completed jobs with a deadline that overran it.
    pub deadline_missed: Arc<Counter>,
}

/// Session-level handles plus the registry itself (the telemetry endpoint
/// renders it) and the lazily-populated per-tenant map.
pub(crate) struct ServeMeter {
    pub registry: Registry,
    pub jobs_submitted: Arc<Counter>,
    pub jobs_completed: Arc<Counter>,
    pub jobs_failed: Arc<Counter>,
    /// Rejections by reason: `{reason="saturated"|"tenant-quota"|"deadline"}`.
    pub rejected_saturated: Arc<Counter>,
    pub rejected_quota: Arc<Counter>,
    pub rejected_deadline: Arc<Counter>,
    /// Deadline SLO outcome over completed deadline-carrying jobs.
    pub deadline_hit: Arc<Counter>,
    pub deadline_missed: Arc<Counter>,
    /// Jobs queued, not yet picked up (refreshed from the queue state).
    pub queue_depth: Arc<Gauge>,
    /// Jobs executing on a worker right now.
    pub jobs_running: Arc<Gauge>,
    /// High-water mark of in-flight jobs.
    pub in_flight_max: Arc<Gauge>,
    /// Distinct artifacts resident in the in-memory cache.
    pub cache_entries: Arc<Gauge>,
    /// Entries indexed in the disk store (0 when none is configured).
    pub store_entries: Arc<Gauge>,
    /// Bytes occupied by the disk store's indexed entries.
    pub store_bytes: Arc<Gauge>,
    /// End-to-end job latency: dequeue through execution, nanoseconds.
    pub hist_job_wall: Arc<Histogram>,
    /// Queue wait: submission to dequeue, nanoseconds.
    pub hist_queue_wait: Arc<Histogram>,
    /// Guest execution alone, nanoseconds.
    pub hist_execute: Arc<Histogram>,
    /// Tenant label → registered handles. Locked only on a tenant's first
    /// submission and at completion bookkeeping — never on the job path.
    tenants: Mutex<HashMap<String, Arc<TenantMeter>>>,
}

impl std::fmt::Debug for ServeMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeMeter")
            .field("registry", &self.registry)
            .finish_non_exhaustive()
    }
}

impl ServeMeter {
    /// Registers every session-level family in `registry`.
    pub(crate) fn register(registry: &Registry) -> ServeMeter {
        let reject = |reason: &str| {
            registry.counter(
                "janus_serve_jobs_rejected_total",
                "Submissions rejected by admission control, by reason.",
                &[("reason", reason)],
            )
        };
        ServeMeter {
            jobs_submitted: registry.counter(
                "janus_serve_jobs_submitted_total",
                "Jobs accepted by admission control.",
                &[],
            ),
            jobs_completed: registry.counter(
                "janus_serve_jobs_completed_total",
                "Jobs that finished (successfully or not).",
                &[],
            ),
            jobs_failed: registry.counter(
                "janus_serve_jobs_failed_total",
                "Jobs that finished with an error.",
                &[],
            ),
            rejected_saturated: reject("saturated"),
            rejected_quota: reject("tenant-quota"),
            rejected_deadline: reject("deadline"),
            deadline_hit: registry.counter(
                "janus_serve_deadline_hit_total",
                "Completed deadline-carrying jobs that finished within budget.",
                &[],
            ),
            deadline_missed: registry.counter(
                "janus_serve_deadline_missed_total",
                "Completed deadline-carrying jobs that overran their budget \
                 (admitted jobs are never killed; overruns are counted).",
                &[],
            ),
            queue_depth: registry.gauge(
                "janus_serve_queue_depth",
                "Jobs queued, not yet picked up by a worker.",
                &[],
            ),
            jobs_running: registry.gauge(
                "janus_serve_jobs_running",
                "Jobs currently executing on a worker.",
                &[],
            ),
            in_flight_max: registry.gauge(
                "janus_serve_in_flight_max",
                "High-water mark of in-flight jobs (pending + running).",
                &[],
            ),
            cache_entries: registry.gauge(
                "janus_serve_cache_entries",
                "Distinct artifacts resident in the in-memory cache.",
                &[],
            ),
            store_entries: registry.gauge(
                "janus_store_entries",
                "Entries indexed in the persistent disk store.",
                &[],
            ),
            store_bytes: registry.gauge(
                "janus_store_bytes",
                "Bytes occupied by the disk store's indexed entries.",
                &[],
            ),
            hist_job_wall: registry.histogram(
                "janus_serve_job_wall_nanos",
                "End-to-end job latency: dequeue through execution, including \
                 artifact resolution.",
                &[],
            ),
            hist_queue_wait: registry.histogram(
                "janus_serve_job_queue_wait_nanos",
                "Queue wait: submission to dequeue by a worker.",
                &[],
            ),
            hist_execute: registry.histogram(
                "janus_serve_job_execute_nanos",
                "Guest execution alone, excluding artifact resolution.",
                &[],
            ),
            tenants: Mutex::new(HashMap::new()),
            registry: registry.clone(),
        }
    }

    /// The per-tenant handles for `tenant`, registering them on first use.
    pub(crate) fn tenant(&self, tenant: &str) -> Arc<TenantMeter> {
        let mut tenants = self.tenants.lock().expect("tenant meter map poisoned");
        if let Some(meter) = tenants.get(tenant) {
            return meter.clone();
        }
        let labels: &[(&'static str, &str)] = &[("tenant", tenant)];
        let meter = Arc::new(TenantMeter {
            deficit: self.registry.gauge(
                "janus_serve_tenant_deficit_tokens",
                "Deficit-round-robin balance of the tenant (1 token ~ 1 ms of \
                 estimated service time).",
                labels,
            ),
            pending: self.registry.gauge(
                "janus_serve_tenant_pending",
                "Jobs currently queued for the tenant.",
                labels,
            ),
            served: self.registry.counter(
                "janus_serve_tenant_served_total",
                "Jobs started (dequeued by the fair scheduler) for the tenant.",
                labels,
            ),
            deadline_hit: self.registry.counter(
                "janus_serve_tenant_deadline_hit_total",
                "The tenant's completed deadline-carrying jobs that finished \
                 within budget.",
                labels,
            ),
            deadline_missed: self.registry.counter(
                "janus_serve_tenant_deadline_missed_total",
                "The tenant's completed deadline-carrying jobs that overran.",
                labels,
            ),
        });
        tenants.insert(tenant.to_string(), meter.clone());
        meter
    }
}
