//! The persistent, content-addressed artifact store: the disk tier under
//! [`ArtifactCache`](crate::ArtifactCache).
//!
//! # Why it exists
//!
//! The in-memory cache makes analysis once-per-*session*; a real fleet
//! restarts, redeploys and runs many processes over the same binaries. The
//! store persists each binary's serialised
//! [`PipelineArtifacts`] — digests, loop
//! selection and the rewrite schedule, the paper's compact once-per-binary
//! artifact — under a digest-named file, so any process that opens the same
//! directory warm-starts with the whole front half of the pipeline already
//! paid for.
//!
//! # On-disk format
//!
//! One file per binary digest, named `<digest as 16 hex digits>.jpa`, laid
//! out as:
//!
//! ```text
//! magic      b"JSTO"                      (4 bytes)
//! version    STORE_FORMAT_VERSION         (u32 LE)
//! fingerprint                             (u64 LE)  — pipeline-config hash
//! payload_len                             (u64 LE)
//! payload    PipelineArtifacts::to_bytes  (payload_len bytes)
//! checksum   FNV-1a over everything above (u64 LE)
//! ```
//!
//! The payload carries its own header (artifact container version **and**
//! the schedule format version (`SCHEDULE_FORMAT_VERSION` in
//! `janus-schedule`) plus the schedule's content
//! digest), so an entry is guarded three ways: the store envelope checksum
//! catches torn or rotted bytes, the embedded version pair catches images
//! written by a different build of the serialisation code, and the schedule
//! digest catches payload tampering that happens to stay structurally
//! parseable. The *fingerprint* hashes the pipeline configuration that
//! shaped the schedule (optimisation mode, thread count, speculation,
//! coverage threshold, training input): two sessions sharing a directory
//! but configured differently do not serve each other's schedules.
//!
//! # Crash safety: temp file + atomic rename
//!
//! Writers never touch the final name until the entry is complete: the
//! image is written to `<name>.tmp.<pid>.<seq>` in the same directory,
//! `sync_all`'d, then [`std::fs::rename`]d onto `<digest>.jpa`. Because
//! POSIX `rename(2)` within one filesystem is atomic, a reader (in this or
//! any other process) observes either the old entry, the new entry, or no
//! entry — never a prefix. A crash mid-write leaves only a `.tmp.` file,
//! which readers ignore by name and [`ArtifactStore::open`] sweeps away.
//! Two processes racing to persist the same digest both write the same
//! logical content; last rename wins and both files were complete.
//!
//! # Corruption quarantine
//!
//! Entries that fail the checksum or decode as damaged are **never
//! trusted and never silently deleted**: they are renamed aside to
//! `<name>.quarantine.<n>` (preserving the evidence for inspection),
//! counted in [`ArtifactStore::corrupt`], and the caller rebuilds from the
//! binary as if the entry never existed. Version-mismatched entries are
//! different — they are *stale*, not damaged — so they are removed and
//! rebuilt without quarantine.

use crate::metrics::StoreMeter;
use janus_core::{ArtifactDecodeError, PipelineArtifacts};
use janus_ir::digest::fnv1a;
use janus_obs::Recorder;
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Version of the store's file envelope (magic + fingerprint + checksum).
/// Orthogonal to the payload's own versions; bump when the envelope layout
/// changes.
pub const STORE_FORMAT_VERSION: u32 = 1;

const STORE_MAGIC: &[u8; 4] = b"JSTO";
const ENTRY_EXT: &str = "jpa";

/// Per-entry bookkeeping for the byte-budget eviction policy.
struct EntryMeta {
    bytes: u64,
    last_used: u64,
}

/// Mutable store state: the entry index plus the LRU clock.
struct StoreState {
    entries: HashMap<u64, EntryMeta>,
    clock: u64,
    tmp_seq: u64,
}

impl StoreState {
    fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }
}

/// A disk-backed, content-addressed store of serialised
/// [`PipelineArtifacts`], safe to share between threads and between
/// processes pointed at the same directory.
///
/// See the [module docs](self) for the on-disk format and the crash-safety
/// argument. Typical use is through
/// [`ServeConfig::store_dir`](crate::ServeConfig::store_dir) — the serving
/// session opens the store and layers the in-memory
/// [`ArtifactCache`](crate::ArtifactCache) over it — but the store is also
/// usable standalone.
pub struct ArtifactStore {
    dir: PathBuf,
    /// Byte budget; 0 = unbounded. Enforced after every insert by evicting
    /// least-recently-used entries (as seen by this process).
    max_bytes: u64,
    state: Mutex<StoreState>,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    evicted_bytes: AtomicU64,
    store_errors: AtomicU64,
    /// Flight recorder for store events (write / quarantine / evict).
    /// Disabled by default; the serving session installs its own via
    /// [`ArtifactStore::set_recorder`].
    recorder: Recorder,
    /// Registry handles mirroring the counters above; detached until a
    /// serving session installs registered ones.
    meter: StoreMeter,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("dir", &self.dir)
            .field("max_bytes", &self.max_bytes)
            .field("entries", &self.entries())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("corrupt", &self.corrupt())
            .finish()
    }
}

impl ArtifactStore {
    /// Opens (creating if needed) a store over `dir` with a byte budget of
    /// `max_bytes` (0 = unbounded).
    ///
    /// Warm start happens here: the directory is scanned once, existing
    /// entries are indexed by digest (their payloads load lazily on first
    /// [`ArtifactStore::load`]), and stale `.tmp.` files left behind by a
    /// crashed writer are swept away. Quarantined files are left untouched.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created or read.
    pub fn open(dir: impl Into<PathBuf>, max_bytes: u64) -> std::io::Result<ArtifactStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut entries = HashMap::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.contains(".tmp.") {
                // A writer died mid-entry; the final name was never
                // renamed into place, so this prefix is garbage.
                let _ = fs::remove_file(entry.path());
                continue;
            }
            let Some(stem) = name.strip_suffix(&format!(".{ENTRY_EXT}")) else {
                continue;
            };
            let Ok(digest) = u64::from_str_radix(stem, 16) else {
                continue;
            };
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            entries.insert(
                digest,
                EntryMeta {
                    bytes,
                    last_used: 0,
                },
            );
        }
        Ok(ArtifactStore {
            dir,
            max_bytes,
            state: Mutex::new(StoreState {
                entries,
                clock: 0,
                tmp_seq: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            store_errors: AtomicU64::new(0),
            recorder: Recorder::default(),
            meter: StoreMeter::default(),
        })
    }

    /// Installs the flight recorder store events are reported to. With an
    /// enabled recorder, writes, evictions and corruption quarantines
    /// surface as structured `serve.store` instants; quarantine notices
    /// fall back to `stderr` otherwise — they are never silent.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Installs the registry handles the store's counters mirror into.
    pub(crate) fn set_meter(&mut self, meter: StoreMeter) {
        self.meter = meter;
    }

    /// The directory this store persists into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{digest:016x}.{ENTRY_EXT}"))
    }

    /// Renames a damaged entry aside (never deleting the evidence) and
    /// counts it.
    fn quarantine(&self, digest: u64, path: &Path, reason: &str) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        self.meter.corrupt.inc();
        let mut state = self.state.lock().expect("store state poisoned");
        state.entries.remove(&digest);
        state.tmp_seq += 1;
        let aside = self.dir.join(format!(
            "{digest:016x}.{ENTRY_EXT}.quarantine.{}",
            state.tmp_seq
        ));
        drop(state);
        if fs::rename(path, &aside).is_err() {
            // The file vanished (another process may have raced us); there
            // is nothing left to preserve.
            let _ = fs::remove_file(path);
        } else if self.recorder.is_enabled() {
            self.recorder.instant(
                "serve.store",
                "store.quarantine",
                &[
                    ("digest", format!("{digest:#018x}").into()),
                    ("reason", reason.into()),
                    ("aside", aside.display().to_string().into()),
                ],
            );
        } else {
            // Quarantine is loud by design: an operator should know the
            // medium produced bytes that were never written.
            eprintln!(
                "janus-serve: quarantined corrupt artifact {digest:#018x} ({reason}) -> {}",
                aside.display()
            );
        }
    }

    /// Loads the artifact stored for `digest`, if a loadable entry exists
    /// and was written under the same pipeline-config `fingerprint`.
    ///
    /// Returns `None` — counting a miss — when no entry exists, when the
    /// entry is stale (other fingerprint, other format version: removed,
    /// to be rebuilt and overwritten) or when it is corrupt (checksum or
    /// digest failure: quarantined, see the module docs). Never returns
    /// bytes that fail verification.
    pub fn load(&self, digest: u64, fingerprint: u64) -> Option<PipelineArtifacts> {
        let path = self.entry_path(digest);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.meter.misses.inc();
                return None;
            }
        };
        match self.decode(digest, fingerprint, &bytes) {
            Ok(artifacts) => {
                let mut state = self.state.lock().expect("store state poisoned");
                state.clock += 1;
                let now = state.clock;
                state
                    .entries
                    .entry(digest)
                    .or_insert(EntryMeta {
                        bytes: bytes.len() as u64,
                        last_used: 0,
                    })
                    .last_used = now;
                drop(state);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.meter.hits.inc();
                Some(artifacts)
            }
            Err(EntryFault::Stale) => {
                // Written by another format version or another pipeline
                // configuration: perfectly healthy bytes, just not ours.
                // Remove so the rebuild's overwrite is the only copy.
                let mut state = self.state.lock().expect("store state poisoned");
                state.entries.remove(&digest);
                drop(state);
                let _ = fs::remove_file(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.meter.misses.inc();
                None
            }
            Err(EntryFault::Corrupt(reason)) => {
                self.quarantine(digest, &path, &reason);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.meter.misses.inc();
                None
            }
        }
    }

    /// Envelope + payload verification for one entry's bytes.
    fn decode(
        &self,
        digest: u64,
        fingerprint: u64,
        bytes: &[u8],
    ) -> Result<PipelineArtifacts, EntryFault> {
        let corrupt = |reason: &str| EntryFault::Corrupt(reason.to_string());
        // Envelope: magic(4) + version(4) + fingerprint(8) + len(8) +
        // payload + checksum(8).
        if bytes.len() < 32 {
            return Err(corrupt("short envelope"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let recorded = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a(body) != recorded {
            return Err(corrupt("envelope checksum mismatch"));
        }
        if &body[0..4] != STORE_MAGIC {
            return Err(corrupt("bad envelope magic"));
        }
        let version = u32::from_le_bytes(body[4..8].try_into().unwrap());
        if version != STORE_FORMAT_VERSION {
            return Err(EntryFault::Stale);
        }
        let entry_fingerprint = u64::from_le_bytes(body[8..16].try_into().unwrap());
        if entry_fingerprint != fingerprint {
            return Err(EntryFault::Stale);
        }
        let payload_len = u64::from_le_bytes(body[16..24].try_into().unwrap()) as usize;
        let payload = &body[24..];
        if payload.len() != payload_len {
            return Err(corrupt("payload length mismatch"));
        }
        let artifacts = PipelineArtifacts::from_bytes(payload).map_err(|e| match e {
            ArtifactDecodeError::VersionMismatch { .. } => EntryFault::Stale,
            other => EntryFault::Corrupt(other.to_string()),
        })?;
        if artifacts.binary_digest != digest {
            return Err(corrupt("entry content belongs to a different binary"));
        }
        Ok(artifacts)
    }

    /// Persists `artifacts` under their binary digest, tagged with the
    /// session's pipeline-config `fingerprint`.
    ///
    /// Best-effort by design: persistence failures (full disk, permissions)
    /// are counted in [`ArtifactStore::store_errors`] and the session keeps
    /// serving from memory — the entry is simply rebuilt by the next
    /// process. The write path is temp file + `sync_all` + atomic rename;
    /// see the module docs for why a concurrent reader or a crash can never
    /// observe a torn entry.
    pub fn store(&self, artifacts: &PipelineArtifacts, fingerprint: u64) {
        let payload = artifacts.to_bytes();
        let mut body = Vec::with_capacity(32 + payload.len());
        body.extend_from_slice(STORE_MAGIC);
        body.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
        body.extend_from_slice(&fingerprint.to_le_bytes());
        body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        body.extend_from_slice(&payload);
        let checksum = fnv1a(&body);
        body.extend_from_slice(&checksum.to_le_bytes());

        let digest = artifacts.binary_digest;
        let (tmp, now) = {
            let mut state = self.state.lock().expect("store state poisoned");
            state.tmp_seq += 1;
            state.clock += 1;
            (
                self.dir.join(format!(
                    "{digest:016x}.{ENTRY_EXT}.tmp.{}.{}",
                    std::process::id(),
                    state.tmp_seq
                )),
                state.clock,
            )
        };
        let written = (|| -> std::io::Result<()> {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&body)?;
            // Flush to the medium before the rename publishes the name: a
            // crash after rename must find the full content.
            file.sync_all()?;
            fs::rename(&tmp, self.entry_path(digest))?;
            Ok(())
        })();
        match written {
            Ok(()) => {
                if self.recorder.is_enabled() {
                    self.recorder.instant(
                        "serve.store",
                        "store.write",
                        &[
                            ("digest", format!("{digest:#018x}").into()),
                            ("bytes", body.len().into()),
                        ],
                    );
                }
                let mut state = self.state.lock().expect("store state poisoned");
                state.entries.insert(
                    digest,
                    EntryMeta {
                        bytes: body.len() as u64,
                        last_used: now,
                    },
                );
                self.enforce_budget(&mut state);
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
                self.store_errors.fetch_add(1, Ordering::Relaxed);
                self.meter.errors.inc();
            }
        }
    }

    /// Evicts least-recently-used entries until the byte budget holds.
    fn enforce_budget(&self, state: &mut StoreState) {
        if self.max_bytes == 0 {
            return;
        }
        while state.total_bytes() > self.max_bytes && state.entries.len() > 1 {
            let victim = state
                .entries
                .iter()
                .map(|(digest, meta)| (meta.last_used, *digest, meta.bytes))
                .min()
                .expect("non-empty");
            let (_, digest, bytes) = victim;
            state.entries.remove(&digest);
            let _ = fs::remove_file(self.entry_path(digest));
            self.evicted_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.meter.evicted_bytes.add(bytes);
            if self.recorder.is_enabled() {
                self.recorder.instant(
                    "serve.store",
                    "store.evict",
                    &[
                        ("digest", format!("{digest:#018x}").into()),
                        ("bytes", bytes.into()),
                    ],
                );
            }
        }
    }

    /// Entries currently indexed by this process (the scan at open plus
    /// everything loaded or stored since, minus evictions and quarantines).
    #[must_use]
    pub fn entries(&self) -> usize {
        self.state
            .lock()
            .expect("store state poisoned")
            .entries
            .len()
    }

    /// Total bytes of the indexed entries.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.state
            .lock()
            .expect("store state poisoned")
            .total_bytes()
    }

    /// Loads served from a verified disk entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Loads that found no usable entry (absent, stale or corrupt).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries quarantined because their bytes failed verification.
    #[must_use]
    pub fn corrupt(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Bytes removed by the byte-budget eviction policy.
    #[must_use]
    pub fn evicted_bytes(&self) -> u64 {
        self.evicted_bytes.load(Ordering::Relaxed)
    }

    /// Persistence attempts that failed with an I/O error (the session
    /// keeps serving; the entry is rebuilt by the next process).
    #[must_use]
    pub fn store_errors(&self) -> u64 {
        self.store_errors.load(Ordering::Relaxed)
    }
}

/// Why one entry could not be served.
enum EntryFault {
    /// Healthy bytes from another build or configuration: delete + rebuild.
    Stale,
    /// Damaged bytes: quarantine + rebuild.
    Corrupt(String),
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::Janus;
    use janus_ir::{AsmBuilder, Inst};

    fn tiny_artifacts() -> PipelineArtifacts {
        let mut asm = AsmBuilder::new();
        asm.label("main");
        asm.push(Inst::Halt);
        let binary = asm.finish_binary("main").unwrap();
        Janus::new().prepare(&binary, &[]).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("janus-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_and_warm_starts_across_opens() {
        let dir = temp_dir("roundtrip");
        let artifacts = tiny_artifacts();
        let digest = artifacts.binary_digest;
        {
            let store = ArtifactStore::open(&dir, 0).unwrap();
            assert_eq!(store.entries(), 0);
            store.store(&artifacts, 99);
            assert_eq!(store.entries(), 1);
            let loaded = store.load(digest, 99).expect("fresh entry loads");
            assert_eq!(loaded.schedule, artifacts.schedule);
            assert_eq!(store.hits(), 1);
        }
        // A second open (a "second process") indexes the entry and serves it.
        let store = ArtifactStore::open(&dir, 0).unwrap();
        assert_eq!(store.entries(), 1, "warm start indexed the entry");
        let loaded = store.load(digest, 99).expect("persisted entry loads");
        assert_eq!(loaded.binary_digest, digest);
        assert!(loaded.analysis.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_a_miss_not_a_quarantine() {
        let dir = temp_dir("fingerprint");
        let artifacts = tiny_artifacts();
        let store = ArtifactStore::open(&dir, 0).unwrap();
        store.store(&artifacts, 1);
        assert!(store.load(artifacts.binary_digest, 2).is_none());
        assert_eq!(store.corrupt(), 0, "stale entries are not corruption");
        assert_eq!(store.misses(), 1);
        assert_eq!(store.entries(), 0, "stale entry was removed for rebuild");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_and_never_served() {
        let dir = temp_dir("corrupt");
        let artifacts = tiny_artifacts();
        let digest = artifacts.binary_digest;
        let store = ArtifactStore::open(&dir, 0).unwrap();
        store.store(&artifacts, 7);
        let path = store.entry_path(digest);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        assert!(store.load(digest, 7).is_none());
        assert_eq!(store.corrupt(), 1);
        assert!(!path.exists(), "corrupt entry is moved aside");
        let quarantined = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".quarantine."))
            .count();
        assert_eq!(quarantined, 1, "the evidence is preserved");
        // The slot is free again: a rebuild stores and serves cleanly.
        store.store(&artifacts, 7);
        assert!(store.load(digest, 7).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_entries() {
        let dir = temp_dir("budget");
        let a = tiny_artifacts();
        let entry_bytes = {
            let probe = ArtifactStore::open(temp_dir("budget-probe"), 0).unwrap();
            probe.store(&a, 0);
            let n = probe.total_bytes();
            let _ = fs::remove_dir_all(probe.dir());
            n
        };
        // Budget for two entries; three distinct digests forced in by
        // rebadging the binary digest.
        let store = ArtifactStore::open(&dir, entry_bytes * 2).unwrap();
        for digest in [1u64, 2, 3] {
            let mut artifacts = a.clone();
            artifacts.binary_digest = digest;
            store.store(&artifacts, 0);
            // Keep digest 1 hot so 2 is the LRU victim when 3 lands.
            if digest == 2 {
                assert!(store.load(1, 0).is_some());
            }
        }
        assert_eq!(store.entries(), 2);
        assert_eq!(store.evicted_bytes(), entry_bytes);
        assert!(store.load(1, 0).is_some(), "hot entry survived");
        assert!(store.load(2, 0).is_none(), "LRU victim evicted");
        assert!(store.load(3, 0).is_some(), "newest entry survived");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_temp_files() {
        let dir = temp_dir("sweep");
        fs::create_dir_all(&dir).unwrap();
        let stale = dir.join(format!("0000000000000001.{ENTRY_EXT}.tmp.999.1"));
        fs::write(&stale, b"partial garbage from a crashed writer").unwrap();
        let store = ArtifactStore::open(&dir, 0).unwrap();
        assert!(!stale.exists(), "crash leftovers are swept at open");
        assert_eq!(store.entries(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
