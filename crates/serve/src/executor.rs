//! The bounded, fair job executor: a pool of OS worker threads draining
//! per-tenant submission queues under deficit-round-robin scheduling,
//! resolving artifacts through the two-tier [`ArtifactCache`] and executing
//! jobs via the cached [`PreparedDbm`](janus_core::PreparedDbm).

use crate::cache::{Artifact, ArtifactCache};
use crate::metrics::{CacheMeter, ServeMeter, StoreMeter, TenantMeter};
use crate::store::ArtifactStore;
use crate::telemetry::TelemetryServer;
use crate::{
    JobId, JobOutcome, JobReport, JobSpec, ServeConfig, ServeError, ServeStats, DEFAULT_TENANT,
};
use janus_core::{Janus, PipelineArtifacts, PreparedDbm};
use janus_obs::ewma::KeyedEwma;
use janus_obs::{Histogram, Recorder};
use janus_vm::Process;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Token granularity of the fair scheduler: 1 token ≈ 1 ms of estimated
/// service time (jobs with no estimate cost 1 token).
const NANOS_PER_TOKEN: u64 = 1_000_000;

/// One admitted-but-unstarted job, with the cost attributed to it at
/// admission time.
struct PendingJob {
    id: JobId,
    job: JobSpec,
    /// Deficit tokens the tenant pays to start this job.
    cost_tokens: u64,
    /// Service-time estimate at admission (0 when the model had none);
    /// tracked so the queue's aggregate backlog estimate stays consistent
    /// when the job leaves the queue.
    est_nanos: u64,
    /// When the job entered the queue; its queue wait (dequeue minus this)
    /// feeds the queue-wait histogram and the flight recorder.
    submitted: Instant,
}

/// One tenant's FIFO backlog plus its deficit-round-robin account and SLO
/// ledger. Entries persist for the session's lifetime (an emptied tenant
/// leaves the scheduling ring but keeps its counters), so
/// [`ServeHandle::tenant_stats`] and the per-tenant metric families cover
/// every tenant that ever submitted.
struct TenantQueue {
    queue: VecDeque<PendingJob>,
    /// Accumulated tokens; a job starts only when the deficit covers its
    /// cost. Reset when the backlog empties (an idle tenant banks nothing).
    deficit: u64,
    /// Tokens granted per scheduler round ([`crate::TenantQuota::quantum`]).
    quantum: u64,
    /// Jobs dequeued (started) for this tenant.
    served: u64,
    /// Completed deadline-carrying jobs that finished within budget.
    deadline_hit: u64,
    /// Completed deadline-carrying jobs that overran.
    deadline_missed: u64,
    /// The tenant's registered metric handles (deficit/pending gauges, SLO
    /// counters), updated alongside the fields above.
    meter: Arc<TenantMeter>,
}

/// The submission queues and result store, guarded by one mutex.
#[derive(Default)]
struct QueueState {
    /// Per-tenant backlogs, keyed by tenant name.
    tenants: HashMap<Arc<str>, TenantQueue>,
    /// Round-robin ring of tenants with a non-empty backlog (each appears
    /// exactly once; the front tenant is visited next).
    ring: VecDeque<Arc<str>>,
    /// Total queued jobs across all tenants.
    pending_total: usize,
    /// Sum of the queued jobs' service-time estimates (deadline admission's
    /// backlog term).
    pending_est_nanos: u64,
    running: usize,
    next_id: u64,
    /// Dequeue counter; stamped onto [`JobReport::sequence`].
    dequeue_seq: u64,
    finished: BTreeMap<u64, Result<JobReport, ServeError>>,
}

impl QueueState {
    /// Pops the next job under deficit round robin: visit the front tenant
    /// of the ring, grant its quantum until the deficit covers the head
    /// job's cost (rotating between grants so other tenants are served in
    /// between), then charge the deficit and hand the job out. Returns the
    /// job, its dequeue sequence number and its submission instant.
    fn pop_next(&mut self) -> Option<(JobId, JobSpec, u64, Instant)> {
        if self.pending_total == 0 {
            return None;
        }
        loop {
            let tenant = self.ring.front()?.clone();
            let tq = self.tenants.get_mut(&tenant).expect("ring tenant exists");
            if tq.queue.is_empty() {
                tq.deficit = 0;
                self.ring.pop_front();
                continue;
            }
            let head_cost = tq.queue.front().expect("non-empty queue").cost_tokens;
            if tq.deficit < head_cost {
                tq.deficit += tq.quantum;
                tq.meter
                    .deficit
                    .set(i64::try_from(tq.deficit).unwrap_or(i64::MAX));
                self.ring.rotate_left(1);
                continue;
            }
            tq.deficit -= head_cost;
            tq.served += 1;
            tq.meter
                .deficit
                .set(i64::try_from(tq.deficit).unwrap_or(i64::MAX));
            tq.meter.served.inc();
            let pending = tq.queue.pop_front().expect("non-empty queue");
            tq.meter.pending.dec();
            if tq.queue.is_empty() {
                // Leave the ring (and bank nothing): the tenant re-enters
                // at the back on its next submission.
                tq.deficit = 0;
                tq.meter.deficit.set(0);
                self.ring.pop_front();
            } else {
                // One job per visit: rotate so equal-cost tenants
                // interleave instead of bursting a whole quantum.
                self.ring.rotate_left(1);
            }
            self.pending_total -= 1;
            self.pending_est_nanos = self.pending_est_nanos.saturating_sub(pending.est_nanos);
            let sequence = self.dequeue_seq;
            self.dequeue_seq += 1;
            return Some((pending.id, pending.job, sequence, pending.submitted));
        }
    }
}

/// Per-binary (and global) EWMA of observed service times, feeding both the
/// fair scheduler's token costs and deadline admission. The estimator math
/// lives in [`janus_obs::ewma`] — one recurrence shared with the DBM's
/// adaptive execution tuner, not two copies that could drift.
#[derive(Default)]
struct CostModel {
    state: Mutex<KeyedEwma<u64>>,
}

impl CostModel {
    fn observe(&self, digest: u64, nanos: u64) {
        self.state
            .lock()
            .expect("cost model poisoned")
            .observe(digest, nanos as f64);
    }

    /// The service-time estimate for `digest`: its own EWMA, falling back
    /// to the global EWMA, or `None` before any job has completed — the
    /// model never guesses without evidence.
    fn estimate(&self, digest: u64) -> Option<u64> {
        self.state
            .lock()
            .expect("cost model poisoned")
            .estimate(&digest)
            .map(|nanos| nanos as u64)
    }
}

/// Fingerprint of the pipeline configuration that shapes an artifact:
/// everything [`Janus::prepare`] consults when turning a binary into a
/// schedule (optimisation mode, thread count, speculation, coverage
/// threshold, training input). Disk entries are stamped with it so
/// sessions configured differently can share one store directory without
/// serving each other's schedules; the serialisation format versions are
/// enforced separately by the payload's own header.
fn config_fingerprint(janus: &Janus, train_input: &[i64]) -> u64 {
    fn mix(hash: u64, bytes: &[u8]) -> u64 {
        bytes.iter().fold(hash, |hash, &b| {
            (hash ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        })
    }
    let config = janus.config();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    hash = mix(hash, &(config.mode as u32).to_le_bytes());
    hash = mix(hash, &config.threads.to_le_bytes());
    hash = mix(hash, &[u8::from(config.speculation)]);
    hash = mix(hash, &config.coverage_threshold.to_bits().to_le_bytes());
    for value in train_input {
        hash = mix(hash, &value.to_le_bytes());
    }
    hash
}

/// State shared between the handle, the worker threads and the telemetry
/// endpoint.
pub(crate) struct Shared {
    janus: Janus,
    config: ServeConfig,
    cache: ArtifactCache,
    cost_model: CostModel,
    /// The session's flight recorder ([`ServeConfig::trace`]); disabled by
    /// default, in which case every event site costs one branch.
    trace: Recorder,
    /// End-to-end job latency (dequeue through execution). Cached `Arc`s so
    /// the histograms work — and `stats()` reads them — with tracing off.
    hist_job_wall: Arc<Histogram>,
    /// Queue wait: submission to dequeue.
    hist_queue_wait: Arc<Histogram>,
    /// Guest execution alone, excluding artifact resolution.
    hist_execute: Arc<Histogram>,
    /// Always-on metrics handles: registered once at session start against
    /// [`ServeConfig::metrics`] (or the process-global registry), updated
    /// with relaxed atomics alongside the session's own counters below.
    meter: ServeMeter,
    state: Mutex<QueueState>,
    /// Wakes workers when a job is queued (or shutdown begins).
    work_ready: Condvar,
    /// Wakes [`ServeHandle::join`] when a job finishes.
    job_done: Condvar,
    stop: AtomicBool,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_deadline_rejected: AtomicU64,
    jobs_quota_rejected: AtomicU64,
    jobs_deadline_hit: AtomicU64,
    jobs_deadline_missed: AtomicU64,
    max_in_flight_seen: AtomicU64,
}

/// One tenant's public snapshot ([`ServeHandle::tenant_stats`] and the
/// `/statusz` telemetry endpoint): backlog, fair-scheduler account and
/// deadline SLO ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// The tenant's name ([`crate::DEFAULT_TENANT`] for unlabelled jobs).
    pub tenant: String,
    /// Jobs currently queued for this tenant.
    pub pending: u64,
    /// The tenant's current deficit-round-robin balance (tokens).
    pub deficit: u64,
    /// Tokens granted per scheduler round.
    pub quantum: u64,
    /// Jobs dequeued (started) for this tenant over the session.
    pub served: u64,
    /// Completed deadline-carrying jobs that finished within budget.
    pub deadline_hit: u64,
    /// Completed deadline-carrying jobs that overran.
    pub deadline_missed: u64,
}

impl Shared {
    /// The full [`ServeStats`] snapshot (see [`ServeHandle::stats`]).
    pub(crate) fn stats_snapshot(&self) -> ServeStats {
        let (pending, running) = {
            let state = self.state.lock().expect("serve queue poisoned");
            (state.pending_total as u64, state.running as u64)
        };
        let disk = self.cache.disk_store();
        let disk_stat = |get: fn(&ArtifactStore) -> u64| disk.map_or(0, get);
        ServeStats {
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_inflight_waits: self.cache.inflight_waits(),
            cache_evictions: self.cache.evictions(),
            cache_entries: self.cache.len() as u64,
            disk_hits: disk_stat(ArtifactStore::hits),
            disk_misses: disk_stat(ArtifactStore::misses),
            disk_corrupt: disk_stat(ArtifactStore::corrupt),
            disk_evicted_bytes: disk_stat(ArtifactStore::evicted_bytes),
            disk_entries: disk.map_or(0, |s| s.entries() as u64),
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_deadline_rejected: self.jobs_deadline_rejected.load(Ordering::Relaxed),
            jobs_quota_rejected: self.jobs_quota_rejected.load(Ordering::Relaxed),
            jobs_deadline_hit: self.jobs_deadline_hit.load(Ordering::Relaxed),
            jobs_deadline_missed: self.jobs_deadline_missed.load(Ordering::Relaxed),
            jobs_pending: pending,
            jobs_running: running,
            max_in_flight_seen: self.max_in_flight_seen.load(Ordering::Relaxed),
            job_wall: self.hist_job_wall.latency_stats(),
            job_queue_wait: self.hist_queue_wait.latency_stats(),
            job_execute: self.hist_execute.latency_stats(),
        }
    }

    /// Per-tenant snapshots, name-sorted (see [`ServeHandle::tenant_stats`]).
    pub(crate) fn tenant_snapshots(&self) -> Vec<TenantSnapshot> {
        let state = self.state.lock().expect("serve queue poisoned");
        let mut out: Vec<TenantSnapshot> = state
            .tenants
            .iter()
            .map(|(name, tq)| TenantSnapshot {
                tenant: name.to_string(),
                pending: tq.queue.len() as u64,
                deficit: tq.deficit,
                quantum: tq.quantum,
                served: tq.served,
                deadline_hit: tq.deadline_hit,
                deadline_missed: tq.deadline_missed,
            })
            .collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }

    /// Re-samples the point-in-time gauges from their sources of truth.
    /// Called by the telemetry endpoint before every render, so a scrape
    /// always sees current occupancy without the hot path ever touching a
    /// gauge it does not own.
    pub(crate) fn refresh_gauges(&self) {
        let (pending, running) = {
            let state = self.state.lock().expect("serve queue poisoned");
            (state.pending_total, state.running)
        };
        let meter = &self.meter;
        let as_i64 = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        meter.queue_depth.set(as_i64(pending as u64));
        meter.jobs_running.set(as_i64(running as u64));
        meter
            .in_flight_max
            .set(as_i64(self.max_in_flight_seen.load(Ordering::Relaxed)));
        meter.cache_entries.set(as_i64(self.cache.len() as u64));
        if let Some(disk) = self.cache.disk_store() {
            meter.store_entries.set(as_i64(disk.entries() as u64));
            meter.store_bytes.set(as_i64(disk.total_bytes()));
        }
    }

    /// Bytes occupied by the disk store (0 when none is configured).
    pub(crate) fn disk_store_bytes(&self) -> u64 {
        self.cache
            .disk_store()
            .map_or(0, ArtifactStore::total_bytes)
    }

    /// The session's metrics sink (the telemetry endpoint renders it).
    pub(crate) fn meter(&self) -> &ServeMeter {
        &self.meter
    }

    /// The session's flight recorder (the telemetry endpoint's `/tracez`).
    pub(crate) fn recorder(&self) -> &Recorder {
        &self.trace
    }

    /// The session's configuration (saturation verdicts for `/healthz`).
    pub(crate) fn serve_config(&self) -> &ServeConfig {
        &self.config
    }

    /// Whether shutdown has begun.
    pub(crate) fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A running serving session: worker pool plus submission interface.
///
/// Obtained from [`ServeSession::serve`](crate::ServeSession::serve). Jobs
/// go in through [`submit`](ServeHandle::submit) /
/// [`submit_batch`](ServeHandle::submit_batch); results come back from
/// [`join`](ServeHandle::join) in submission order. Dropping the handle (or
/// calling [`shutdown`](ServeHandle::shutdown)) stops the workers after
/// their current job; queued-but-unstarted jobs are abandoned, so call
/// [`join`](ServeHandle::join) first if every submitted job must finish.
pub struct ServeHandle {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// The live telemetry endpoint ([`ServeConfig::telemetry_addr`]), shut
    /// down with the session.
    telemetry: Option<TelemetryServer>,
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHandle")
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ServeHandle {
    /// Starts a session: opens the persistent store when configured,
    /// allocates the artifact cache and spawns the worker pool.
    pub(crate) fn start(janus: Janus, config: ServeConfig) -> Result<ServeHandle, ServeError> {
        // One recorder spans the whole stack: the executor's job events,
        // the pipeline's analysis/schedule spans (via the session's Janus),
        // the execution backends' chunk/speculation events and the disk
        // store's write/quarantine/evict instants all land in one sink.
        let trace = config.trace.clone();
        let janus = janus.with_trace(trace.clone());
        let fingerprint = config_fingerprint(&janus, &config.train_input);
        // Metrics are always on: the configured registry, or the process
        // global. Registration happens here, once; every event site after
        // this is a relaxed atomic on a cached handle.
        let registry = config.effective_metrics();
        let meter = ServeMeter::register(&registry);
        let mut cache = match &config.store_dir {
            Some(dir) => {
                let mut store = ArtifactStore::open(dir, config.store_max_bytes).map_err(|e| {
                    ServeError::Store {
                        reason: format!("{}: {e}", dir.display()),
                    }
                })?;
                store.set_recorder(trace.clone());
                store.set_meter(StoreMeter::register(&registry));
                ArtifactCache::with_disk_store(
                    config.cache_capacity,
                    config.cache_shards,
                    Arc::new(store),
                    fingerprint,
                )
            }
            None => ArtifactCache::with_shards(config.cache_capacity, config.cache_shards),
        };
        cache.set_meter(CacheMeter::register(&registry));
        let telemetry_addr = config.telemetry_addr.clone();
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            janus,
            config,
            cache,
            cost_model: CostModel::default(),
            hist_job_wall: trace.histogram("serve.job.wall"),
            hist_queue_wait: trace.histogram("serve.job.queue_wait"),
            hist_execute: trace.histogram("serve.job.execute"),
            trace,
            meter,
            state: Mutex::new(QueueState::default()),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            stop: AtomicBool::new(false),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_deadline_rejected: AtomicU64::new(0),
            jobs_quota_rejected: AtomicU64::new(0),
            jobs_deadline_hit: AtomicU64::new(0),
            jobs_deadline_missed: AtomicU64::new(0),
            max_in_flight_seen: AtomicU64::new(0),
        });
        let telemetry = match telemetry_addr {
            Some(addr) => Some(
                TelemetryServer::start(&addr, shared.clone())
                    .map_err(|reason| ServeError::Telemetry { reason })?,
            ),
            None => None,
        };
        let workers = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("janus-serve-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn serving worker")
            })
            .collect();
        Ok(ServeHandle {
            shared,
            workers,
            telemetry,
        })
    }

    /// Submits one job. Admission control applies, in order: a full pending
    /// queue (or in-flight cap) rejects with [`ServeError::Saturated`]; a
    /// tenant over its [`TenantQuota::max_pending`](crate::TenantQuota::max_pending)
    /// rejects with [`ServeError::TenantSaturated`]; a
    /// [`deadline`](JobSpec::deadline) the cost model's evidence says cannot
    /// be met rejects with [`ServeError::DeadlineUnmeetable`]. Rejections
    /// are fail-fast — back off and resubmit.
    ///
    /// # Errors
    ///
    /// [`ServeError::Saturated`] / [`ServeError::TenantSaturated`] /
    /// [`ServeError::DeadlineUnmeetable`] as above, and
    /// [`ServeError::ShuttingDown`] after [`ServeHandle::shutdown`] began.
    pub fn submit(&self, job: JobSpec) -> Result<JobId, ServeError> {
        let shared = &self.shared;
        if shared.stop.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let tenant_name: Arc<str> = job.tenant.as_deref().unwrap_or(DEFAULT_TENANT).into();
        let quota = shared.config.quota_for(&tenant_name);
        let estimate = shared.cost_model.estimate(job.binary_digest);

        let mut state = shared.state.lock().expect("serve queue poisoned");
        let in_flight = state.pending_total + state.running;
        let limit = shared.config.effective_max_in_flight();
        if state.pending_total >= shared.config.queue_depth || in_flight >= limit {
            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            shared.meter.rejected_saturated.inc();
            if shared.trace.is_enabled() {
                shared.trace.instant(
                    "serve.job",
                    "job.reject",
                    &[
                        ("reason", "saturated".into()),
                        ("in_flight", in_flight.into()),
                        ("limit", limit.into()),
                    ],
                );
            }
            return Err(ServeError::Saturated { in_flight, limit });
        }
        let tenant_pending = state.tenants.get(&tenant_name).map_or(0, |t| t.queue.len());
        if quota.max_pending > 0 && tenant_pending >= quota.max_pending {
            shared.jobs_quota_rejected.fetch_add(1, Ordering::Relaxed);
            shared.meter.rejected_quota.inc();
            if shared.trace.is_enabled() {
                shared.trace.instant(
                    "serve.job",
                    "job.reject",
                    &[
                        ("reason", "tenant-quota".into()),
                        ("tenant", tenant_name.as_ref().into()),
                        ("pending", tenant_pending.into()),
                    ],
                );
            }
            return Err(ServeError::TenantSaturated {
                tenant: tenant_name.to_string(),
                pending: tenant_pending,
                limit: quota.max_pending,
            });
        }
        if let (Some(deadline), Some(own_nanos)) = (job.deadline, estimate) {
            // Optimistic ETA: this job's own estimated service time plus
            // the queued backlog spread over the worker pool. Reject only
            // when even that optimistic bound blows the budget.
            let workers = shared.config.workers.max(1) as u64;
            let estimated_nanos = own_nanos + state.pending_est_nanos / workers;
            let budget_nanos = u64::try_from(deadline.as_nanos()).unwrap_or(u64::MAX);
            if estimated_nanos > budget_nanos {
                shared
                    .jobs_deadline_rejected
                    .fetch_add(1, Ordering::Relaxed);
                shared.meter.rejected_deadline.inc();
                if shared.trace.is_enabled() {
                    shared.trace.instant(
                        "serve.job",
                        "job.reject",
                        &[
                            ("reason", "deadline".into()),
                            ("estimated_nanos", estimated_nanos.into()),
                            ("budget_nanos", budget_nanos.into()),
                        ],
                    );
                }
                return Err(ServeError::DeadlineUnmeetable {
                    estimated_nanos,
                    budget_nanos,
                });
            }
        }

        let id = JobId(state.next_id);
        state.next_id += 1;
        let est_nanos = estimate.unwrap_or(0);
        let cost_tokens = (est_nanos / NANOS_PER_TOKEN).max(1);
        let tenant_queue =
            state
                .tenants
                .entry(tenant_name.clone())
                .or_insert_with(|| TenantQueue {
                    queue: VecDeque::new(),
                    deficit: 0,
                    quantum: quota.quantum.max(1),
                    served: 0,
                    deadline_hit: 0,
                    deadline_missed: 0,
                    meter: shared.meter.tenant(&tenant_name),
                });
        let was_empty = tenant_queue.queue.is_empty();
        tenant_queue.queue.push_back(PendingJob {
            id,
            job,
            cost_tokens,
            est_nanos,
            submitted: Instant::now(),
        });
        tenant_queue.meter.pending.inc();
        if was_empty {
            state.ring.push_back(tenant_name);
        }
        state.pending_total += 1;
        state.pending_est_nanos += est_nanos;
        shared.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        shared.meter.jobs_submitted.inc();
        shared
            .max_in_flight_seen
            .fetch_max(in_flight as u64 + 1, Ordering::Relaxed);
        drop(state);
        shared.work_ready.notify_one();
        Ok(id)
    }

    /// Submits a batch of jobs, stopping at the first rejection.
    ///
    /// # Errors
    ///
    /// Returns the ids accepted so far alongside the error that stopped the
    /// batch; the accepted jobs stay queued and will run.
    pub fn submit_batch(
        &self,
        jobs: impl IntoIterator<Item = JobSpec>,
    ) -> Result<Vec<JobId>, (Vec<JobId>, ServeError)> {
        let mut accepted = Vec::new();
        for job in jobs {
            match self.submit(job) {
                Ok(id) => accepted.push(id),
                Err(e) => return Err((accepted, e)),
            }
        }
        Ok(accepted)
    }

    /// Waits until every submitted job has finished and drains their
    /// outcomes, ordered by [`JobId`] (= submission order). Jobs submitted
    /// concurrently with the wait are waited for too; outcomes are returned
    /// once, so alternating `submit`/`join` rounds each get their own
    /// results.
    #[must_use]
    pub fn join(&self) -> Vec<JobOutcome> {
        let shared = &self.shared;
        let mut state = shared.state.lock().expect("serve queue poisoned");
        while state.running > 0 || state.pending_total > 0 {
            state = shared.job_done.wait(state).expect("serve queue poisoned");
        }
        std::mem::take(&mut state.finished)
            .into_iter()
            .map(|(id, result)| (JobId(id), result))
            .collect()
    }

    /// Snapshots the session's counters: cache hit/miss/in-flight/eviction,
    /// disk-store traffic, job admission and completion, deadline SLO
    /// outcomes, and the in-flight high-water mark.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.stats_snapshot()
    }

    /// Snapshots every tenant that ever submitted to this session: backlog,
    /// scheduler account and deadline SLO ledger, sorted by tenant name.
    #[must_use]
    pub fn tenant_stats(&self) -> Vec<TenantSnapshot> {
        self.shared.tenant_snapshots()
    }

    /// The telemetry endpoint's bound address (useful with an ephemeral
    /// `"host:0"` [`ServeConfig::telemetry_addr`]); `None` when no endpoint
    /// was configured.
    #[must_use]
    pub fn telemetry_addr(&self) -> Option<std::net::SocketAddr> {
        self.telemetry.as_ref().map(TelemetryServer::local_addr)
    }

    /// The session's flight recorder ([`ServeConfig::trace`]) — the same
    /// handle that was installed into the pipeline and store, so exporting
    /// from it yields the whole stack's events. Disabled (and empty) unless
    /// the config supplied an enabled recorder.
    #[must_use]
    pub fn trace(&self) -> &Recorder {
        &self.shared.trace
    }

    /// Stops the session: workers finish their current job and exit, then
    /// the final statistics snapshot is returned. Call
    /// [`join`](ServeHandle::join) first to let queued jobs drain.
    #[must_use]
    pub fn shutdown(mut self) -> ServeStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(telemetry) = self.telemetry.take() {
            telemetry.shutdown();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One worker: pop the fair scheduler's next job, resolve its artifact,
/// execute, publish the result and feed the cost model.
fn worker_loop(shared: &Shared, index: usize) {
    if shared.trace.is_enabled() {
        shared
            .trace
            .set_thread_track(&format!("janus-serve-{index}"));
    }
    loop {
        let (id, job, sequence, submitted) = {
            let mut state = shared.state.lock().expect("serve queue poisoned");
            loop {
                // Stop is checked before popping so shutdown abandons
                // queued-but-unstarted jobs after at most one in-progress
                // job per worker, as the handle documents — `join` first if
                // the queue must drain.
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(next) = state.pop_next() {
                    state.running += 1;
                    break next;
                }
                state = shared.work_ready.wait(state).expect("serve queue poisoned");
            }
        };
        // Queue wait is measured from the submission instant whether or not
        // tracing is on (the histogram backs `ServeStats`); the async span —
        // which may overlap this worker's own job span — only when it is.
        let wait_nanos = u64::try_from(submitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared.hist_queue_wait.record(wait_nanos);
        shared.meter.hist_queue_wait.record(wait_nanos);
        if shared.trace.is_enabled() {
            let end = shared.trace.now_nanos();
            shared.trace.async_span(
                "serve.job",
                "queue.wait",
                end.saturating_sub(wait_nanos),
                end,
                &[
                    ("job", id.0.into()),
                    (
                        "tenant",
                        job.tenant.as_deref().unwrap_or(DEFAULT_TENANT).into(),
                    ),
                ],
            );
        }
        let result = run_job(shared, id, &job, sequence);
        if result.is_err() {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            shared.meter.jobs_failed.inc();
        }
        shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
        shared.meter.jobs_completed.inc();
        // Deadline SLO attainment, judged on the latency the submitter
        // experienced: submission through completion. Admission promised
        // nothing it could not keep; here is where the promise is audited.
        let deadline_outcome = job.deadline.map(|deadline| submitted.elapsed() <= deadline);
        match deadline_outcome {
            Some(true) => {
                shared.jobs_deadline_hit.fetch_add(1, Ordering::Relaxed);
                shared.meter.deadline_hit.inc();
            }
            Some(false) => {
                shared.jobs_deadline_missed.fetch_add(1, Ordering::Relaxed);
                shared.meter.deadline_missed.inc();
            }
            None => {}
        }
        {
            let mut state = shared.state.lock().expect("serve queue poisoned");
            state.running -= 1;
            if let Some(hit) = deadline_outcome {
                let tenant = job.tenant.as_deref().unwrap_or(DEFAULT_TENANT);
                if let Some(tq) = state.tenants.get_mut(tenant) {
                    if hit {
                        tq.deadline_hit += 1;
                        tq.meter.deadline_hit.inc();
                    } else {
                        tq.deadline_missed += 1;
                        tq.meter.deadline_missed.inc();
                    }
                }
            }
            state.finished.insert(id.0, result);
        }
        shared.job_done.notify_all();
    }
}

/// Resolves the job's artifact through the two-tier cache — hydrating a
/// persisted pipeline on a disk hit, running the full pipeline (exactly
/// once per digest) on a disk miss — and executes the job against it with
/// the session configuration plus per-job overrides.
fn run_job(
    shared: &Shared,
    id: JobId,
    job: &JobSpec,
    sequence: u64,
) -> Result<JobReport, ServeError> {
    let digest = job.binary_digest;
    let trace = &shared.trace;
    // The job clock covers artifact resolution too, so first-submission
    // build latency (and gate waits) show up in the wall-time distribution.
    let start = Instant::now();
    let mut job_span = trace
        .span("serve.job", "job")
        .arg("job", id.0)
        .arg("tenant", job.tenant.as_deref().unwrap_or(DEFAULT_TENANT))
        .arg("digest", format!("{digest:#018x}"));
    let hydrate = |pipeline: PipelineArtifacts| {
        let _span = trace
            .span("serve.job", "disk.hydrate")
            .arg("digest", format!("{digest:#018x}"));
        let process = Process::load(&job.binary).map_err(|e| ServeError::Build {
            digest,
            reason: e.to_string(),
        })?;
        let prepared = PreparedDbm::new(process, &pipeline.schedule, shared.janus.dbm_config());
        Ok(Artifact::new(pipeline, prepared))
    };
    let artifact = {
        let _span = trace
            .span("serve.job", "cache.probe")
            .arg("digest", format!("{digest:#018x}"));
        shared.cache.get_or_build(digest, hydrate, || {
            let pipeline = shared
                .janus
                .prepare(&job.binary, &shared.config.train_input)
                .map_err(|e| ServeError::Build {
                    digest,
                    reason: e.to_string(),
                })?;
            let process = Process::load(&job.binary).map_err(|e| ServeError::Build {
                digest,
                reason: e.to_string(),
            })?;
            let prepared = PreparedDbm::new(process, &pipeline.schedule, shared.janus.dbm_config());
            Ok(Artifact::new(pipeline, prepared))
        })
    }?;

    let mut config = shared.janus.dbm_config();
    if let Some(threads) = job.threads {
        config.threads = threads;
    }
    if let Some(backend) = job.backend {
        config.backend = backend;
    }
    if let Some(mode) = job.spec_commit {
        config.spec_commit = mode;
    }

    let exec_start = Instant::now();
    let run = {
        let _span = trace
            .span("serve.job", "execute")
            .arg("backend", format!("{:?}", config.backend))
            .arg("threads", config.threads);
        artifact.prepared.execute_traced(&job.input, config, trace)
    }
    .map_err(ServeError::Execution)?;
    let exec_nanos = u64::try_from(exec_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    shared.hist_execute.record(exec_nanos);
    shared.meter.hist_execute.record(exec_nanos);
    let wall_nanos = start.elapsed().as_nanos() as u64;
    shared.hist_job_wall.record(wall_nanos);
    shared.meter.hist_job_wall.record(wall_nanos);
    job_span.push_arg("cycles", run.cycles);
    shared.cost_model.observe(digest, wall_nanos);
    Ok(JobReport {
        id,
        tenant: job
            .tenant
            .clone()
            .unwrap_or_else(|| DEFAULT_TENANT.to_string()),
        sequence,
        binary_digest: digest,
        schedule_digest: artifact.schedule_digest,
        backend: config.backend,
        threads: config.threads,
        exit_code: run.exit_code,
        cycles: run.cycles,
        output_ints: run.output_ints,
        output_floats: run.output_floats,
        memory_digest: run.memory_digest,
        stats: run.stats,
        wall_nanos,
    })
}
