//! The bounded job executor: a pool of OS worker threads draining a
//! submission queue, resolving artifacts through the [`ArtifactCache`] and
//! executing jobs via the cached [`PreparedDbm`](janus_core::PreparedDbm).

use crate::cache::{Artifact, ArtifactCache};
use crate::{JobId, JobOutcome, JobReport, JobSpec, ServeConfig, ServeError, ServeStats};
use janus_core::{Janus, PreparedDbm};
use janus_vm::Process;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// The submission queue and result store, guarded by one mutex.
#[derive(Default)]
struct QueueState {
    pending: VecDeque<(JobId, JobSpec)>,
    running: usize,
    next_id: u64,
    finished: BTreeMap<u64, Result<JobReport, ServeError>>,
}

/// State shared between the handle and the worker threads.
struct Shared {
    janus: Janus,
    config: ServeConfig,
    cache: ArtifactCache,
    state: Mutex<QueueState>,
    /// Wakes workers when a job is queued (or shutdown begins).
    work_ready: Condvar,
    /// Wakes [`ServeHandle::join`] when a job finishes.
    job_done: Condvar,
    stop: AtomicBool,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_rejected: AtomicU64,
    max_in_flight_seen: AtomicU64,
}

/// A running serving session: worker pool plus submission interface.
///
/// Obtained from [`ServeSession::serve`](crate::ServeSession::serve). Jobs
/// go in through [`submit`](ServeHandle::submit) /
/// [`submit_batch`](ServeHandle::submit_batch); results come back from
/// [`join`](ServeHandle::join) in submission order. Dropping the handle (or
/// calling [`shutdown`](ServeHandle::shutdown)) stops the workers after
/// their current job; queued-but-unstarted jobs are abandoned, so call
/// [`join`](ServeHandle::join) first if every submitted job must finish.
pub struct ServeHandle {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHandle")
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ServeHandle {
    /// Starts a session: allocates the artifact cache and spawns the worker
    /// pool.
    #[must_use]
    pub(crate) fn start(janus: Janus, config: ServeConfig) -> ServeHandle {
        let cache = ArtifactCache::with_shards(config.cache_capacity, config.cache_shards);
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            janus,
            config,
            cache,
            state: Mutex::new(QueueState::default()),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            stop: AtomicBool::new(false),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            max_in_flight_seen: AtomicU64::new(0),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("janus-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serving worker")
            })
            .collect();
        ServeHandle { shared, workers }
    }

    /// Submits one job. Admission control applies: a full pending queue (or
    /// in-flight cap) rejects with [`ServeError::Saturated`] instead of
    /// queueing unboundedly — back off and resubmit.
    ///
    /// # Errors
    ///
    /// [`ServeError::Saturated`] when admission control rejects the job,
    /// [`ServeError::ShuttingDown`] after [`ServeHandle::shutdown`] began.
    pub fn submit(&self, job: JobSpec) -> Result<JobId, ServeError> {
        let shared = &self.shared;
        if shared.stop.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let mut state = shared.state.lock().expect("serve queue poisoned");
        let in_flight = state.pending.len() + state.running;
        let limit = shared.config.effective_max_in_flight();
        if state.pending.len() >= shared.config.queue_depth || in_flight >= limit {
            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Saturated { in_flight, limit });
        }
        let id = JobId(state.next_id);
        state.next_id += 1;
        state.pending.push_back((id, job));
        shared.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        shared
            .max_in_flight_seen
            .fetch_max(in_flight as u64 + 1, Ordering::Relaxed);
        drop(state);
        shared.work_ready.notify_one();
        Ok(id)
    }

    /// Submits a batch of jobs, stopping at the first rejection.
    ///
    /// # Errors
    ///
    /// Returns the ids accepted so far alongside the error that stopped the
    /// batch; the accepted jobs stay queued and will run.
    pub fn submit_batch(
        &self,
        jobs: impl IntoIterator<Item = JobSpec>,
    ) -> Result<Vec<JobId>, (Vec<JobId>, ServeError)> {
        let mut accepted = Vec::new();
        for job in jobs {
            match self.submit(job) {
                Ok(id) => accepted.push(id),
                Err(e) => return Err((accepted, e)),
            }
        }
        Ok(accepted)
    }

    /// Waits until every submitted job has finished and drains their
    /// outcomes, ordered by [`JobId`] (= submission order). Jobs submitted
    /// concurrently with the wait are waited for too; outcomes are returned
    /// once, so alternating `submit`/`join` rounds each get their own
    /// results.
    #[must_use]
    pub fn join(&self) -> Vec<JobOutcome> {
        let shared = &self.shared;
        let mut state = shared.state.lock().expect("serve queue poisoned");
        while state.running > 0 || !state.pending.is_empty() {
            state = shared.job_done.wait(state).expect("serve queue poisoned");
        }
        std::mem::take(&mut state.finished)
            .into_iter()
            .map(|(id, result)| (JobId(id), result))
            .collect()
    }

    /// Snapshots the session's counters: cache hit/miss/in-flight/eviction,
    /// job admission and completion, and the in-flight high-water mark.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        let shared = &self.shared;
        let (pending, running) = {
            let state = shared.state.lock().expect("serve queue poisoned");
            (state.pending.len() as u64, state.running as u64)
        };
        ServeStats {
            cache_hits: shared.cache.hits(),
            cache_misses: shared.cache.misses(),
            cache_inflight_waits: shared.cache.inflight_waits(),
            cache_evictions: shared.cache.evictions(),
            cache_entries: shared.cache.len() as u64,
            jobs_submitted: shared.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: shared.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: shared.jobs_failed.load(Ordering::Relaxed),
            jobs_rejected: shared.jobs_rejected.load(Ordering::Relaxed),
            jobs_pending: pending,
            jobs_running: running,
            max_in_flight_seen: shared.max_in_flight_seen.load(Ordering::Relaxed),
        }
    }

    /// Stops the session: workers finish their current job and exit, then
    /// the final statistics snapshot is returned. Call
    /// [`join`](ServeHandle::join) first to let queued jobs drain.
    #[must_use]
    pub fn shutdown(mut self) -> ServeStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One worker: pop a job, resolve its artifact, execute, publish the result.
fn worker_loop(shared: &Shared) {
    loop {
        let (id, job) = {
            let mut state = shared.state.lock().expect("serve queue poisoned");
            loop {
                // Stop is checked before popping so shutdown abandons
                // queued-but-unstarted jobs after at most one in-progress
                // job per worker, as the handle documents — `join` first if
                // the queue must drain.
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(next) = state.pending.pop_front() {
                    state.running += 1;
                    break next;
                }
                state = shared.work_ready.wait(state).expect("serve queue poisoned");
            }
        };
        let result = run_job(shared, id, &job);
        if result.is_err() {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
        shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
        {
            let mut state = shared.state.lock().expect("serve queue poisoned");
            state.running -= 1;
            state.finished.insert(id.0, result);
        }
        shared.job_done.notify_all();
    }
}

/// Resolves the job's artifact through the cache (building it — exactly
/// once per digest — on first sight) and executes the job against it with
/// the session configuration plus per-job overrides.
fn run_job(shared: &Shared, id: JobId, job: &JobSpec) -> Result<JobReport, ServeError> {
    let digest = job.binary_digest;
    // The job clock covers artifact resolution too, so first-submission
    // build latency (and gate waits) show up in the wall-time distribution.
    let start = Instant::now();
    let artifact = shared.cache.get_or_build(digest, || {
        let pipeline = shared
            .janus
            .prepare(&job.binary, &shared.config.train_input)
            .map_err(|e| ServeError::Build {
                digest,
                reason: e.to_string(),
            })?;
        let process = Process::load(&job.binary).map_err(|e| ServeError::Build {
            digest,
            reason: e.to_string(),
        })?;
        let prepared = PreparedDbm::new(process, &pipeline.schedule, shared.janus.dbm_config());
        Ok(Artifact::new(pipeline, prepared))
    })?;

    let mut config = shared.janus.dbm_config();
    if let Some(threads) = job.threads {
        config.threads = threads;
    }
    if let Some(backend) = job.backend {
        config.backend = backend;
    }
    if let Some(mode) = job.spec_commit {
        config.spec_commit = mode;
    }

    let run = artifact
        .prepared
        .execute_with(&job.input, config)
        .map_err(ServeError::Execution)?;
    Ok(JobReport {
        id,
        binary_digest: digest,
        schedule_digest: artifact.schedule_digest,
        backend: config.backend,
        threads: config.threads,
        exit_code: run.exit_code,
        cycles: run.cycles,
        output_ints: run.output_ints,
        output_floats: run.output_floats,
        memory_digest: run.memory_digest,
        stats: run.stats,
        wall_nanos: start.elapsed().as_nanos() as u64,
    })
}
