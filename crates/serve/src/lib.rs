//! # janus-serve — the multi-tenant serving layer
//!
//! Janus front-loads static analysis into a compact rewrite schedule
//! precisely so the expensive part is done **once per binary** and the
//! dynamic modifier can reuse it on every run — yet driving the pipeline
//! through [`Janus::run`](janus_core::Janus::run) re-analyses, re-classifies
//! and re-schedules the guest on every invocation. This crate supplies the
//! subsystem that amortises that work across runs and executes many guest
//! invocations concurrently: a job runtime that accepts batches of guest
//! invocations (binary + input + per-job configuration), keyed by a content
//! digest of the `JBin`.
//!
//! ## Architecture
//!
//! (The cross-crate picture — how the serving layer sits on top of the
//! pipeline, the two execution backends and the artifact lifecycle — is
//! drawn end-to-end in `docs/ARCHITECTURE.md` at the repository root.)
//!
//! * [`ArtifactCache`] — a **sharded, content-addressed store** mapping
//!   [`JBinary::content_digest`] to the binary's derived artifacts: the
//!   static analysis, the optional profile, the selected loops, the
//!   generated [`RewriteSchedule`](janus_core::PipelineArtifacts) and a
//!   [`PreparedDbm`](janus_core::PreparedDbm) ready to execute. Each digest
//!   is built **exactly once** under a per-key build gate: concurrent
//!   submissions of the same binary elect one builder and every other
//!   submitter blocks on the gate until the artifact is published (counted
//!   as `cache_inflight_waits`, not as extra builds). Entries are bounded by
//!   a per-shard LRU; hit/miss/in-flight/eviction counters surface in
//!   [`ServeStats`].
//! * [`ArtifactStore`] — the **persistent disk tier** under the in-memory
//!   cache ([`ServeConfig::store_dir`]): serialised artifacts under
//!   digest-named files, written via temp-file + atomic rename so crashes
//!   and concurrent processes never observe torn entries. A cache miss
//!   probes the store before analysing; a store hit hydrates the in-memory
//!   entry with **zero pipeline rebuilds**, so a restarted session — or a
//!   second process sharing the directory — warm-starts. Corrupt entries
//!   are quarantined and rebuilt, never trusted (see the [`store`
//!   module](store) docs for the format and crash-safety argument).
//! * [`ServeHandle`] — a **bounded, fair job executor**: a pool of OS
//!   worker threads drains per-tenant submission queues under
//!   deficit-round-robin scheduling (token quotas per tenant, so a
//!   saturating tenant cannot starve a light one), resolves each job's
//!   artifact through the cache and runs it via
//!   [`PreparedDbm::execute_with`](janus_core::PreparedDbm::execute_with)
//!   (fresh guest memory per run, so concurrent jobs never observe each
//!   other). Admission control caps the pending queue depth, the total
//!   number of in-flight jobs and each tenant's backlog, and rejects jobs
//!   whose latency budget provably cannot be met
//!   ([`ServeError::DeadlineUnmeetable`], judged against queue occupancy
//!   and a cost model fed by completed runs) — saturated submissions fail
//!   fast with typed errors instead of queueing unboundedly.
//! * [`ServeSession`] — the session API on the `janus` facade:
//!   `janus.serve(ServeConfig)` returns a [`ServeHandle`] with
//!   [`submit`](ServeHandle::submit) / [`submit_batch`](ServeHandle::submit_batch)
//!   / [`join`](ServeHandle::join), so callers drive the serving layer
//!   without touching internals.
//!
//! ## The digest-keyed artifact lifecycle
//!
//! 1. A job arrives carrying an `Arc<JBinary>`; its
//!    [`content_digest`](janus_ir::JBinary::content_digest) (a stable FNV-1a
//!    hash of the serialised image) is the cache key.
//! 2. On the first submission of a digest, the executing worker becomes the
//!    *builder*: it runs the front half of the pipeline
//!    ([`Janus::prepare`](janus_core::Janus::prepare) — analysis, optional
//!    profiling on the configured training input, loop selection, schedule
//!    generation), loads the process and decodes the schedule into a
//!    [`PreparedDbm`](janus_core::PreparedDbm). Concurrent submissions of
//!    the same digest wait on the build gate; **exactly one analysis runs**.
//! 3. The published [`Artifact`] is immutable plain data behind an `Arc`;
//!    any number of jobs execute against it concurrently, each with a fresh
//!    guest image and per-job backend/thread overrides.
//! 4. When the cache exceeds its capacity bound, the least-recently-used
//!    artifact of the over-full shard is evicted; resubmitting that binary
//!    reloads it from the disk store when one is configured (a disk hit,
//!    no re-analysis) and rebuilds it otherwise (a new miss).
//! 5. With [`ServeConfig::store_dir`] set, every built artifact is also
//!    persisted: the serialised [`PipelineArtifacts`](janus_core::PipelineArtifacts)
//!    lands in the store under the binary digest, tagged with a fingerprint
//!    of the pipeline configuration, and outlives the process.
//!
//! Guest results are independent of all of this: a job's outputs and final
//! memory digest are identical whether it ran through the serving layer, on
//! which worker, at which cache state, or serially through
//! [`PreparedDbm::execute`](janus_core::PreparedDbm::execute) — the
//! equivalence tests in `tests/serve.rs` pin exactly that.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use janus_core::Janus;
//! use janus_serve::{JobSpec, ServeConfig, ServeSession};
//! use janus_compile::{ast, Compiler};
//!
//! let program = ast::Program::builder("axpy")
//!     .global_f64("x", 512)
//!     .global_f64("y", 512)
//!     .function(ast::Function::new("main").local("i", ast::Ty::I64).body(vec![
//!         ast::Stmt::simple_for(
//!             "i",
//!             ast::Expr::const_i(0),
//!             ast::Expr::const_i(512),
//!             vec![ast::Stmt::assign(
//!                 ast::LValue::store("y", ast::Expr::var("i")),
//!                 ast::Expr::add(
//!                     ast::Expr::load("x", ast::Expr::var("i")),
//!                     ast::Expr::load("y", ast::Expr::var("i")),
//!                 ),
//!             )],
//!         ),
//!         ast::Stmt::print(ast::Expr::load("y", ast::Expr::const_i(100))),
//!     ]))
//!     .build();
//! let binary = Arc::new(Compiler::new().compile(&program).unwrap());
//!
//! let handle = Janus::new().serve(ServeConfig::default());
//! // Two submissions of the same binary: one analysis, one cache hit.
//! handle.submit(JobSpec::new(binary.clone())).unwrap();
//! handle.submit(JobSpec::new(binary)).unwrap();
//! let outcomes = handle.join();
//! assert_eq!(outcomes.len(), 2);
//! let stats = handle.stats();
//! assert_eq!(stats.cache_misses, 1);
//! assert_eq!(stats.cache_hits + stats.cache_inflight_waits, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod executor;
mod metrics;
pub mod store;
pub mod telemetry;

pub use cache::{Artifact, ArtifactCache};
pub use executor::{ServeHandle, TenantSnapshot};
pub use store::{ArtifactStore, STORE_FORMAT_VERSION};

use janus_core::{BackendKind, Janus, SpecCommitMode};
use janus_dbm::DbmError;
use janus_ir::JBinary;
use janus_obs::metrics::Registry;
use janus_obs::{LatencyStats, Recorder};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of one serving session ([`ServeSession::serve`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// OS worker threads draining the submission queue.
    pub workers: usize,
    /// Pending (queued, not yet running) jobs admitted before submissions
    /// fail with [`ServeError::Saturated`].
    pub queue_depth: usize,
    /// Cap on total in-flight jobs (pending + running). `0` means
    /// `queue_depth + workers` — the natural bound.
    pub max_in_flight: usize,
    /// Artifact-cache capacity in entries (distinct binaries). The bound is
    /// enforced per shard, so it is exact when `cache_shards == 1` and a
    /// high-water mark otherwise.
    pub cache_capacity: usize,
    /// Number of cache shards (lock-contention knob; each shard has its own
    /// mutex and LRU clock).
    pub cache_shards: usize,
    /// Training input used when the configured optimisation mode profiles a
    /// newly seen binary. One fixed input per session keeps artifacts a pure
    /// function of the binary digest.
    pub train_input: Vec<i64>,
    /// Directory of the persistent [`ArtifactStore`]. `None` (the default)
    /// serves from memory only; `Some(dir)` opens (creating if needed) a
    /// disk store there, warm-starts from its existing entries, and
    /// persists every artifact this session builds. Any number of
    /// sessions — in this process or others — may share one directory.
    pub store_dir: Option<PathBuf>,
    /// Byte budget of the disk store; least-recently-used entries are
    /// evicted past it. `0` (the default) means unbounded.
    pub store_max_bytes: u64,
    /// Quota applied to tenants without an entry in `tenant_quotas`
    /// (including the implicit `"default"` tenant of jobs that set none).
    pub default_quota: TenantQuota,
    /// Per-tenant quota overrides, matched by the tenant name carried in
    /// [`JobSpec::tenant`].
    pub tenant_quotas: Vec<(String, TenantQuota)>,
    /// The session's flight recorder. The default (disabled) recorder costs
    /// one branch per would-be event; pass
    /// [`Recorder::enabled`](janus_obs::Recorder::enabled) to collect
    /// per-job spans (queue wait, cache probe, disk hydrate, execute),
    /// store events and per-worker tracks, exportable as a Chrome trace,
    /// JSONL or Prometheus text. The handle installs this recorder into its
    /// pipeline and store, so one export covers the whole stack. Latency
    /// histograms ([`ServeStats::job_wall`] and friends) are maintained
    /// either way.
    pub trace: Recorder,
    /// The metrics registry this session meters into — counters, gauges and
    /// latency histograms for jobs, tenants, the artifact cache and the
    /// disk store, always on (a handful of relaxed atomic ops per event).
    /// `None` (the default) uses the **process-global** registry
    /// ([`janus_obs::metrics::global`]), so one scrape covers every
    /// default-configured session plus the DBM's global families; pass a
    /// fresh [`Registry`] for per-session isolation (tests, embedding).
    pub metrics: Option<Registry>,
    /// Address (`"host:port"`, e.g. `"127.0.0.1:9100"` or `"127.0.0.1:0"`
    /// for an ephemeral port) to serve live telemetry on: a dependency-free
    /// HTTP/1.0 endpoint answering `GET /metrics` (Prometheus exposition of
    /// the effective registry), `/healthz` (liveness + saturation verdict),
    /// `/statusz` (JSON snapshot of [`ServeStats`], per-tenant queues and
    /// SLO attainment) and `/tracez` (Chrome trace, when
    /// [`ServeConfig::trace`] is enabled). `None` (the default) serves no
    /// endpoint. The listener shuts down with the session. See
    /// [`telemetry`].
    pub telemetry_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 256,
            max_in_flight: 0,
            cache_capacity: 64,
            cache_shards: 8,
            train_input: Vec::new(),
            store_dir: None,
            store_max_bytes: 0,
            default_quota: TenantQuota::default(),
            tenant_quotas: Vec::new(),
            trace: Recorder::default(),
            metrics: None,
            telemetry_addr: None,
        }
    }
}

impl ServeConfig {
    /// The effective in-flight cap: `max_in_flight`, defaulting to
    /// `queue_depth + workers` when 0.
    #[must_use]
    pub fn effective_max_in_flight(&self) -> usize {
        if self.max_in_flight == 0 {
            self.queue_depth + self.workers
        } else {
            self.max_in_flight
        }
    }

    /// The registry this session meters into: [`ServeConfig::metrics`],
    /// falling back to the process-global registry.
    #[must_use]
    pub fn effective_metrics(&self) -> Registry {
        self.metrics
            .clone()
            .unwrap_or_else(|| janus_obs::metrics::global().clone())
    }

    /// The quota governing `tenant`: its `tenant_quotas` entry, falling
    /// back to `default_quota`.
    #[must_use]
    pub fn quota_for(&self, tenant: &str) -> TenantQuota {
        self.tenant_quotas
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, quota)| *quota)
            .unwrap_or(self.default_quota)
    }
}

/// Fair-scheduling quota of one tenant.
///
/// The executor keeps one FIFO queue per tenant and serves them with
/// **deficit round robin**: each visit of the scheduler grants the tenant
/// `quantum` tokens of deficit, and a job is started only when the
/// tenant's accumulated deficit covers the job's token cost (1 token ≈ 1
/// millisecond of estimated service time, from the session's cost model;
/// unseen binaries cost 1 token). Over time every backlogged tenant's
/// share of served work is proportional to its quantum, so a tenant
/// flooding the queue cannot starve a light one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Deficit tokens granted per scheduler round. Relative values set the
    /// tenants' long-run service shares; the default is 100 (≈ 100 ms of
    /// estimated service per round).
    pub quantum: u64,
    /// Per-tenant pending-queue cap; submissions beyond it are rejected
    /// with [`ServeError::TenantSaturated`]. `0` (the default) means no
    /// per-tenant cap — only the session-wide `queue_depth` applies.
    pub max_pending: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            quantum: 100,
            max_pending: 0,
        }
    }
}

/// Tenant name used for jobs that do not set [`JobSpec::tenant`].
pub const DEFAULT_TENANT: &str = "default";

/// Errors raised by the serving layer.
///
/// `Clone` because one build failure is shared with every submission that
/// waited on the same in-progress build.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission control rejected the submission: the queue (or the
    /// in-flight cap) is full. Back off and resubmit.
    Saturated {
        /// In-flight jobs (pending + running) at rejection time.
        in_flight: usize,
        /// The limit that was hit.
        limit: usize,
    },
    /// Building the binary's artifacts (analysis, profiling, schedule
    /// generation or process load) failed.
    Build {
        /// Content digest of the failing binary.
        digest: u64,
        /// Human-readable cause.
        reason: String,
    },
    /// The job's guest execution failed.
    Execution(DbmError),
    /// The session is shutting down; no further submissions are accepted.
    ShuttingDown,
    /// Admission control rejected the submission because its latency
    /// budget ([`JobSpec::deadline`]) provably cannot be met: the cost
    /// model's service-time estimate for this binary, plus the current
    /// backlog spread over the worker pool, already exceeds the budget.
    /// Only raised when the model has evidence (at least one completed run
    /// of this or some binary); jobs for unseen binaries with no backlog
    /// estimate are always admitted.
    DeadlineUnmeetable {
        /// Estimated completion time (queue wait + service) in nanoseconds.
        estimated_nanos: u64,
        /// The job's deadline budget in nanoseconds.
        budget_nanos: u64,
    },
    /// Admission control rejected the submission because this tenant's
    /// pending queue reached its [`TenantQuota::max_pending`] cap. Other
    /// tenants are unaffected — back off and resubmit.
    TenantSaturated {
        /// The tenant whose quota was hit.
        tenant: String,
        /// The tenant's pending jobs at rejection time.
        pending: usize,
        /// The tenant's `max_pending` cap.
        limit: usize,
    },
    /// The persistent artifact store could not be opened
    /// ([`ServeConfig::store_dir`]).
    Store {
        /// Human-readable cause (the underlying I/O error).
        reason: String,
    },
    /// The telemetry endpoint could not be started
    /// ([`ServeConfig::telemetry_addr`]): the address did not bind.
    Telemetry {
        /// Human-readable cause (the underlying I/O error).
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Saturated { in_flight, limit } => {
                write!(
                    f,
                    "serving queue saturated ({in_flight} in flight, limit {limit})"
                )
            }
            ServeError::Build { digest, reason } => {
                write!(
                    f,
                    "artifact build failed for binary {digest:#018x}: {reason}"
                )
            }
            ServeError::Execution(e) => write!(f, "job execution failed: {e}"),
            ServeError::ShuttingDown => write!(f, "serving session is shutting down"),
            ServeError::DeadlineUnmeetable {
                estimated_nanos,
                budget_nanos,
            } => write!(
                f,
                "deadline unmeetable: estimated completion {estimated_nanos} ns exceeds budget {budget_nanos} ns"
            ),
            ServeError::TenantSaturated {
                tenant,
                pending,
                limit,
            } => write!(
                f,
                "tenant '{tenant}' saturated ({pending} pending, quota {limit})"
            ),
            ServeError::Store { reason } => {
                write!(f, "artifact store unavailable: {reason}")
            }
            ServeError::Telemetry { reason } => {
                write!(f, "telemetry endpoint failed to start: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<DbmError> for ServeError {
    fn from(e: DbmError) -> Self {
        ServeError::Execution(e)
    }
}

/// Counters describing one serving session, snapshotted by
/// [`ServeHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Cache lookups served from a ready artifact.
    pub cache_hits: u64,
    /// Cache lookups that started a build — i.e. the number of analyses
    /// actually run. Concurrent submissions of one binary contribute 1 here.
    pub cache_misses: u64,
    /// Cache lookups that blocked on another submission's in-progress build
    /// of the same digest (amortised to zero extra analyses).
    pub cache_inflight_waits: u64,
    /// Artifacts evicted by the LRU capacity bound.
    pub cache_evictions: u64,
    /// Distinct artifacts currently resident.
    pub cache_entries: u64,
    /// Memory-cache misses served from the persistent disk store — the
    /// artifact was deserialised and hydrated with **no** pipeline rebuild.
    /// 0 when no [`ServeConfig::store_dir`] is configured.
    pub disk_hits: u64,
    /// Disk-store probes that found no usable entry (absent, stale or
    /// corrupt); each corresponds to a `cache_misses` analysis.
    pub disk_misses: u64,
    /// Disk entries quarantined because their bytes failed verification
    /// (renamed aside, never served, rebuilt from the binary).
    pub disk_corrupt: u64,
    /// Bytes removed from the disk store by its byte-budget LRU policy.
    pub disk_evicted_bytes: u64,
    /// Entries resident in the disk store (as indexed by this process).
    pub disk_entries: u64,
    /// Jobs accepted by admission control.
    pub jobs_submitted: u64,
    /// Jobs that finished (successfully or not).
    pub jobs_completed: u64,
    /// Jobs that finished with an error.
    pub jobs_failed: u64,
    /// Submissions rejected with [`ServeError::Saturated`].
    pub jobs_rejected: u64,
    /// Submissions rejected with [`ServeError::DeadlineUnmeetable`].
    pub jobs_deadline_rejected: u64,
    /// Submissions rejected with [`ServeError::TenantSaturated`].
    pub jobs_quota_rejected: u64,
    /// Completed deadline-carrying jobs that finished within their budget.
    /// Jobs without a [`JobSpec::deadline`] count in neither SLO bucket.
    pub jobs_deadline_hit: u64,
    /// Completed deadline-carrying jobs that overran their budget (admitted
    /// jobs are never killed — the overrun is counted, not prevented).
    pub jobs_deadline_missed: u64,
    /// Jobs currently queued, not yet picked up by a worker.
    pub jobs_pending: u64,
    /// Jobs currently executing on a worker.
    pub jobs_running: u64,
    /// High-water mark of in-flight jobs (pending + running).
    pub max_in_flight_seen: u64,
    /// End-to-end job latency quantiles (dequeue through execution,
    /// including artifact resolution), from a log-bucketed histogram —
    /// p50/p90/p99 are bucket upper bounds, never more than 2× the exact
    /// value. Maintained whether or not tracing is enabled.
    pub job_wall: LatencyStats,
    /// Queue-wait quantiles: submission to dequeue by a worker.
    pub job_queue_wait: LatencyStats,
    /// Guest-execution quantiles: the [`PreparedDbm`](janus_core::PreparedDbm)
    /// run alone, excluding artifact resolution.
    pub job_execute: LatencyStats,
}

impl ServeStats {
    /// Fraction of cache lookups that did not run an analysis: memory hits,
    /// in-flight waits and disk hits over all lookups (0 when nothing was
    /// looked up). `cache_misses` alone counts the analyses actually run.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let amortised = self.cache_hits + self.cache_inflight_waits + self.disk_hits;
        let total = amortised + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            amortised as f64 / total as f64
        }
    }

    /// Deadline SLO attainment: the fraction of completed deadline-carrying
    /// jobs that finished within budget, or `None` when no such job has
    /// completed (no evidence is not 100%).
    #[must_use]
    pub fn deadline_attainment(&self) -> Option<f64> {
        let total = self.jobs_deadline_hit + self.jobs_deadline_missed;
        if total == 0 {
            None
        } else {
            Some(self.jobs_deadline_hit as f64 / total as f64)
        }
    }
}

/// Identifier of one submitted job, unique within its session and ordered by
/// submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// One guest invocation submitted to the serving layer: the binary, its
/// input, and optional per-job overrides of the session configuration.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The guest binary. `Arc` so batches over the same binary share one
    /// allocation (the cache key is the content digest, not the pointer).
    pub binary: Arc<JBinary>,
    /// The binary's content digest, computed once in [`JobSpec::new`] —
    /// digesting re-serialises the whole binary, so batches should build
    /// one `JobSpec` per binary and [`Clone`] it per job rather than
    /// re-wrapping the `Arc` each time.
    pub binary_digest: u64,
    /// Simulated standard input for the run.
    pub input: Vec<i64>,
    /// Per-job override of the worker thread count for parallel loops.
    pub threads: Option<u32>,
    /// Per-job override of the execution backend.
    pub backend: Option<BackendKind>,
    /// Per-job override of the speculative commit mode (e.g.
    /// [`SpecCommitMode::RacedImage`] for jobs that do not consume modelled
    /// figures).
    pub spec_commit: Option<SpecCommitMode>,
    /// The submitting tenant, for fair scheduling and quotas. `None` files
    /// the job under [`DEFAULT_TENANT`].
    pub tenant: Option<String>,
    /// Latency budget from submission to completion. Admission rejects the
    /// job with [`ServeError::DeadlineUnmeetable`] when the cost model's
    /// evidence says the budget cannot be met; `None` (the default) never
    /// rejects on latency grounds. Admission is a *promise check*, not a
    /// guarantee — an admitted job is not killed if it overruns.
    pub deadline: Option<Duration>,
}

impl JobSpec {
    /// A job running `binary` on an empty input with session defaults.
    /// Computes the binary's content digest here, once; clones share it.
    #[must_use]
    pub fn new(binary: Arc<JBinary>) -> JobSpec {
        let binary_digest = binary.content_digest();
        JobSpec {
            binary,
            binary_digest,
            input: Vec::new(),
            threads: None,
            backend: None,
            spec_commit: None,
            tenant: None,
            deadline: None,
        }
    }

    /// Sets the job's input.
    #[must_use]
    pub fn with_input(mut self, input: Vec<i64>) -> JobSpec {
        self.input = input;
        self
    }

    /// Overrides the thread count for this job.
    #[must_use]
    pub fn with_threads(mut self, threads: u32) -> JobSpec {
        self.threads = Some(threads);
        self
    }

    /// Overrides the execution backend for this job.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> JobSpec {
        self.backend = Some(backend);
        self
    }

    /// Overrides the speculative commit mode for this job.
    #[must_use]
    pub fn with_spec_commit(mut self, mode: SpecCommitMode) -> JobSpec {
        self.spec_commit = Some(mode);
        self
    }

    /// Files this job under `tenant` for fair scheduling and quotas.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> JobSpec {
        self.tenant = Some(tenant.into());
        self
    }

    /// Sets the job's latency budget (see [`JobSpec::deadline`]).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> JobSpec {
        self.deadline = Some(deadline);
        self
    }
}

/// What one completed job produced.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's identifier.
    pub id: JobId,
    /// The tenant the job was filed under ([`DEFAULT_TENANT`] when the spec
    /// set none).
    pub tenant: String,
    /// The job's 0-based position in the session's *dequeue* order — the
    /// order the fair scheduler actually started jobs, which differs from
    /// submission order when deficit round robin interleaves tenants.
    pub sequence: u64,
    /// Content digest of the binary that ran (the artifact-cache key).
    pub binary_digest: u64,
    /// Content digest of the cached rewrite schedule the run used.
    pub schedule_digest: u64,
    /// Backend the job executed under (session default or per-job override).
    pub backend: BackendKind,
    /// Thread count the job executed with.
    pub threads: u32,
    /// Guest exit code.
    pub exit_code: i64,
    /// Modelled cycles of the run.
    pub cycles: u64,
    /// Integers written by the guest.
    pub output_ints: Vec<i64>,
    /// Floats written by the guest.
    pub output_floats: Vec<f64>,
    /// Digest of the final guest memory image — byte-identical to a serial
    /// run of the same binary and input.
    pub memory_digest: u64,
    /// Detailed execution statistics.
    pub stats: janus_dbm::DbmStats,
    /// Wall-clock nanoseconds from the start of artifact resolution (cache
    /// lookup, build for the building submission, gate wait for concurrent
    /// ones) through guest execution — the job's end-to-end service time on
    /// its worker.
    pub wall_nanos: u64,
}

/// One entry of [`ServeHandle::join`]'s result: the job and how it ended.
pub type JobOutcome = (JobId, Result<JobReport, ServeError>);

/// The session API: anything that can open a serving session. Implemented
/// for [`Janus`], so `janus.serve(config)` is the one entry point —
/// re-exported by the facade crate.
pub trait ServeSession {
    /// Opens a serving session: opens the persistent store when one is
    /// configured, spawns the worker pool and returns the handle jobs are
    /// submitted through.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when [`ServeConfig::store_dir`] is set but the
    /// directory cannot be created or read.
    fn try_serve(&self, config: ServeConfig) -> Result<ServeHandle, ServeError>;

    /// [`ServeSession::try_serve`], panicking on store-open failure.
    /// Infallible for purely in-memory sessions (`store_dir: None`).
    ///
    /// # Panics
    ///
    /// Panics when the configured persistent store cannot be opened.
    fn serve(&self, config: ServeConfig) -> ServeHandle {
        self.try_serve(config).expect("serving session starts")
    }
}

impl ServeSession for Janus {
    fn try_serve(&self, config: ServeConfig) -> Result<ServeHandle, ServeError> {
        ServeHandle::start(self.clone(), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_convert() {
        let e = ServeError::Saturated {
            in_flight: 9,
            limit: 8,
        };
        assert!(e.to_string().contains("9 in flight"));
        let e = ServeError::Build {
            digest: 0xabcd,
            reason: "no loops".into(),
        };
        assert!(e.to_string().contains("no loops"));
        let e: ServeError = DbmError::BadRule { reason: "x".into() }.into();
        assert!(matches!(e, ServeError::Execution(_)));
        assert!(ServeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        let e = ServeError::DeadlineUnmeetable {
            estimated_nanos: 2_000,
            budget_nanos: 1_000,
        };
        assert!(e.to_string().contains("exceeds budget 1000 ns"));
        let e = ServeError::TenantSaturated {
            tenant: "acme".into(),
            pending: 5,
            limit: 4,
        };
        assert!(e.to_string().contains("'acme'"));
        let e = ServeError::Store {
            reason: "read-only".into(),
        };
        assert!(e.to_string().contains("read-only"));
    }

    #[test]
    fn quota_lookup_falls_back_to_the_default() {
        let config = ServeConfig {
            default_quota: TenantQuota {
                quantum: 10,
                max_pending: 0,
            },
            tenant_quotas: vec![(
                "acme".into(),
                TenantQuota {
                    quantum: 300,
                    max_pending: 2,
                },
            )],
            ..ServeConfig::default()
        };
        assert_eq!(config.quota_for("acme").quantum, 300);
        assert_eq!(config.quota_for("acme").max_pending, 2);
        assert_eq!(config.quota_for(DEFAULT_TENANT).quantum, 10);
    }

    #[test]
    fn config_derives_the_in_flight_cap() {
        let config = ServeConfig::default();
        assert_eq!(
            config.effective_max_in_flight(),
            config.queue_depth + config.workers
        );
        let explicit = ServeConfig {
            max_in_flight: 17,
            ..ServeConfig::default()
        };
        assert_eq!(explicit.effective_max_in_flight(), 17);
    }

    #[test]
    fn stats_hit_rate_amortises_inflight_waits() {
        let stats = ServeStats {
            cache_hits: 6,
            cache_misses: 2,
            cache_inflight_waits: 2,
            ..ServeStats::default()
        };
        assert!((stats.cache_hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(ServeStats::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn job_spec_builders_set_overrides() {
        let mut asm = janus_ir::AsmBuilder::new();
        asm.label("main");
        asm.push(janus_ir::Inst::Halt);
        let binary = Arc::new(asm.finish_binary("main").unwrap());
        let job = JobSpec::new(binary)
            .with_input(vec![1, 2])
            .with_threads(2)
            .with_backend(BackendKind::NativeThreads)
            .with_spec_commit(SpecCommitMode::RacedImage);
        assert_eq!(job.input, vec![1, 2]);
        assert_eq!(job.threads, Some(2));
        assert_eq!(job.backend, Some(BackendKind::NativeThreads));
        assert_eq!(job.spec_commit, Some(SpecCommitMode::RacedImage));
    }
}
