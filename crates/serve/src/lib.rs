//! # janus-serve — the multi-tenant serving layer
//!
//! Janus front-loads static analysis into a compact rewrite schedule
//! precisely so the expensive part is done **once per binary** and the
//! dynamic modifier can reuse it on every run — yet driving the pipeline
//! through [`Janus::run`](janus_core::Janus::run) re-analyses, re-classifies
//! and re-schedules the guest on every invocation. This crate supplies the
//! subsystem that amortises that work across runs and executes many guest
//! invocations concurrently: a job runtime that accepts batches of guest
//! invocations (binary + input + per-job configuration), keyed by a content
//! digest of the `JBin`.
//!
//! ## Architecture
//!
//! * [`ArtifactCache`] — a **sharded, content-addressed store** mapping
//!   [`JBinary::content_digest`] to the binary's derived artifacts: the
//!   static analysis, the optional profile, the selected loops, the
//!   generated [`RewriteSchedule`](janus_core::PipelineArtifacts) and a
//!   [`PreparedDbm`](janus_core::PreparedDbm) ready to execute. Each digest
//!   is built **exactly once** under a per-key build gate: concurrent
//!   submissions of the same binary elect one builder and every other
//!   submitter blocks on the gate until the artifact is published (counted
//!   as `cache_inflight_waits`, not as extra builds). Entries are bounded by
//!   a per-shard LRU; hit/miss/in-flight/eviction counters surface in
//!   [`ServeStats`].
//! * [`ServeHandle`] — a **bounded job executor**: a pool of OS worker
//!   threads drains a submission queue, resolves each job's artifact through
//!   the cache and runs it via [`PreparedDbm::execute_with`](janus_core::PreparedDbm::execute_with)
//!   (fresh guest memory per run, so concurrent jobs never observe each
//!   other). Admission control caps the pending queue depth and the total
//!   number of in-flight jobs; saturated submissions fail fast with the
//!   typed [`ServeError::Saturated`] instead of queueing unboundedly.
//! * [`ServeSession`] — the session API on the `janus` facade:
//!   `janus.serve(ServeConfig)` returns a [`ServeHandle`] with
//!   [`submit`](ServeHandle::submit) / [`submit_batch`](ServeHandle::submit_batch)
//!   / [`join`](ServeHandle::join), so callers drive the serving layer
//!   without touching internals.
//!
//! ## The digest-keyed artifact lifecycle
//!
//! 1. A job arrives carrying an `Arc<JBinary>`; its
//!    [`content_digest`](janus_ir::JBinary::content_digest) (a stable FNV-1a
//!    hash of the serialised image) is the cache key.
//! 2. On the first submission of a digest, the executing worker becomes the
//!    *builder*: it runs the front half of the pipeline
//!    ([`Janus::prepare`](janus_core::Janus::prepare) — analysis, optional
//!    profiling on the configured training input, loop selection, schedule
//!    generation), loads the process and decodes the schedule into a
//!    [`PreparedDbm`](janus_core::PreparedDbm). Concurrent submissions of
//!    the same digest wait on the build gate; **exactly one analysis runs**.
//! 3. The published [`Artifact`] is immutable plain data behind an `Arc`;
//!    any number of jobs execute against it concurrently, each with a fresh
//!    guest image and per-job backend/thread overrides.
//! 4. When the cache exceeds its capacity bound, the least-recently-used
//!    artifact of the over-full shard is evicted; resubmitting that binary
//!    simply rebuilds it (a new miss).
//!
//! Guest results are independent of all of this: a job's outputs and final
//! memory digest are identical whether it ran through the serving layer, on
//! which worker, at which cache state, or serially through
//! [`PreparedDbm::execute`](janus_core::PreparedDbm::execute) — the
//! equivalence tests in `tests/serve.rs` pin exactly that.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use janus_core::Janus;
//! use janus_serve::{JobSpec, ServeConfig, ServeSession};
//! use janus_compile::{ast, Compiler};
//!
//! let program = ast::Program::builder("axpy")
//!     .global_f64("x", 512)
//!     .global_f64("y", 512)
//!     .function(ast::Function::new("main").local("i", ast::Ty::I64).body(vec![
//!         ast::Stmt::simple_for(
//!             "i",
//!             ast::Expr::const_i(0),
//!             ast::Expr::const_i(512),
//!             vec![ast::Stmt::assign(
//!                 ast::LValue::store("y", ast::Expr::var("i")),
//!                 ast::Expr::add(
//!                     ast::Expr::load("x", ast::Expr::var("i")),
//!                     ast::Expr::load("y", ast::Expr::var("i")),
//!                 ),
//!             )],
//!         ),
//!         ast::Stmt::print(ast::Expr::load("y", ast::Expr::const_i(100))),
//!     ]))
//!     .build();
//! let binary = Arc::new(Compiler::new().compile(&program).unwrap());
//!
//! let handle = Janus::new().serve(ServeConfig::default());
//! // Two submissions of the same binary: one analysis, one cache hit.
//! handle.submit(JobSpec::new(binary.clone())).unwrap();
//! handle.submit(JobSpec::new(binary)).unwrap();
//! let outcomes = handle.join();
//! assert_eq!(outcomes.len(), 2);
//! let stats = handle.stats();
//! assert_eq!(stats.cache_misses, 1);
//! assert_eq!(stats.cache_hits + stats.cache_inflight_waits, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod executor;

pub use cache::{Artifact, ArtifactCache};
pub use executor::ServeHandle;

use janus_core::{BackendKind, Janus, SpecCommitMode};
use janus_dbm::DbmError;
use janus_ir::JBinary;
use std::fmt;
use std::sync::Arc;

/// Configuration of one serving session ([`ServeSession::serve`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// OS worker threads draining the submission queue.
    pub workers: usize,
    /// Pending (queued, not yet running) jobs admitted before submissions
    /// fail with [`ServeError::Saturated`].
    pub queue_depth: usize,
    /// Cap on total in-flight jobs (pending + running). `0` means
    /// `queue_depth + workers` — the natural bound.
    pub max_in_flight: usize,
    /// Artifact-cache capacity in entries (distinct binaries). The bound is
    /// enforced per shard, so it is exact when `cache_shards == 1` and a
    /// high-water mark otherwise.
    pub cache_capacity: usize,
    /// Number of cache shards (lock-contention knob; each shard has its own
    /// mutex and LRU clock).
    pub cache_shards: usize,
    /// Training input used when the configured optimisation mode profiles a
    /// newly seen binary. One fixed input per session keeps artifacts a pure
    /// function of the binary digest.
    pub train_input: Vec<i64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 256,
            max_in_flight: 0,
            cache_capacity: 64,
            cache_shards: 8,
            train_input: Vec::new(),
        }
    }
}

impl ServeConfig {
    /// The effective in-flight cap: `max_in_flight`, defaulting to
    /// `queue_depth + workers` when 0.
    #[must_use]
    pub fn effective_max_in_flight(&self) -> usize {
        if self.max_in_flight == 0 {
            self.queue_depth + self.workers
        } else {
            self.max_in_flight
        }
    }
}

/// Errors raised by the serving layer.
///
/// `Clone` because one build failure is shared with every submission that
/// waited on the same in-progress build.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission control rejected the submission: the queue (or the
    /// in-flight cap) is full. Back off and resubmit.
    Saturated {
        /// In-flight jobs (pending + running) at rejection time.
        in_flight: usize,
        /// The limit that was hit.
        limit: usize,
    },
    /// Building the binary's artifacts (analysis, profiling, schedule
    /// generation or process load) failed.
    Build {
        /// Content digest of the failing binary.
        digest: u64,
        /// Human-readable cause.
        reason: String,
    },
    /// The job's guest execution failed.
    Execution(DbmError),
    /// The session is shutting down; no further submissions are accepted.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Saturated { in_flight, limit } => {
                write!(
                    f,
                    "serving queue saturated ({in_flight} in flight, limit {limit})"
                )
            }
            ServeError::Build { digest, reason } => {
                write!(
                    f,
                    "artifact build failed for binary {digest:#018x}: {reason}"
                )
            }
            ServeError::Execution(e) => write!(f, "job execution failed: {e}"),
            ServeError::ShuttingDown => write!(f, "serving session is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<DbmError> for ServeError {
    fn from(e: DbmError) -> Self {
        ServeError::Execution(e)
    }
}

/// Counters describing one serving session, snapshotted by
/// [`ServeHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Cache lookups served from a ready artifact.
    pub cache_hits: u64,
    /// Cache lookups that started a build — i.e. the number of analyses
    /// actually run. Concurrent submissions of one binary contribute 1 here.
    pub cache_misses: u64,
    /// Cache lookups that blocked on another submission's in-progress build
    /// of the same digest (amortised to zero extra analyses).
    pub cache_inflight_waits: u64,
    /// Artifacts evicted by the LRU capacity bound.
    pub cache_evictions: u64,
    /// Distinct artifacts currently resident.
    pub cache_entries: u64,
    /// Jobs accepted by admission control.
    pub jobs_submitted: u64,
    /// Jobs that finished (successfully or not).
    pub jobs_completed: u64,
    /// Jobs that finished with an error.
    pub jobs_failed: u64,
    /// Submissions rejected with [`ServeError::Saturated`].
    pub jobs_rejected: u64,
    /// Jobs currently queued, not yet picked up by a worker.
    pub jobs_pending: u64,
    /// Jobs currently executing on a worker.
    pub jobs_running: u64,
    /// High-water mark of in-flight jobs (pending + running).
    pub max_in_flight_seen: u64,
}

impl ServeStats {
    /// Fraction of cache lookups that did not build: hits plus in-flight
    /// waits over all lookups (0 when nothing was looked up).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let amortised = self.cache_hits + self.cache_inflight_waits;
        let total = amortised + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            amortised as f64 / total as f64
        }
    }
}

/// Identifier of one submitted job, unique within its session and ordered by
/// submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// One guest invocation submitted to the serving layer: the binary, its
/// input, and optional per-job overrides of the session configuration.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The guest binary. `Arc` so batches over the same binary share one
    /// allocation (the cache key is the content digest, not the pointer).
    pub binary: Arc<JBinary>,
    /// The binary's content digest, computed once in [`JobSpec::new`] —
    /// digesting re-serialises the whole binary, so batches should build
    /// one `JobSpec` per binary and [`Clone`] it per job rather than
    /// re-wrapping the `Arc` each time.
    pub binary_digest: u64,
    /// Simulated standard input for the run.
    pub input: Vec<i64>,
    /// Per-job override of the worker thread count for parallel loops.
    pub threads: Option<u32>,
    /// Per-job override of the execution backend.
    pub backend: Option<BackendKind>,
    /// Per-job override of the speculative commit mode (e.g.
    /// [`SpecCommitMode::RacedImage`] for jobs that do not consume modelled
    /// figures).
    pub spec_commit: Option<SpecCommitMode>,
}

impl JobSpec {
    /// A job running `binary` on an empty input with session defaults.
    /// Computes the binary's content digest here, once; clones share it.
    #[must_use]
    pub fn new(binary: Arc<JBinary>) -> JobSpec {
        let binary_digest = binary.content_digest();
        JobSpec {
            binary,
            binary_digest,
            input: Vec::new(),
            threads: None,
            backend: None,
            spec_commit: None,
        }
    }

    /// Sets the job's input.
    #[must_use]
    pub fn with_input(mut self, input: Vec<i64>) -> JobSpec {
        self.input = input;
        self
    }

    /// Overrides the thread count for this job.
    #[must_use]
    pub fn with_threads(mut self, threads: u32) -> JobSpec {
        self.threads = Some(threads);
        self
    }

    /// Overrides the execution backend for this job.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> JobSpec {
        self.backend = Some(backend);
        self
    }

    /// Overrides the speculative commit mode for this job.
    #[must_use]
    pub fn with_spec_commit(mut self, mode: SpecCommitMode) -> JobSpec {
        self.spec_commit = Some(mode);
        self
    }
}

/// What one completed job produced.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's identifier.
    pub id: JobId,
    /// Content digest of the binary that ran (the artifact-cache key).
    pub binary_digest: u64,
    /// Content digest of the cached rewrite schedule the run used.
    pub schedule_digest: u64,
    /// Backend the job executed under (session default or per-job override).
    pub backend: BackendKind,
    /// Thread count the job executed with.
    pub threads: u32,
    /// Guest exit code.
    pub exit_code: i64,
    /// Modelled cycles of the run.
    pub cycles: u64,
    /// Integers written by the guest.
    pub output_ints: Vec<i64>,
    /// Floats written by the guest.
    pub output_floats: Vec<f64>,
    /// Digest of the final guest memory image — byte-identical to a serial
    /// run of the same binary and input.
    pub memory_digest: u64,
    /// Detailed execution statistics.
    pub stats: janus_dbm::DbmStats,
    /// Wall-clock nanoseconds from the start of artifact resolution (cache
    /// lookup, build for the building submission, gate wait for concurrent
    /// ones) through guest execution — the job's end-to-end service time on
    /// its worker.
    pub wall_nanos: u64,
}

/// One entry of [`ServeHandle::join`]'s result: the job and how it ended.
pub type JobOutcome = (JobId, Result<JobReport, ServeError>);

/// The session API: anything that can open a serving session. Implemented
/// for [`Janus`], so `janus.serve(config)` is the one entry point —
/// re-exported by the facade crate.
pub trait ServeSession {
    /// Opens a serving session: spawns the worker pool and returns the
    /// handle jobs are submitted through.
    fn serve(&self, config: ServeConfig) -> ServeHandle;
}

impl ServeSession for Janus {
    fn serve(&self, config: ServeConfig) -> ServeHandle {
        ServeHandle::start(self.clone(), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_convert() {
        let e = ServeError::Saturated {
            in_flight: 9,
            limit: 8,
        };
        assert!(e.to_string().contains("9 in flight"));
        let e = ServeError::Build {
            digest: 0xabcd,
            reason: "no loops".into(),
        };
        assert!(e.to_string().contains("no loops"));
        let e: ServeError = DbmError::BadRule { reason: "x".into() }.into();
        assert!(matches!(e, ServeError::Execution(_)));
        assert!(ServeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
    }

    #[test]
    fn config_derives_the_in_flight_cap() {
        let config = ServeConfig::default();
        assert_eq!(
            config.effective_max_in_flight(),
            config.queue_depth + config.workers
        );
        let explicit = ServeConfig {
            max_in_flight: 17,
            ..ServeConfig::default()
        };
        assert_eq!(explicit.effective_max_in_flight(), 17);
    }

    #[test]
    fn stats_hit_rate_amortises_inflight_waits() {
        let stats = ServeStats {
            cache_hits: 6,
            cache_misses: 2,
            cache_inflight_waits: 2,
            ..ServeStats::default()
        };
        assert!((stats.cache_hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(ServeStats::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn job_spec_builders_set_overrides() {
        let mut asm = janus_ir::AsmBuilder::new();
        asm.label("main");
        asm.push(janus_ir::Inst::Halt);
        let binary = Arc::new(asm.finish_binary("main").unwrap());
        let job = JobSpec::new(binary)
            .with_input(vec![1, 2])
            .with_threads(2)
            .with_backend(BackendKind::NativeThreads)
            .with_spec_commit(SpecCommitMode::RacedImage);
        assert_eq!(job.input, vec![1, 2]);
        assert_eq!(job.threads, Some(2));
        assert_eq!(job.backend, Some(BackendKind::NativeThreads));
        assert_eq!(job.spec_commit, Some(SpecCommitMode::RacedImage));
    }
}
