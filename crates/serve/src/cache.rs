//! The content-addressed artifact cache: binary digest → analysed loops,
//! rewrite schedule and a prepared DBM, built exactly once per digest under
//! a per-key build gate and bounded by a per-shard LRU — optionally layered
//! over a persistent [`ArtifactStore`] disk tier, probed on every memory
//! miss before the pipeline is re-run.

use crate::metrics::CacheMeter;
use crate::store::ArtifactStore;
use crate::ServeError;
use janus_core::{PipelineArtifacts, PreparedDbm};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Everything the serving layer derives from one binary, cached behind its
/// content digest: the front half of the pipeline
/// ([`PipelineArtifacts`]: analysis, optional profile, selected loops,
/// rewrite schedule) plus the [`PreparedDbm`] that executes jobs against the
/// cached schedule. Immutable plain data — share it with `Arc` and execute
/// from any number of threads.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The binary's content digest (the cache key).
    pub digest: u64,
    /// Content digest of the generated rewrite schedule, precomputed so job
    /// reports can name the schedule without serialising it again.
    pub schedule_digest: u64,
    /// The pipeline's cached front half.
    pub pipeline: PipelineArtifacts,
    /// The schedule decoded and the process loaded, ready to execute.
    pub prepared: PreparedDbm,
}

impl Artifact {
    /// Builds the cache entry wrapper for a prepared pipeline.
    #[must_use]
    pub fn new(pipeline: PipelineArtifacts, prepared: PreparedDbm) -> Artifact {
        Artifact {
            digest: pipeline.binary_digest,
            schedule_digest: pipeline.schedule.content_digest(),
            pipeline,
            prepared,
        }
    }
}

/// A ready artifact or the gate of an in-progress build.
enum Slot {
    Ready {
        artifact: Arc<Artifact>,
        last_used: u64,
    },
    Building(Arc<Gate>),
}

/// The per-key build gate: the builder publishes the (shared) result here
/// and wakes every submission that arrived while the build was in flight.
#[derive(Default)]
struct Gate {
    result: Mutex<Option<Result<Arc<Artifact>, ServeError>>>,
    ready: Condvar,
}

/// One shard: its own lock, slot map and LRU clock.
#[derive(Default)]
struct Shard {
    slots: HashMap<u64, Slot>,
    clock: u64,
}

impl Shard {
    fn ready_len(&self) -> usize {
        self.slots
            .iter()
            .filter(|(_, s)| matches!(s, Slot::Ready { .. }))
            .count()
    }
}

/// What a lookup found under the shard lock.
enum Claim {
    Hit(Arc<Artifact>),
    Wait(Arc<Gate>),
    Build(Arc<Gate>),
}

/// A sharded, content-addressed, LRU-bounded store of [`Artifact`]s.
///
/// * **Content-addressed**: keys are [`janus_ir::JBinary::content_digest`]
///   values, so byte-identical binaries share one entry regardless of who
///   submitted them.
/// * **Build-once**: concurrent [`ArtifactCache::get_or_build`] calls for
///   one digest elect exactly one builder; the rest block on the build gate
///   and share the published result (or its error). The expensive builder
///   closure always runs outside every shard lock.
/// * **Bounded**: each shard holds at most `ceil(capacity / shards)` ready
///   artifacts; inserting beyond that evicts the shard's least-recently-used
///   entry. In-progress builds are never evicted.
/// * **Optionally two-tier**: constructed with
///   [`ArtifactCache::with_disk_store`], a memory miss probes the
///   persistent [`ArtifactStore`] first — a disk hit *hydrates* (process
///   load + schedule decode, no pipeline rebuild) and only a disk miss
///   runs the build closure, whose result is then persisted. `misses()`
///   therefore keeps meaning "analyses actually run".
pub struct ArtifactCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    store: Option<Arc<ArtifactStore>>,
    /// Pipeline-config fingerprint stamped on (and required of) disk
    /// entries, so sessions with different configurations sharing one
    /// store directory never serve each other's schedules.
    fingerprint: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    inflight_waits: AtomicU64,
    evictions: AtomicU64,
    /// Registry handles mirroring the counters above; detached (metering
    /// into nowhere, same cost) unless a serving session installed its own
    /// via [`ArtifactCache::set_meter`].
    meter: CacheMeter,
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl ArtifactCache {
    /// A cache bounded to `capacity` entries over 8 shards.
    #[must_use]
    pub fn new(capacity: usize) -> ArtifactCache {
        ArtifactCache::with_shards(capacity, 8)
    }

    /// A cache bounded to `capacity` entries over `shards` shards. The
    /// capacity bound is enforced per shard (`ceil(capacity / shards)`
    /// each), so it is exact for one shard and a high-water mark otherwise.
    #[must_use]
    pub fn with_shards(capacity: usize, shards: usize) -> ArtifactCache {
        let shards = shards.max(1);
        let capacity_per_shard = capacity.max(1).div_ceil(shards);
        ArtifactCache {
            shards: (0..shards).map(|_| Mutex::default()).collect(),
            capacity_per_shard,
            store: None,
            fingerprint: 0,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inflight_waits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            meter: CacheMeter::default(),
        }
    }

    /// Installs the registry handles the cache's counters mirror into.
    pub(crate) fn set_meter(&mut self, meter: CacheMeter) {
        self.meter = meter;
    }

    /// A two-tier cache: the in-memory tier of [`ArtifactCache::with_shards`]
    /// layered over the persistent `store`. `fingerprint` identifies the
    /// session's pipeline configuration; only disk entries written under the
    /// same fingerprint are loaded (see [`ArtifactStore::load`]).
    #[must_use]
    pub fn with_disk_store(
        capacity: usize,
        shards: usize,
        store: Arc<ArtifactStore>,
        fingerprint: u64,
    ) -> ArtifactCache {
        let mut cache = ArtifactCache::with_shards(capacity, shards);
        cache.store = Some(store);
        cache.fingerprint = fingerprint;
        cache
    }

    /// The persistent disk tier, when one is configured.
    #[must_use]
    pub fn disk_store(&self) -> Option<&ArtifactStore> {
        self.store.as_deref()
    }

    fn shard(&self, digest: u64) -> &Mutex<Shard> {
        // Mix the high half in so digests landing in few shards need a
        // correlated *64-bit* pattern, then index.
        let mixed = digest ^ (digest >> 32);
        &self.shards[(mixed % self.shards.len() as u64) as usize]
    }

    /// Returns the artifact for `digest`. A memory miss elects this call
    /// the builder: it first probes the disk store (when configured) and
    /// *hydrates* a persisted pipeline through `hydrate` — no analysis —
    /// and only on a disk miss runs `build`, the full pipeline, persisting
    /// the result for future processes. Safe to call concurrently from any
    /// number of threads: one build per digest, everyone shares the result.
    /// A failed build is not cached — the error is delivered to the builder
    /// and every waiter, and the next submission retries.
    ///
    /// `misses()` counts only `build` runs (analyses actually executed);
    /// disk hits are counted by the store.
    ///
    /// # Errors
    ///
    /// Propagates the builder's (or hydrator's) error, shared verbatim with
    /// concurrent waiters of the same build.
    ///
    /// # Panics
    ///
    /// Panics if a previous builder panicked while holding the gate
    /// (poisoned internal lock).
    pub fn get_or_build<H, F>(
        &self,
        digest: u64,
        hydrate: H,
        build: F,
    ) -> Result<Arc<Artifact>, ServeError>
    where
        H: FnOnce(PipelineArtifacts) -> Result<Artifact, ServeError>,
        F: FnOnce() -> Result<Artifact, ServeError>,
    {
        let claim = {
            let mut shard = self.shard(digest).lock().expect("cache shard poisoned");
            shard.clock += 1;
            let now = shard.clock;
            match shard.slots.get_mut(&digest) {
                Some(Slot::Ready {
                    artifact,
                    last_used,
                }) => {
                    *last_used = now;
                    Claim::Hit(artifact.clone())
                }
                Some(Slot::Building(gate)) => Claim::Wait(gate.clone()),
                None => {
                    let gate = Arc::new(Gate::default());
                    shard.slots.insert(digest, Slot::Building(gate.clone()));
                    Claim::Build(gate)
                }
            }
        };

        match claim {
            Claim::Hit(artifact) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.meter.hits.inc();
                Ok(artifact)
            }
            Claim::Wait(gate) => {
                self.inflight_waits.fetch_add(1, Ordering::Relaxed);
                self.meter.inflight_waits.inc();
                let mut result = gate.result.lock().expect("build gate poisoned");
                while result.is_none() {
                    result = gate.ready.wait(result).expect("build gate poisoned");
                }
                result.clone().expect("checked above")
            }
            Claim::Build(gate) => {
                // The expensive part — disk probe and hydration, or
                // analysis, profiling, schedule generation and process
                // load — runs with no lock held.
                let disk = self
                    .store
                    .as_ref()
                    .and_then(|store| store.load(digest, self.fingerprint));
                let built = match disk {
                    Some(pipeline) => hydrate(pipeline),
                    None => {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        self.meter.misses.inc();
                        let built = build();
                        if let (Ok(artifact), Some(store)) = (&built, &self.store) {
                            store.store(&artifact.pipeline, self.fingerprint);
                        }
                        built
                    }
                }
                .map(Arc::new);
                {
                    let mut shard = self.shard(digest).lock().expect("cache shard poisoned");
                    match &built {
                        Ok(artifact) => {
                            shard.clock += 1;
                            let now = shard.clock;
                            shard.slots.insert(
                                digest,
                                Slot::Ready {
                                    artifact: artifact.clone(),
                                    last_used: now,
                                },
                            );
                            self.evict_over_capacity(&mut shard);
                        }
                        Err(_) => {
                            // Do not cache failures; the next submission
                            // retries the build.
                            shard.slots.remove(&digest);
                        }
                    }
                }
                let mut result = gate.result.lock().expect("build gate poisoned");
                *result = Some(built.clone());
                gate.ready.notify_all();
                built
            }
        }
    }

    /// Evicts least-recently-used ready entries until the shard is within
    /// its capacity. In-progress builds never count and are never evicted.
    fn evict_over_capacity(&self, shard: &mut Shard) {
        while shard.ready_len() > self.capacity_per_shard {
            let victim = shard
                .slots
                .iter()
                .filter_map(|(digest, slot)| match slot {
                    Slot::Ready { last_used, .. } => Some((*last_used, *digest)),
                    Slot::Building(_) => None,
                })
                .min()
                .map(|(_, digest)| digest);
            let Some(victim) = victim else { break };
            shard.slots.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.meter.evictions.inc();
        }
    }

    /// Ready artifacts currently resident (in-progress builds excluded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").ready_len())
            .sum()
    }

    /// Returns `true` when no artifact is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from a ready artifact.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that started a build (the number of analyses actually run).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups that blocked on another thread's in-progress build.
    #[must_use]
    pub fn inflight_waits(&self) -> u64 {
        self.inflight_waits.load(Ordering::Relaxed)
    }

    /// Entries evicted by the LRU capacity bound.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::Janus;
    use janus_vm::Process;
    use std::sync::atomic::AtomicUsize;

    /// Hydrate closure for storeless caches: the disk tier is absent, so
    /// the cache can never call it.
    fn no_hydrate(_: PipelineArtifacts) -> Result<Artifact, ServeError> {
        unreachable!("no disk store configured")
    }

    /// A tiny real artifact (the cache stores whatever the builder returns;
    /// these tests only need distinct digests, so one shared pipeline result
    /// rebadged per key is enough).
    fn test_artifact(digest: u64) -> Artifact {
        use janus_ir::{AsmBuilder, Inst};
        let mut asm = AsmBuilder::new();
        asm.label("main");
        asm.push(Inst::Halt);
        let binary = asm.finish_binary("main").unwrap();
        let janus = Janus::new();
        let mut pipeline = janus.prepare(&binary, &[]).unwrap();
        pipeline.binary_digest = digest;
        let prepared = PreparedDbm::new(
            Process::load(&binary).unwrap(),
            &pipeline.schedule,
            janus.dbm_config(),
        );
        Artifact::new(pipeline, prepared)
    }

    #[test]
    fn second_lookup_hits_and_reuses_the_artifact() {
        let cache = ArtifactCache::new(8);
        let builds = AtomicUsize::new(0);
        for _ in 0..3 {
            let artifact = cache
                .get_or_build(42, no_hydrate, || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    Ok(test_artifact(42))
                })
                .unwrap();
            assert_eq!(artifact.digest, 42);
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_lookups_of_one_digest_build_exactly_once() {
        let cache = ArtifactCache::new(8);
        let builds = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let artifact = cache
                        .get_or_build(7, no_hydrate, || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so waiters actually pile
                            // onto the gate.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(test_artifact(7))
                        })
                        .unwrap();
                    assert_eq!(artifact.digest, 7);
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one build");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits() + cache.inflight_waits(), 7);
    }

    #[test]
    fn lru_bound_evicts_the_least_recently_used_entry() {
        // One shard so the bound is exact and the LRU order observable.
        let cache = ArtifactCache::with_shards(2, 1);
        let build_count = AtomicUsize::new(0);
        let build = |digest: u64| {
            let _ = build_count.fetch_add(1, Ordering::SeqCst);
            Ok(test_artifact(digest))
        };
        cache.get_or_build(1, no_hydrate, || build(1)).unwrap();
        cache.get_or_build(2, no_hydrate, || build(2)).unwrap();
        // Touch 1 so 2 becomes the LRU victim when 3 arrives.
        cache.get_or_build(1, no_hydrate, || build(1)).unwrap();
        cache.get_or_build(3, no_hydrate, || build(3)).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // 1 and 3 are resident, 2 was evicted and rebuilds.
        cache.get_or_build(1, no_hydrate, || build(1)).unwrap();
        cache.get_or_build(3, no_hydrate, || build(3)).unwrap();
        assert_eq!(build_count.load(Ordering::SeqCst), 3, "1 and 3 still hot");
        cache.get_or_build(2, no_hydrate, || build(2)).unwrap();
        assert_eq!(build_count.load(Ordering::SeqCst), 4, "2 was evicted");
        assert_eq!(cache.evictions(), 2, "rebuilding 2 evicted the next LRU");
    }

    #[test]
    fn build_failures_are_shared_but_not_cached() {
        let cache = ArtifactCache::new(8);
        let err = cache
            .get_or_build(9, no_hydrate, || {
                Err(ServeError::Build {
                    digest: 9,
                    reason: "no loops".into(),
                })
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::Build { digest: 9, .. }));
        assert!(cache.is_empty(), "failures are not cached");
        // The next submission retries and can succeed.
        let artifact = cache
            .get_or_build(9, no_hydrate, || Ok(test_artifact(9)))
            .unwrap();
        assert_eq!(artifact.digest, 9);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn disk_tier_hydrates_without_rebuilding() {
        use janus_ir::{AsmBuilder, Inst};
        let dir =
            std::env::temp_dir().join(format!("janus-cache-disk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut asm = AsmBuilder::new();
        asm.label("main");
        asm.push(Inst::Halt);
        let binary = asm.finish_binary("main").unwrap();
        let digest = binary.content_digest();
        let janus = Janus::new();
        let hydrate = |pipeline: PipelineArtifacts| {
            let prepared = PreparedDbm::new(
                Process::load(&binary).unwrap(),
                &pipeline.schedule,
                janus.dbm_config(),
            );
            Ok(Artifact::new(pipeline, prepared))
        };
        let store = Arc::new(ArtifactStore::open(&dir, 0).unwrap());

        // Cold session: disk miss, one analysis, entry persisted.
        let cold = ArtifactCache::with_disk_store(8, 1, store.clone(), 5);
        cold.get_or_build(digest, hydrate, || {
            let pipeline = janus.prepare(&binary, &[]).unwrap();
            let prepared = PreparedDbm::new(
                Process::load(&binary).unwrap(),
                &pipeline.schedule,
                janus.dbm_config(),
            );
            Ok(Artifact::new(pipeline, prepared))
        })
        .unwrap();
        assert_eq!(cold.misses(), 1);
        assert_eq!(store.hits(), 0);
        assert_eq!(store.entries(), 1, "built artifact was persisted");

        // Warm session over the same store: hydrated from disk, no build.
        let warm = ArtifactCache::with_disk_store(8, 1, store.clone(), 5);
        let artifact = warm
            .get_or_build(digest, hydrate, || unreachable!("must hydrate from disk"))
            .unwrap();
        assert_eq!(artifact.digest, digest);
        assert_eq!(warm.misses(), 0, "no analysis ran");
        assert_eq!(store.hits(), 1);

        // A different fingerprint does not see the entry and rebuilds.
        let other = ArtifactCache::with_disk_store(8, 1, store.clone(), 6);
        other
            .get_or_build(digest, hydrate, || {
                let pipeline = janus.prepare(&binary, &[]).unwrap();
                let prepared = PreparedDbm::new(
                    Process::load(&binary).unwrap(),
                    &pipeline.schedule,
                    janus.dbm_config(),
                );
                Ok(Artifact::new(pipeline, prepared))
            })
            .unwrap();
        assert_eq!(other.misses(), 1, "foreign fingerprint is a disk miss");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
