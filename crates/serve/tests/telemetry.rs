//! End-to-end telemetry battery: a real serving session with a live
//! telemetry endpoint on an ephemeral port, scraped over raw `TcpStream`s
//! (no HTTP client dependency — the wire format is part of the contract).
//!
//! Pins the acceptance bar of the observability PR:
//!
//! * `/metrics` is a parseable Prometheus exposition whose counters
//!   reconcile **exactly** with the session's own `ServeStats` snapshot
//!   (the session meters into a dedicated registry so nothing else in the
//!   process can perturb the numbers);
//! * `/healthz` answers liveness, `/statusz` is valid JSON mirroring the
//!   stats and per-tenant queues, `/tracez` serves the Chrome trace when
//!   tracing is on and 404s when it is not;
//! * concurrent scrapes during a running batch never fail, wedge the
//!   session, or corrupt a response.

use janus_compile::{CompileOptions, Compiler};
use janus_core::{BackendKind, Janus, JanusConfig};
use janus_ir::JBinary;
use janus_obs::metrics::{parse_exposition, Registry};
use janus_serve::{JobSpec, ServeConfig, ServeSession};
use janus_workloads::workload;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn train_binary(name: &str) -> Arc<JBinary> {
    let w = workload(name).expect("known workload");
    Arc::new(
        Compiler::with_options(CompileOptions::gcc_o3())
            .compile(&w.train_program)
            .expect("workload compiles"),
    )
}

fn session_janus() -> Janus {
    Janus::with_config(JanusConfig {
        threads: 4,
        backend: BackendKind::from_env(),
        ..JanusConfig::default()
    })
}

/// One blocking HTTP/1.0 GET over a raw socket; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("telemetry endpoint accepts");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: janus\r\n\r\n").expect("request writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response reads");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line has a code")
        .parse()
        .expect("numeric status");
    let content_length: Option<usize> = head.lines().find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.eq_ignore_ascii_case("content-length")
            .then(|| v.trim().parse().ok())?
    });
    if let Some(len) = content_length {
        assert_eq!(body.len(), len, "Content-Length matches the body");
    }
    (status, body.to_string())
}

#[test]
fn scraped_metrics_reconcile_exactly_with_serve_stats() {
    let binary = train_binary("429.mcf");
    let janus = session_janus();
    // A dedicated registry isolates this session's families from the
    // process-global ones (other tests, the DBM's meters), so every
    // counter below must match ServeStats to the digit.
    let registry = Registry::new();
    let handle = janus.serve(ServeConfig {
        workers: 2,
        metrics: Some(registry.clone()),
        telemetry_addr: Some("127.0.0.1:0".to_string()),
        trace: janus_obs::Recorder::enabled(),
        ..ServeConfig::default()
    });
    let addr = handle.telemetry_addr().expect("endpoint is live");

    // A mixed multi-tenant batch: repeats (cache hits), two tenants, and a
    // generous deadline that every job will hit.
    for i in 0..6 {
        let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
        let job = JobSpec::new(binary.clone())
            .with_tenant(tenant)
            .with_deadline(Duration::from_secs(600));
        handle.submit(job).unwrap();
    }
    let outcomes = handle.join();
    assert_eq!(outcomes.len(), 6);
    assert!(outcomes.iter().all(|(_, r)| r.is_ok()));

    let stats = handle.stats();
    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    let doc = parse_exposition(&body).expect("exposition parses");

    let value = |name: &str| {
        doc.value(name, &[])
            .unwrap_or_else(|| panic!("series {name} present\n{body}"))
    };
    assert_eq!(value("janus_serve_jobs_submitted_total"), 6.0);
    assert_eq!(
        value("janus_serve_jobs_completed_total"),
        stats.jobs_completed as f64
    );
    assert_eq!(
        value("janus_serve_jobs_failed_total"),
        stats.jobs_failed as f64
    );
    assert_eq!(
        value("janus_serve_cache_hits_total"),
        stats.cache_hits as f64
    );
    assert_eq!(
        value("janus_serve_cache_misses_total"),
        stats.cache_misses as f64
    );
    assert_eq!(
        value("janus_serve_cache_inflight_waits_total"),
        stats.cache_inflight_waits as f64
    );
    assert_eq!(
        value("janus_serve_deadline_hit_total"),
        stats.jobs_deadline_hit as f64
    );
    assert_eq!(
        value("janus_serve_deadline_missed_total"),
        stats.jobs_deadline_missed as f64
    );
    assert_eq!(stats.jobs_deadline_hit, 6, "every deadline was generous");
    // The wall histogram saw exactly the successful completions.
    assert_eq!(
        value("janus_serve_job_wall_nanos_count"),
        (stats.jobs_completed - stats.jobs_failed) as f64
    );
    // Per-tenant families carry the tenant label.
    assert_eq!(
        doc.value("janus_serve_tenant_served_total", &[("tenant", "alpha")]),
        Some(3.0)
    );
    assert_eq!(
        doc.value("janus_serve_tenant_served_total", &[("tenant", "beta")]),
        Some(3.0)
    );
    // Gauges were refreshed by the scrape: the drained queue reads 0 and
    // the cache holds the one artifact.
    assert_eq!(value("janus_serve_queue_depth"), 0.0);
    assert_eq!(
        value("janus_serve_cache_entries"),
        stats.cache_entries as f64
    );
    // Process self-metrics ride along on the same page.
    assert!(value("janus_process_uptime_seconds") >= 0.0);
    assert!(doc.families.contains_key("janus_process_rss_bytes"));

    // /healthz: alive and unsaturated.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.starts_with("ok"), "healthy session: {body}");

    // /statusz: valid JSON whose counters mirror ServeStats and whose
    // tenant array carries both tenants' ledgers.
    let (status, body) = http_get(addr, "/statusz");
    assert_eq!(status, 200);
    let doc = janus_obs::json::parse(&body).expect("statusz is valid JSON");
    let jobs = doc.get("jobs").expect("jobs object");
    assert_eq!(
        jobs.get("completed").and_then(|v| v.as_f64()),
        Some(stats.jobs_completed as f64)
    );
    assert_eq!(
        jobs.get("deadline_hit").and_then(|v| v.as_f64()),
        Some(stats.jobs_deadline_hit as f64)
    );
    assert_eq!(
        doc.get("deadline_attainment").and_then(|v| v.as_f64()),
        Some(1.0)
    );
    let tenants = doc
        .get("tenants")
        .and_then(|v| v.as_array())
        .expect("tenants array");
    assert_eq!(tenants.len(), 2, "alpha and beta: {body}");
    let names: Vec<&str> = tenants
        .iter()
        .filter_map(|t| t.get("tenant")?.as_str())
        .collect();
    assert_eq!(names, ["alpha", "beta"], "sorted by tenant name");
    for t in tenants {
        assert_eq!(t.get("served").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(t.get("deadline_hit").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(t.get("pending").and_then(|v| v.as_f64()), Some(0.0));
    }

    // /tracez: the session was traced, so a Chrome trace comes back.
    let (status, body) = http_get(addr, "/tracez");
    assert_eq!(status, 200);
    let trace = janus_obs::json::parse(&body).expect("tracez is valid JSON");
    assert!(trace.get("traceEvents").is_some());

    // Unknown paths 404; the endpoint dies with the session.
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);
    let _ = handle.shutdown();
    assert!(
        TcpStream::connect(addr).is_err() || {
            // A TIME_WAIT accept can still connect; a read must yield EOF.
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let _ = write!(s, "GET /healthz HTTP/1.0\r\n\r\n");
            let mut buf = String::new();
            s.read_to_string(&mut buf).map(|n| n == 0).unwrap_or(true)
        },
        "endpoint stopped with the session"
    );
}

#[test]
fn untraced_sessions_answer_tracez_with_404() {
    let janus = session_janus();
    let handle = janus.serve(ServeConfig {
        workers: 1,
        metrics: Some(Registry::new()),
        telemetry_addr: Some("127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    });
    let addr = handle.telemetry_addr().expect("endpoint is live");
    let (status, _) = http_get(addr, "/tracez");
    assert_eq!(status, 404);
    // Non-GET methods are refused, and the connection is answered (not
    // dropped) so clients see the verdict.
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.0 405"), "{raw}");
}

#[test]
fn concurrent_scrapes_under_load_never_fail() {
    let binary = train_binary("470.lbm");
    let janus = session_janus();
    let handle = janus.serve(ServeConfig {
        workers: 2,
        metrics: Some(Registry::new()),
        telemetry_addr: Some("127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    });
    let addr = handle.telemetry_addr().expect("endpoint is live");

    // Scrapers hammer every endpoint while jobs are being submitted and
    // executed; every response must be complete and well-formed.
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                for _ in 0..10 {
                    let (status, body) = http_get(addr, "/metrics");
                    assert_eq!(status, 200);
                    parse_exposition(&body).expect("mid-load exposition parses");
                    let (status, _) = http_get(addr, "/healthz");
                    assert_eq!(status, 200);
                    let (status, body) = http_get(addr, "/statusz");
                    assert_eq!(status, 200);
                    janus_obs::json::parse(&body).expect("mid-load statusz parses");
                }
            });
        }
        scope.spawn(|| {
            for _ in 0..8 {
                handle.submit(JobSpec::new(binary.clone())).unwrap();
            }
        });
    });
    let outcomes = handle.join();
    assert_eq!(outcomes.len(), 8);
    assert!(outcomes.iter().all(|(_, r)| r.is_ok()));

    // After the dust settles the scrape agrees with the final stats.
    let stats = handle.stats();
    let (_, body) = http_get(addr, "/metrics");
    let doc = parse_exposition(&body).expect("final exposition parses");
    assert_eq!(
        doc.value("janus_serve_jobs_completed_total", &[]),
        Some(stats.jobs_completed as f64)
    );
}
