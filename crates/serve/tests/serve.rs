//! End-to-end serving-layer battery.
//!
//! Pins the acceptance bar of the serving subsystem:
//!
//! * submitting the same `JBin` N times (from N threads) performs exactly
//!   one analysis/schedule build, asserted via the `ServeStats` hit/miss
//!   counters, and every result is identical to a serial run;
//! * a 4-worker mixed batch over the full workload suite (parallel and
//!   speculative benchmarks, both backends as per-job overrides) produces
//!   outputs and memory digests identical to running each job serially;
//! * admission control rejects with the typed `ServeError::Saturated`.

use janus_compile::{CompileOptions, Compiler};
use janus_core::{BackendKind, Janus, JanusConfig, PreparedDbm};
use janus_dbm::DbmRunResult;
use janus_ir::JBinary;
use janus_serve::{JobSpec, ServeConfig, ServeSession};
use janus_vm::Process;
use janus_workloads::{parallel_benchmarks, speculative_benchmarks, workload};
use std::sync::Arc;

fn train_binary(name: &str) -> Arc<JBinary> {
    let w = workload(name).expect("known workload");
    Arc::new(
        Compiler::with_options(CompileOptions::gcc_o3())
            .compile(&w.train_program)
            .expect("workload compiles"),
    )
}

fn session_janus(backend: BackendKind) -> Janus {
    Janus::with_config(JanusConfig {
        threads: 4,
        backend,
        ..JanusConfig::default()
    })
}

/// The serial reference: the same cached-artifact path, driven inline with
/// no pool, no cache and no concurrency.
fn serial_run(janus: &Janus, binary: &JBinary, input: &[i64]) -> DbmRunResult {
    let artifacts = janus.prepare(binary, &[]).expect("pipeline prepares");
    let prepared = PreparedDbm::new(
        Process::load(binary).expect("loads"),
        &artifacts.schedule,
        janus.dbm_config(),
    );
    prepared.execute(input).expect("serial run succeeds")
}

#[test]
fn concurrent_submissions_of_one_binary_analyse_exactly_once() {
    const SUBMITTERS: usize = 8;
    let binary = train_binary("470.lbm");
    let janus = session_janus(BackendKind::from_env());
    let reference = serial_run(&janus, &binary, &[]);

    let handle = janus.serve(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });
    // N racing submitters, not one loop: the per-key build gate must elect
    // exactly one builder under real contention.
    std::thread::scope(|scope| {
        for _ in 0..SUBMITTERS {
            scope.spawn(|| handle.submit(JobSpec::new(binary.clone())).unwrap());
        }
    });
    let outcomes = handle.join();
    assert_eq!(outcomes.len(), SUBMITTERS);
    for (id, outcome) in &outcomes {
        let report = outcome.as_ref().unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(report.binary_digest, binary.content_digest());
        assert_eq!(report.memory_digest, reference.memory_digest, "{id}");
        assert_eq!(report.output_ints, reference.output_ints, "{id}");
        assert_eq!(report.output_floats, reference.output_floats, "{id}");
        assert_eq!(report.exit_code, reference.exit_code, "{id}");
    }

    let stats = handle.stats();
    assert_eq!(stats.cache_misses, 1, "exactly one analysis ran: {stats:?}");
    assert_eq!(
        stats.cache_hits + stats.cache_inflight_waits,
        (SUBMITTERS - 1) as u64,
        "every other submission reused the build: {stats:?}"
    );
    assert_eq!(stats.jobs_submitted, SUBMITTERS as u64);
    assert_eq!(stats.jobs_completed, SUBMITTERS as u64);
    assert_eq!(stats.jobs_failed, 0);
    assert_eq!(stats.cache_entries, 1);
}

#[test]
fn mixed_batch_over_the_suite_matches_serial_runs() {
    // The full parallel + speculative workload suite, each submitted twice
    // (cache hit on the second), driven by 4 workers — including per-job
    // backend overrides, so virtual-time and native-threads jobs interleave
    // in one session.
    let janus = session_janus(BackendKind::VirtualTime);
    let handle = janus.serve(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });

    let names: Vec<&str> = parallel_benchmarks()
        .into_iter()
        .chain(speculative_benchmarks())
        .collect();
    let mut expected = Vec::new();
    let mut submitted = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let binary = train_binary(name);
        let reference = serial_run(&janus, &binary, &[]);
        for job in 0..2 {
            // Alternate the execution backend per job: guest results must be
            // identical wherever and however the job runs.
            let backend = if (i + job) % 2 == 0 {
                BackendKind::VirtualTime
            } else {
                BackendKind::NativeThreads
            };
            let id = handle
                .submit(JobSpec::new(binary.clone()).with_backend(backend))
                .unwrap();
            submitted.push((id, *name));
            expected.push((id, reference.clone()));
        }
    }

    let outcomes = handle.join();
    assert_eq!(outcomes.len(), expected.len());
    for (((id, outcome), (expect_id, reference)), (_, name)) in
        outcomes.iter().zip(&expected).zip(&submitted)
    {
        assert_eq!(id, expect_id, "join returns outcomes in submission order");
        let report = outcome.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            report.memory_digest, reference.memory_digest,
            "{name}: served memory image diverged from the serial run"
        );
        assert_eq!(report.output_ints, reference.output_ints, "{name}");
        assert_eq!(report.output_floats, reference.output_floats, "{name}");
        assert_eq!(report.exit_code, reference.exit_code, "{name}");
    }

    let stats = handle.stats();
    assert_eq!(
        stats.cache_misses,
        names.len() as u64,
        "one build per distinct binary: {stats:?}"
    );
    assert_eq!(
        stats.cache_hits + stats.cache_inflight_waits,
        names.len() as u64,
        "second submission of each binary reused the artifact: {stats:?}"
    );
    assert_eq!(stats.jobs_failed, 0);
    assert!(stats.max_in_flight_seen >= 1);
    let final_stats = handle.shutdown();
    assert_eq!(final_stats.jobs_completed, 2 * names.len() as u64);
}

#[test]
fn saturated_sessions_reject_with_a_typed_error() {
    let binary = train_binary("470.lbm");
    let janus = session_janus(BackendKind::from_env());
    // One worker, a queue of one, an in-flight cap of one: the second
    // submission while the first still runs must be rejected.
    let handle = janus.serve(ServeConfig {
        workers: 1,
        queue_depth: 1,
        max_in_flight: 1,
        ..ServeConfig::default()
    });
    handle.submit(JobSpec::new(binary.clone())).unwrap();
    let err = handle
        .submit(JobSpec::new(binary.clone()))
        .expect_err("second submission must saturate");
    match err {
        janus_serve::ServeError::Saturated { in_flight, limit } => {
            assert_eq!(limit, 1);
            assert!(in_flight >= 1);
        }
        other => panic!("expected Saturated, got {other}"),
    }
    // The accepted job still completes, and the rejection is counted.
    let outcomes = handle.join();
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].1.is_ok());
    let stats = handle.stats();
    assert_eq!(stats.jobs_rejected, 1);
    // After draining, the session accepts work again.
    handle.submit(JobSpec::new(binary)).unwrap();
    let outcomes = handle.join();
    assert_eq!(outcomes.len(), 1);
}

#[test]
fn per_job_thread_overrides_do_not_change_guest_results() {
    let binary = train_binary("459.GemsFDTD");
    let janus = session_janus(BackendKind::from_env());
    let reference = serial_run(&janus, &binary, &[]);
    let handle = janus.serve(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let ids = handle
        .submit_batch([1u32, 2, 4, 8].map(|t| JobSpec::new(binary.clone()).with_threads(t)))
        .expect("batch admitted");
    assert_eq!(ids.len(), 4);
    for (id, outcome) in handle.join() {
        let report = outcome.unwrap_or_else(|e| panic!("{id}: {e}"));
        // Guest output is invariant under the thread count — up to the
        // pipeline's own float-reduction tolerance (summation order moves
        // with the chunking). The raw memory image is not (each worker
        // leaves its private stack frame behind), so the digest is only
        // compared at the session's own thread count.
        assert_eq!(report.output_floats.len(), reference.output_floats.len());
        for (a, b) in report.output_floats.iter().zip(&reference.output_floats) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{id}: {a} vs {b}");
        }
        assert_eq!(report.output_ints, reference.output_ints, "{id}");
        if report.threads == 4 {
            assert_eq!(report.memory_digest, reference.memory_digest, "{id}");
        }
    }
    let stats = handle.stats();
    assert_eq!(stats.cache_misses, 1, "thread overrides share one artifact");
}

#[test]
fn traced_session_exports_a_full_stack_chrome_trace() {
    let binary = train_binary("429.mcf");
    let janus = session_janus(BackendKind::from_env());
    let handle = janus.serve(ServeConfig {
        workers: 2,
        trace: janus_obs::Recorder::enabled(),
        ..ServeConfig::default()
    });
    for _ in 0..4 {
        handle.submit(JobSpec::new(binary.clone())).unwrap();
    }
    let outcomes = handle.join();
    assert!(outcomes.iter().all(|(_, r)| r.is_ok()));

    // Stats expose histogram-backed latency quantiles.
    let stats = handle.stats();
    assert_eq!(stats.job_wall.count, 4);
    assert_eq!(stats.job_queue_wait.count, 4);
    assert_eq!(stats.job_execute.count, 4);
    assert!(stats.job_wall.p50_nanos >= stats.job_execute.p50_nanos);
    assert!(stats.job_wall.p99_nanos >= stats.job_wall.p50_nanos);

    // The Chrome export is valid JSON carrying the serving layer's own
    // spans, the core pipeline's, and per-worker track names.
    let trace = handle.trace().chrome_trace();
    let doc = janus_obs::json::parse(&trace).expect("chrome trace parses");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    for expected in ["job", "queue.wait", "cache.probe", "execute", "analysis"] {
        assert!(names.contains(&expected), "missing span {expected:?}");
    }
    let track_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert!(
        track_names.iter().any(|n| n.starts_with("janus-serve-")),
        "worker tracks registered: {track_names:?}"
    );

    // The same session also exports Prometheus text with the job series.
    let prom = handle.trace().prometheus_text();
    assert!(prom.contains("janus_serve_job_wall_nanos_count 4"));
}
