//! Persistence, fairness and admission battery for the serving layer.
//!
//! Pins the acceptance bar of the persistent artifact store and the
//! hardened executor:
//!
//! * a restarted `ServeHandle` over a populated store directory serves the
//!   whole workload suite with **zero pipeline rebuilds** (disk hits only),
//!   outputs and memory digests identical to the cold run;
//! * crash leftovers (partial `.tmp.` files) are ignored and swept;
//! * entries written under a different format version are rebuilt, not
//!   loaded — and not mistaken for corruption;
//! * corrupt entries are quarantined (renamed aside, counted, never
//!   served) and transparently rebuilt;
//! * a tenant flooding the queue cannot starve a light tenant (deficit
//!   round robin), and per-tenant `max_pending` caps reject with the typed
//!   error;
//! * deadline admission rejects only when the cost model has evidence.

use janus_compile::{CompileOptions, Compiler};
use janus_core::{BackendKind, Janus, JanusConfig};
use janus_ir::digest::fnv1a;
use janus_ir::JBinary;
use janus_serve::{JobSpec, ServeConfig, ServeError, ServeSession, TenantQuota};
use janus_workloads::{parallel_benchmarks, speculative_benchmarks, workload};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn train_binary(name: &str) -> Arc<JBinary> {
    let w = workload(name).expect("known workload");
    Arc::new(
        Compiler::with_options(CompileOptions::gcc_o3())
            .compile(&w.train_program)
            .expect("workload compiles"),
    )
}

fn session_janus() -> Janus {
    // Warm-vs-cold runs are compared cycle-for-cycle: that is a
    // static-policy contract, so pin the adaptive tuner off even when the
    // suite runs under JANUS_ADAPTIVE=1 (modelled cycles become
    // wall-time-dependent with it on).
    Janus::with_config(JanusConfig {
        threads: 4,
        backend: BackendKind::from_env(),
        dbm: janus_core::DbmConfig {
            adaptive: false,
            ..janus_core::DbmConfig::default()
        },
        ..JanusConfig::default()
    })
}

/// A fresh per-test store directory (removed at the start so reruns after
/// a failure start clean; removed again on success).
fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "janus-serve-store-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn store_config(dir: &Path) -> ServeConfig {
    ServeConfig {
        workers: 4,
        store_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    }
}

/// The only entry file (`*.jpa`) in a store directory.
fn single_entry_path(dir: &Path) -> PathBuf {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("store dir exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "jpa"))
        .collect();
    assert_eq!(entries.len(), 1, "exactly one persisted entry");
    entries.remove(0)
}

#[test]
fn restarted_session_serves_the_suite_from_disk_with_zero_rebuilds() {
    let dir = store_dir("warm-suite");
    let janus = session_janus();
    let names: Vec<&str> = parallel_benchmarks()
        .into_iter()
        .chain(speculative_benchmarks())
        .collect();
    let binaries: Vec<Arc<JBinary>> = names.iter().map(|n| train_binary(n)).collect();

    // Cold session: every workload analysed once, every artifact persisted.
    let cold_outcomes = {
        let handle = janus.serve(store_config(&dir));
        for binary in &binaries {
            handle.submit(JobSpec::new(binary.clone())).unwrap();
        }
        let outcomes = handle.join();
        let stats = handle.stats();
        assert_eq!(stats.cache_misses, names.len() as u64, "{stats:?}");
        assert_eq!(stats.disk_hits, 0, "{stats:?}");
        assert_eq!(stats.disk_entries, names.len() as u64, "{stats:?}");
        outcomes
    };

    // Restarted session over the same directory: disk hits only — the
    // acceptance criterion is literally zero pipeline rebuilds.
    let handle = janus.serve(store_config(&dir));
    for binary in &binaries {
        handle.submit(JobSpec::new(binary.clone())).unwrap();
    }
    let warm_outcomes = handle.join();
    let stats = handle.stats();
    assert_eq!(stats.cache_misses, 0, "zero pipeline rebuilds: {stats:?}");
    assert_eq!(stats.disk_hits, names.len() as u64, "{stats:?}");
    assert_eq!(stats.disk_corrupt, 0, "{stats:?}");
    assert_eq!(stats.jobs_failed, 0, "{stats:?}");

    assert_eq!(warm_outcomes.len(), cold_outcomes.len());
    for (((_, cold), (_, warm)), name) in cold_outcomes.iter().zip(&warm_outcomes).zip(&names) {
        let cold = cold.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
        let warm = warm.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            warm.memory_digest, cold.memory_digest,
            "{name}: disk-served memory image diverged from the cold run"
        );
        assert_eq!(warm.output_ints, cold.output_ints, "{name}");
        assert_eq!(warm.output_floats, cold.output_floats, "{name}");
        assert_eq!(warm.exit_code, cold.exit_code, "{name}");
        assert_eq!(warm.schedule_digest, cold.schedule_digest, "{name}");
        assert_eq!(warm.cycles, cold.cycles, "{name}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partial_temp_files_from_a_crashed_writer_are_ignored() {
    let dir = store_dir("crash");
    std::fs::create_dir_all(&dir).unwrap();
    // A writer that died mid-entry leaves a .tmp. file; it must never be
    // read as an entry and must be swept at open.
    let leftover = dir.join("00000000deadbeef.jpa.tmp.12345.7");
    std::fs::write(&leftover, b"torn half-written artifact bytes").unwrap();

    let janus = session_janus();
    let binary = train_binary("470.lbm");
    let handle = janus.serve(store_config(&dir));
    handle.submit(JobSpec::new(binary)).unwrap();
    let outcomes = handle.join();
    assert!(outcomes[0].1.is_ok());
    let stats = handle.stats();
    assert!(!leftover.exists(), "crash leftovers are swept at open");
    assert_eq!(stats.disk_corrupt, 0, "a temp file is not corruption");
    assert_eq!(stats.cache_misses, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_mismatched_entries_are_rebuilt_not_loaded() {
    let dir = store_dir("version");
    let janus = session_janus();
    let binary = train_binary("470.lbm");
    {
        let handle = janus.serve(store_config(&dir));
        handle.submit(JobSpec::new(binary.clone())).unwrap();
        assert!(handle.join()[0].1.is_ok());
    }

    // Rewrite the entry as a future format version would have written it:
    // bump the artifact container version inside the payload (envelope
    // offset 24 + payload offset 4) and re-seal the envelope checksum, so
    // the bytes are *healthy* — just not ours.
    let path = single_entry_path(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    let v = 24 + 4;
    let version = u32::from_le_bytes(bytes[v..v + 4].try_into().unwrap());
    bytes[v..v + 4].copy_from_slice(&(version + 1).to_le_bytes());
    let body_len = bytes.len() - 8;
    let checksum = fnv1a(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    let handle = janus.serve(store_config(&dir));
    handle.submit(JobSpec::new(binary)).unwrap();
    assert!(handle.join()[0].1.is_ok());
    let stats = handle.stats();
    assert_eq!(stats.disk_hits, 0, "stale version never loads: {stats:?}");
    assert_eq!(stats.cache_misses, 1, "the entry was rebuilt: {stats:?}");
    assert_eq!(
        stats.disk_corrupt, 0,
        "a version mismatch is staleness, not corruption: {stats:?}"
    );
    // The rebuild overwrote the stale entry with the current version.
    let fresh = std::fs::read(single_entry_path(&dir)).unwrap();
    let found = u32::from_le_bytes(fresh[v..v + 4].try_into().unwrap());
    assert_eq!(found, version, "rebuild re-persisted the current version");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entries_are_quarantined_and_rebuilt() {
    let dir = store_dir("quarantine");
    let janus = session_janus();
    let binary = train_binary("459.GemsFDTD");
    let cold = {
        let handle = janus.serve(store_config(&dir));
        handle.submit(JobSpec::new(binary.clone())).unwrap();
        let mut outcomes = handle.join();
        outcomes.remove(0).1.expect("cold run succeeds")
    };

    // Rot a byte in the middle of the entry without re-sealing the
    // checksum: the store must refuse, quarantine and rebuild.
    let path = single_entry_path(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    let handle = janus.serve(store_config(&dir));
    handle.submit(JobSpec::new(binary)).unwrap();
    let warm = handle.join().remove(0).1.expect("rebuild serves the job");
    let stats = handle.stats();
    assert_eq!(stats.disk_corrupt, 1, "{stats:?}");
    assert_eq!(stats.disk_hits, 0, "corrupt bytes are never served");
    assert_eq!(stats.cache_misses, 1, "the entry was rebuilt");
    assert_eq!(warm.memory_digest, cold.memory_digest);
    assert_eq!(warm.output_ints, cold.output_ints);
    let quarantined = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().contains(".quarantine."))
        .count();
    assert_eq!(quarantined, 1, "the damaged bytes are preserved aside");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saturating_tenant_cannot_starve_a_light_one() {
    const HEAVY_JOBS: u64 = 10;
    let janus = session_janus();
    let binary = train_binary("470.lbm");
    // One worker so the dequeue order is a single observable sequence.
    let handle = janus.serve(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    for _ in 0..HEAVY_JOBS {
        handle
            .submit(JobSpec::new(binary.clone()).with_tenant("heavy"))
            .unwrap();
    }
    for _ in 0..2 {
        handle
            .submit(JobSpec::new(binary.clone()).with_tenant("light"))
            .unwrap();
    }
    let outcomes = handle.join();
    let light_sequences: Vec<u64> = outcomes
        .iter()
        .map(|(id, outcome)| outcome.as_ref().unwrap_or_else(|e| panic!("{id}: {e}")))
        .filter(|report| report.tenant == "light")
        .map(|report| report.sequence)
        .collect();
    assert_eq!(light_sequences.len(), 2);
    // Under FIFO the light tenant would be dequeued last (sequences 10 and
    // 11). Deficit round robin interleaves the tenants, so both light jobs
    // start well before the heavy backlog drains — with generous slack for
    // heavy jobs the worker dequeued before the light tenant submitted.
    let last = *light_sequences.iter().max().unwrap();
    assert!(
        last < HEAVY_JOBS,
        "light tenant starved behind the heavy backlog: sequences {light_sequences:?}"
    );
    let _ = handle.shutdown();
}

#[test]
fn tenant_quota_caps_pending_jobs_with_a_typed_error() {
    let janus = session_janus();
    let binary = train_binary("470.lbm");
    let handle = janus.serve(ServeConfig {
        workers: 1,
        tenant_quotas: vec![(
            "capped".into(),
            TenantQuota {
                max_pending: 1,
                ..TenantQuota::default()
            },
        )],
        ..ServeConfig::default()
    });
    // Occupy the single worker (analysis alone outlasts the submissions
    // below), then fill the capped tenant's queue.
    handle.submit(JobSpec::new(binary.clone())).unwrap();
    handle
        .submit(JobSpec::new(binary.clone()).with_tenant("capped"))
        .unwrap();
    let err = handle
        .submit(JobSpec::new(binary.clone()).with_tenant("capped"))
        .expect_err("second pending job exceeds the tenant quota");
    match err {
        ServeError::TenantSaturated {
            tenant,
            pending,
            limit,
        } => {
            assert_eq!(tenant, "capped");
            assert_eq!(pending, 1);
            assert_eq!(limit, 1);
        }
        other => panic!("expected TenantSaturated, got {other}"),
    }
    // Other tenants are unaffected by the capped tenant's quota.
    handle
        .submit(JobSpec::new(binary).with_tenant("other"))
        .unwrap();
    let outcomes = handle.join();
    assert_eq!(outcomes.len(), 3);
    assert!(outcomes.iter().all(|(_, r)| r.is_ok()));
    assert_eq!(handle.stats().jobs_quota_rejected, 1);
}

#[test]
fn deadline_admission_needs_evidence_and_then_rejects_unmeetable_budgets() {
    let janus = session_janus();
    let binary = train_binary("470.lbm");
    let handle = janus.serve(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    // No completed job yet: the cost model has no evidence, so even an
    // absurd budget is admitted rather than guessed at.
    handle
        .submit(JobSpec::new(binary.clone()).with_deadline(Duration::from_nanos(1)))
        .unwrap();
    assert!(handle.join()[0].1.is_ok());

    // One observation later the model knows this binary takes far longer
    // than a nanosecond: the unmeetable budget is rejected, a generous one
    // admitted.
    let err = handle
        .submit(JobSpec::new(binary.clone()).with_deadline(Duration::from_nanos(1)))
        .expect_err("1 ns budget is unmeetable once the model has evidence");
    match err {
        ServeError::DeadlineUnmeetable {
            estimated_nanos,
            budget_nanos,
        } => {
            assert_eq!(budget_nanos, 1);
            assert!(estimated_nanos > budget_nanos);
        }
        other => panic!("expected DeadlineUnmeetable, got {other}"),
    }
    handle
        .submit(JobSpec::new(binary).with_deadline(Duration::from_secs(3600)))
        .expect("a generous budget is admitted");
    let outcomes = handle.join();
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].1.is_ok());
    let stats = handle.stats();
    assert_eq!(stats.jobs_deadline_rejected, 1);
    assert_eq!(stats.jobs_failed, 0);
}
