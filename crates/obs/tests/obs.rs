//! janus-obs behaviour battery: histogram bucket edges / saturation /
//! shard merging, ring-buffer overflow accounting, and export validity
//! (both exporters parse as JSON; complete spans nest monotonically per
//! track).

use janus_obs::json::{self, Value};
use janus_obs::{bucket_index, bucket_upper_bound, Histogram, Recorder};

// ---------------------------------------------------------------------------
// Histogram bucket boundaries.

#[test]
fn bucket_index_hits_every_power_of_two_edge() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    for k in 1..64usize {
        let low = 1u64 << (k - 1);
        let high = (1u64 << k) - 1;
        assert_eq!(bucket_index(low), k, "lower edge of bucket {k}");
        assert_eq!(bucket_index(high), k, "upper edge of bucket {k}");
        if k < 63 {
            assert_eq!(bucket_index(high + 1), k + 1, "first value past bucket {k}");
        }
    }
    assert_eq!(bucket_index(u64::MAX), 64);
    assert_eq!(bucket_upper_bound(0), 0);
    assert_eq!(bucket_upper_bound(1), 1);
    assert_eq!(bucket_upper_bound(10), 1023);
    assert_eq!(bucket_upper_bound(64), u64::MAX);
}

#[test]
fn histogram_saturates_at_the_top_bucket_not_wraps() {
    let h = Histogram::new();
    h.record(u64::MAX);
    h.record(u64::MAX - 1);
    let snap = h.snapshot();
    assert_eq!(snap.count, 2);
    assert_eq!(snap.buckets[64], 2);
    assert_eq!(snap.max, u64::MAX);
    assert_eq!(snap.quantile(1.0), u64::MAX);
}

#[test]
fn quantile_is_never_below_exact_and_within_2x() {
    // A skewed sample set exercising several buckets.
    let samples: Vec<u64> = (0..200u64).map(|i| (i + 1) * (i + 1) * 17).collect();
    let h = Histogram::new();
    for &s in &samples {
        h.record(s);
    }
    let mut sorted = samples.clone();
    sorted.sort_unstable();
    let snap = h.snapshot();
    for &(q, label) in &[(0.50, "p50"), (0.90, "p90"), (0.99, "p99")] {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let est = snap.quantile(q);
        assert!(est >= exact, "{label}: estimate {est} below exact {exact}");
        assert!(
            est < exact.saturating_mul(2),
            "{label}: estimate {est} not within 2x of exact {exact}"
        );
    }
    assert_eq!(snap.quantile(1.0), *sorted.last().unwrap());
    let stats = snap.latency_stats();
    assert_eq!(stats.count, 200);
    assert_eq!(stats.max_nanos, *sorted.last().unwrap());
}

#[test]
fn merge_of_per_thread_shards_adds_counts_and_keeps_max() {
    let shards: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
    std::thread::scope(|scope| {
        for (t, shard) in shards.iter().enumerate() {
            scope.spawn(move || {
                for i in 0..1000u64 {
                    shard.record(i * (t as u64 + 1));
                }
            });
        }
    });
    let merged = Histogram::new();
    for shard in &shards {
        merged.merge_from(shard);
    }
    let snap = merged.snapshot();
    assert_eq!(snap.count, 4000);
    assert_eq!(snap.max, 999 * 4);
    let per_shard_total: u64 = shards.iter().map(|s| s.snapshot().sum).sum();
    assert_eq!(snap.sum, per_shard_total);
    // Bucket-by-bucket the merge is the sum of the shards.
    for i in 0..janus_obs::BUCKETS {
        let want: u64 = shards.iter().map(|s| s.snapshot().buckets[i]).sum();
        assert_eq!(snap.buckets[i], want, "bucket {i}");
    }
}

#[test]
fn empty_histogram_reports_zeros() {
    let snap = Histogram::new().snapshot();
    assert_eq!(snap.quantile(0.5), 0);
    assert_eq!(snap.latency_stats(), janus_obs::LatencyStats::default());
}

// ---------------------------------------------------------------------------
// Ring-buffer overflow: drops counted, never silent.

#[test]
fn ring_overflow_overwrites_oldest_and_counts_drops() {
    let rec = Recorder::with_capacity(8);
    // Single-threaded: everything lands in one shard of capacity 8.
    for _ in 0..13 {
        rec.instant("test", "tick", &[]);
    }
    assert_eq!(rec.len(), 8, "ring retains its capacity");
    assert_eq!(rec.dropped(), 5, "overflow is counted, not silent");
    assert_eq!(rec.observed_events(), 13);
}

#[test]
fn disabled_recorder_is_inert() {
    let rec = Recorder::disabled();
    assert!(!rec.is_enabled());
    rec.instant("test", "tick", &[]);
    {
        let _g = rec.span("test", "span").arg("k", 1u64);
    }
    rec.async_span("test", "async", 0, 10, &[]);
    assert!(rec.is_empty());
    assert_eq!(rec.dropped(), 0);
    assert_eq!(rec.chrome_trace().matches("\"ph\":\"X\"").count(), 0);
    // Histograms still work detached — this is how latency stats are
    // collected with tracing off.
    let h = rec.histogram("latency");
    h.record(42);
    assert_eq!(h.latency_stats().count, 1);
    assert!(rec.histograms().is_empty());
}

#[test]
fn recorder_clones_share_one_sink() {
    let rec = Recorder::enabled();
    let clone = rec.clone();
    assert_eq!(rec, clone);
    clone.instant("test", "from-clone", &[]);
    assert_eq!(rec.len(), 1);
    assert_ne!(rec, Recorder::enabled());
    assert_eq!(Recorder::disabled(), Recorder::default());
}

// ---------------------------------------------------------------------------
// Export validity.

fn collect_x_events(trace: &Value) -> Vec<(u64, f64, f64, String)> {
    // (tid, ts_us, dur_us, name) for every complete span.
    trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .map(|e| {
            (
                e.get("tid").and_then(Value::as_f64).expect("tid") as u64,
                e.get("ts").and_then(Value::as_f64).expect("ts"),
                e.get("dur").and_then(Value::as_f64).expect("dur"),
                e.get("name")
                    .and_then(Value::as_str)
                    .expect("name")
                    .to_string(),
            )
        })
        .collect()
}

/// Spans on one track must nest: sorted by start, each successive span is
/// either disjoint from or fully contained in every open ancestor.
fn assert_monotone_nesting(mut spans: Vec<(u64, f64, f64, String)>) {
    spans.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap());
    let mut stack: Vec<(u64, f64, f64)> = Vec::new();
    for (tid, ts, dur, name) in spans {
        while let Some(&(stid, _, send)) = stack.last() {
            if stid != tid || ts >= send {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(stid, sts, send)) = stack.last() {
            if stid == tid {
                assert!(
                    ts >= sts && ts + dur <= send + 1e-3,
                    "span {name:?} [{ts}, {}] escapes its parent [{sts}, {send}]",
                    ts + dur
                );
            }
        }
        stack.push((tid, ts, ts + dur));
    }
}

#[test]
fn chrome_trace_parses_and_spans_nest() {
    let rec = Recorder::enabled();
    rec.set_thread_track("main-track");
    for i in 0..3u64 {
        let _outer = rec.span("test", "outer").arg("round", i);
        std::thread::sleep(std::time::Duration::from_micros(50));
        {
            let _inner = rec
                .span("test", "inner")
                .arg("quote", "needs \"escaping\"\n");
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }
    let submit = rec.now_nanos();
    rec.async_span(
        "test",
        "queue.wait",
        submit,
        submit + 1000,
        &[("tenant", "default".into())],
    );
    rec.instant("test", "marker", &[("n", 7u64.into())]);

    let text = rec.chrome_trace();
    let trace = json::parse(&text).expect("chrome trace is valid JSON");
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents");
    // Thread-name metadata present.
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(Value::as_str) == Some("M")
            && e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                == Some("main-track")
    }));
    // Async pair present and correlated.
    let begins: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("b"))
        .collect();
    let ends: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("e"))
        .collect();
    assert_eq!(begins.len(), 1);
    assert_eq!(ends.len(), 1);
    assert_eq!(
        begins[0].get("id").and_then(Value::as_str),
        ends[0].get("id").and_then(Value::as_str)
    );
    let spans = collect_x_events(&trace);
    assert_eq!(spans.len(), 6, "three outer + three inner complete spans");
    assert_monotone_nesting(spans);
}

#[test]
fn jsonl_export_is_line_delimited_json() {
    let rec = Recorder::enabled();
    {
        let _g = rec.span("test", "work").arg("path", "a\\b\"c");
    }
    rec.instant("test", "tick", &[("ok", true.into()), ("x", 1.5f64.into())]);
    let text = rec.jsonl();
    assert_eq!(text.lines().count(), 2);
    for line in text.lines() {
        let v = json::parse(line).expect("each line parses");
        assert!(v.get("ts_nanos").is_some());
        assert!(v.get("ph").is_some());
    }
}

#[test]
fn prometheus_export_has_cumulative_buckets() {
    let rec = Recorder::enabled();
    let h = rec.histogram("job.wall");
    for v in [1u64, 2, 3, 100, 100_000] {
        h.record(v);
    }
    let text = rec.prometheus_text();
    assert!(text.contains("# TYPE janus_job_wall_nanos histogram"));
    assert!(text.contains("janus_job_wall_nanos_bucket{le=\"+Inf\"} 5"));
    assert!(text.contains("janus_job_wall_nanos_count 5"));
    assert!(text.contains("janus_job_wall_nanos_max 100000"));
    // The +Inf bucket equals count and cumulative counts never decrease.
    let mut last = 0u64;
    for line in text.lines().filter(|l| l.contains("_bucket{le=")) {
        let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(n >= last, "cumulative bucket counts are monotone: {line}");
        last = n;
    }
}

#[test]
fn recorder_prometheus_text_round_trips_through_the_parser() {
    let rec = Recorder::enabled();
    let h = rec.histogram("job.wall");
    for v in [7u64, 9, 4096] {
        h.record(v);
    }
    rec.histogram("queue.wait").record(123);
    let doc = janus_obs::metrics::parse_exposition(&rec.prometheus_text())
        .expect("recorder exposition parses");
    assert!(
        doc.help.contains_key("janus_job_wall_nanos"),
        "HELP per family"
    );
    assert_eq!(
        doc.families.get("janus_job_wall_nanos").map(String::as_str),
        Some("histogram")
    );
    assert_eq!(doc.value("janus_job_wall_nanos_count", &[]), Some(3.0));
    assert_eq!(doc.value("janus_job_wall_nanos_sum", &[]), Some(4112.0));
    assert_eq!(
        doc.value("janus_job_wall_nanos_bucket", &[("le", "+Inf")]),
        Some(3.0)
    );
    assert_eq!(doc.value("janus_queue_wait_nanos_count", &[]), Some(1.0));
    assert_eq!(doc.value("janus_job_wall_nanos_max", &[]), Some(4096.0));
}

#[test]
fn concurrent_recording_from_many_threads_is_complete_or_counted() {
    let rec = Recorder::with_capacity(64);
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let rec = rec.clone();
            scope.spawn(move || {
                rec.set_thread_track(&format!("worker-{t}"));
                for i in 0..500u64 {
                    let _g = rec.span("test", "unit").arg("i", i);
                }
            });
        }
    });
    // Every event either resides in a ring or was counted as dropped.
    assert_eq!(rec.observed_events(), 8 * 500);
    let trace = json::parse(&rec.chrome_trace()).expect("valid JSON under contention");
    assert_monotone_nesting(collect_x_events(&trace));
}

// ---------------------------------------------------------------------------
// json module edge cases (it validates all the exports above).

#[test]
fn json_parser_round_trips_escapes_and_rejects_garbage() {
    let v = json::parse(r#"{"a": [1, -2.5e3, true, null, "q\"\nA"]}"#).unwrap();
    let arr = v.get("a").and_then(Value::as_array).unwrap();
    assert_eq!(arr[0], Value::Num(1.0));
    assert_eq!(arr[1], Value::Num(-2500.0));
    assert_eq!(arr[4], Value::Str("q\"\nA".to_string()));
    assert!(json::parse("{\"a\": }").is_err());
    assert!(json::parse("[1, 2,]").is_err());
    assert!(json::parse("{} trailing").is_err());
    assert_eq!(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}
