//! Flight recorder for the janus stack: structured tracing spans, instant
//! events, log-bucketed latency histograms and three exporters (Chrome
//! trace-event JSON for Perfetto, a JSONL event log, and a Prometheus-style
//! text snapshot).
//!
//! The crate is dependency-free by design (it must build against the
//! workspace's vendored shims) and is engineered so that a **disabled**
//! recorder costs one branch on the hot path: [`Recorder`] is an
//! `Option<Arc<…>>` internally, every recording call starts with an
//! `is_enabled` check, and the null recorder allocates nothing.
//!
//! # Model
//!
//! - **Events** are typed: complete spans (`ph: "X"` in Chrome terms, made
//!   with [`Recorder::span`] RAII guards so nesting is structural), instant
//!   events ([`Recorder::instant`]) and async begin/end pairs
//!   ([`Recorder::async_span`]) for intervals — like a job's queue wait —
//!   that overlap the thread-track spans.
//! - Events land in **per-thread sharded ring buffers** (the calling
//!   thread's id hashes to a shard). A full shard overwrites its oldest
//!   event and counts the drop — flight-recorder semantics, never silent
//!   loss ([`Recorder::dropped`]).
//! - **Histograms** bucket values by power of two ([`Histogram`]), so
//!   p50/p90/p99/max snapshots ([`LatencyStats`]) need no retained samples.
//!   Histograms work even on a disabled recorder (they are how
//!   `ServeStats` reports latency with tracing off); only event recording
//!   is gated.
//!
//! # Example
//!
//! ```
//! use janus_obs::Recorder;
//!
//! let rec = Recorder::enabled();
//! rec.set_thread_track("worker-0");
//! {
//!     let _outer = rec.span("demo", "outer");
//!     let _inner = rec.span("demo", "inner").arg("iteration", 3u64);
//! } // guards drop innermost-first, so spans nest
//! rec.instant("demo", "tick", &[]);
//! let trace = rec.chrome_trace();
//! assert!(janus_obs::json::parse(&trace).is_ok());
//! ```

pub mod ewma;
mod export;
mod hist;
pub mod json;
pub mod metrics;

pub use hist::{
    bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, LatencyStats, BUCKETS,
};

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of ring-buffer shards; thread ids hash onto these.
const SHARDS: usize = 16;

/// Default ring capacity per shard (events). 16 shards × 8192 events is a
/// few megabytes at the top end — bounded regardless of run length.
const DEFAULT_EVENTS_PER_SHARD: usize = 8192;

/// A typed argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Signed integer argument.
    I64(i64),
    /// Floating-point argument.
    F64(f64),
    /// String argument.
    Str(String),
    /// Boolean argument.
    Bool(bool),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// The kind of a recorded event, mirroring Chrome trace-event phases.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// A complete span with a duration (`ph: "X"`). Spans recorded by
    /// [`SpanGuard`] nest structurally on their thread track.
    Complete {
        /// Span duration in nanoseconds.
        dur_nanos: u64,
    },
    /// A point-in-time event (`ph: "i"`).
    Instant,
    /// Start of an async interval (`ph: "b"`), paired by `id`.
    AsyncBegin {
        /// Correlation id shared with the matching [`Phase::AsyncEnd`].
        id: u64,
    },
    /// End of an async interval (`ph: "e"`), paired by `id`.
    AsyncEnd {
        /// Correlation id shared with the matching [`Phase::AsyncBegin`].
        id: u64,
    },
}

/// One recorded event. Timestamps are nanoseconds since the recorder's
/// epoch (its construction instant).
#[derive(Debug, Clone)]
pub struct Event {
    /// Category (a stable `&'static str` taxonomy key, e.g. `"serve.job"`).
    pub cat: &'static str,
    /// Event name (e.g. `"execute"`, `"queue.wait"`).
    pub name: Cow<'static, str>,
    /// Nanoseconds since the recorder epoch.
    pub ts_nanos: u64,
    /// Track id of the recording thread (hash of its `ThreadId`).
    pub tid: u64,
    /// Event kind.
    pub phase: Phase,
    /// Typed key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// One ring-buffer shard: a bounded deque plus a drop counter.
#[derive(Debug, Default)]
struct Shard {
    ring: VecDeque<Event>,
    dropped: u64,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    capacity_per_shard: usize,
    shards: Vec<Mutex<Shard>>,
    /// Track id → human-readable name, registered via `set_thread_track`.
    tracks: Mutex<HashMap<u64, String>>,
    /// Named histograms handed out by `histogram()`. BTreeMap so exports
    /// are deterministically ordered.
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    /// Monotonic source for async-interval correlation ids.
    next_async_id: AtomicU64,
}

/// A cheap-to-clone handle on the flight recorder. The default value is
/// the **null recorder**: disabled, allocation-free, every operation a
/// single branch. [`Recorder::enabled`] builds a live one.
///
/// Clones share the same buffers, histograms and epoch, so a recorder can
/// be stored in a config struct, cloned into worker threads, and exported
/// from the original handle afterwards.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl PartialEq for Recorder {
    /// Two recorders are equal when they are the same recorder (clones of
    /// one `enabled()` call) or both disabled. This is what config-struct
    /// equality wants: "points at the same sink".
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

thread_local! {
    /// Cached hash of the current thread's id (0 = not yet computed; the
    /// hash itself is re-mapped away from 0).
    static CACHED_TID: Cell<u64> = const { Cell::new(0) };
}

/// Stable-within-a-process track id for the calling thread.
fn current_tid() -> u64 {
    CACHED_TID.with(|c| {
        let cached = c.get();
        if cached != 0 {
            return cached;
        }
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        let tid = h.finish().max(1);
        c.set(tid);
        tid
    })
}

impl Recorder {
    /// A live recorder with the default per-shard ring capacity.
    #[must_use]
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_EVENTS_PER_SHARD)
    }

    /// A live recorder whose ring buffers hold `events_per_shard` events
    /// each (16 shards). When a shard fills, the oldest event is
    /// overwritten and the drop counted.
    #[must_use]
    pub fn with_capacity(events_per_shard: usize) -> Self {
        let capacity = events_per_shard.max(1);
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                capacity_per_shard: capacity,
                shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
                tracks: Mutex::new(HashMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                next_async_id: AtomicU64::new(1),
            })),
        }
    }

    /// The null recorder (same as `Recorder::default()`): records nothing,
    /// allocates nothing, costs one branch per call.
    #[must_use]
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this recorder collects events.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds elapsed since this recorder's epoch (0 when disabled).
    #[must_use]
    pub fn now_nanos(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Registers a human-readable track name for the calling thread; the
    /// Chrome exporter emits it as thread-name metadata so Perfetto shows
    /// one labelled track per worker.
    pub fn set_thread_track(&self, name: &str) {
        if let Some(inner) = &self.inner {
            let tid = current_tid();
            inner
                .tracks
                .lock()
                .expect("track registry lock")
                .insert(tid, name.to_string());
        }
    }

    /// Records an instant event on the calling thread's track.
    pub fn instant(
        &self,
        cat: &'static str,
        name: &'static str,
        args: &[(&'static str, ArgValue)],
    ) {
        if self.inner.is_none() {
            return;
        }
        let ts = self.now_nanos();
        self.push(Event {
            cat,
            name: Cow::Borrowed(name),
            ts_nanos: ts,
            tid: current_tid(),
            phase: Phase::Instant,
            args: args.to_vec(),
        });
    }

    /// Opens a complete span on the calling thread's track; the returned
    /// guard records the event (with its measured duration) on drop. Guards
    /// drop innermost-first, so spans nest structurally.
    #[must_use]
    pub fn span(&self, cat: &'static str, name: &'static str) -> SpanGuard {
        SpanGuard {
            rec: self.clone(),
            cat,
            name,
            start_nanos: self.now_nanos(),
            start: self.inner.as_ref().map(|_| Instant::now()),
            args: Vec::new(),
        }
    }

    /// Records an async interval (`ph: "b"`/`"e"` pair) with explicit
    /// timestamps — for intervals measured elsewhere, like a job's queue
    /// wait, that overlap the recording thread's own spans. Returns the
    /// correlation id used (0 when disabled).
    pub fn async_span(
        &self,
        cat: &'static str,
        name: &'static str,
        start_nanos: u64,
        end_nanos: u64,
        args: &[(&'static str, ArgValue)],
    ) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let id = inner.next_async_id.fetch_add(1, Ordering::Relaxed);
        let tid = current_tid();
        self.push(Event {
            cat,
            name: Cow::Borrowed(name),
            ts_nanos: start_nanos,
            tid,
            phase: Phase::AsyncBegin { id },
            args: args.to_vec(),
        });
        self.push(Event {
            cat,
            name: Cow::Borrowed(name),
            ts_nanos: end_nanos.max(start_nanos),
            tid,
            phase: Phase::AsyncEnd { id },
            args: Vec::new(),
        });
        id
    }

    /// A named histogram from this recorder's registry. On a **disabled**
    /// recorder this returns a fresh, fully functional detached histogram
    /// (callers that need latency stats with tracing off cache the `Arc`);
    /// on an enabled recorder the same name always returns the same
    /// histogram, and the Prometheus exporter walks the registry.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match &self.inner {
            Some(inner) => inner
                .histograms
                .lock()
                .expect("histogram registry lock")
                .entry(name.to_string())
                .or_default()
                .clone(),
            None => Arc::new(Histogram::new()),
        }
    }

    /// Snapshot of the registered histograms, name-ordered (empty when
    /// disabled).
    #[must_use]
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        match &self.inner {
            Some(inner) => inner
                .histograms
                .lock()
                .expect("histogram registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Total events overwritten because a ring shard was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner
                .shards
                .iter()
                .map(|s| s.lock().expect("shard lock").dropped)
                .sum(),
            None => 0,
        }
    }

    /// Number of events currently resident across all ring shards.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner
                .shards
                .iter()
                .map(|s| s.lock().expect("shard lock").ring.len())
                .sum(),
            None => 0,
        }
    }

    /// Whether no events are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A timestamp-ordered snapshot of every resident event.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for shard in &inner.shards {
            out.extend(shard.lock().expect("shard lock").ring.iter().cloned());
        }
        out.sort_by_key(|e| e.ts_nanos);
        out
    }

    /// Registered thread-track names, `(tid, name)` pairs.
    #[must_use]
    pub fn tracks(&self) -> Vec<(u64, String)> {
        match &self.inner {
            Some(inner) => {
                let mut v: Vec<(u64, String)> = inner
                    .tracks
                    .lock()
                    .expect("track registry lock")
                    .iter()
                    .map(|(k, n)| (*k, n.clone()))
                    .collect();
                v.sort();
                v
            }
            None => Vec::new(),
        }
    }

    fn push(&self, event: Event) {
        let Some(inner) = &self.inner else { return };
        let shard = &inner.shards[(event.tid % SHARDS as u64) as usize];
        let mut shard = shard.lock().expect("shard lock");
        if shard.ring.len() >= inner.capacity_per_shard {
            shard.ring.pop_front();
            shard.dropped += 1;
        }
        shard.ring.push_back(event);
    }
}

/// RAII guard for a complete span: opened by [`Recorder::span`], records
/// the `X` event with its measured duration when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    rec: Recorder,
    cat: &'static str,
    name: &'static str,
    start_nanos: u64,
    /// `Some` only when the recorder is enabled; measures the duration.
    start: Option<Instant>,
    args: Vec<(&'static str, ArgValue)>,
}

impl SpanGuard {
    /// Attaches an argument (builder style). A no-op on a disabled
    /// recorder — no allocation happens.
    #[must_use]
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.push_arg(key, value);
        self
    }

    /// Attaches an argument in place (for values known mid-span).
    pub fn push_arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.start.is_some() {
            self.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_nanos = start.elapsed().as_nanos() as u64;
        self.rec.push(Event {
            cat: self.cat,
            name: Cow::Borrowed(self.name),
            ts_nanos: self.start_nanos,
            tid: current_tid(),
            phase: Phase::Complete { dur_nanos },
            args: std::mem::take(&mut self.args),
        });
    }
}
