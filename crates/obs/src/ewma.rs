//! Exponentially weighted moving averages — the one estimator shared by
//! every measurement-driven policy in the stack.
//!
//! Two consumers exist today and must agree on the math: `janus-serve`'s
//! cost model (per-binary service-time estimates feeding fair scheduling and
//! deadline admission) and `janus-dbm`'s adaptive execution tuner (per-loop
//! wall-time estimates deciding sequential vs parallel execution). Both use
//! the same recurrence — the first sample initialises the average, every
//! further sample folds in with weight `alpha` — and both are *evidence
//! gated*: an estimator that has observed nothing returns `None` rather
//! than guessing.

use std::collections::HashMap;
use std::hash::Hash;

/// Default smoothing factor: recent samples dominate after a few
/// observations but one outlier cannot swing the estimate.
pub const DEFAULT_ALPHA: f64 = 0.3;

/// One exponentially weighted moving average.
///
/// The first observation initialises the average directly (no bias toward a
/// meaningless zero); each later observation folds in as
/// `value = value * (1 - alpha) + sample * alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    samples: u64,
}

impl Default for Ewma {
    fn default() -> Self {
        Ewma::new()
    }
}

impl Ewma {
    /// An empty estimator with the [`DEFAULT_ALPHA`] smoothing factor.
    #[must_use]
    pub fn new() -> Ewma {
        Ewma::with_alpha(DEFAULT_ALPHA)
    }

    /// An empty estimator with an explicit smoothing factor in `(0, 1]`.
    #[must_use]
    pub fn with_alpha(alpha: f64) -> Ewma {
        Ewma {
            alpha,
            value: 0.0,
            samples: 0,
        }
    }

    /// Folds one sample into the average.
    pub fn observe(&mut self, sample: f64) {
        self.value = if self.samples == 0 {
            sample
        } else {
            self.value * (1.0 - self.alpha) + sample * self.alpha
        };
        self.samples += 1;
    }

    /// The current estimate, or `None` before any observation — the
    /// estimator never guesses without evidence.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.value)
    }

    /// Number of samples folded in so far.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// A family of per-key [`Ewma`]s with a global fallback: estimates for a key
/// that has its own history use that history; an unseen key borrows the
/// global average; a family that has observed nothing estimates `None`.
///
/// This is exactly the shape `janus-serve`'s cost model needs (per-binary
/// service times falling back to "jobs in general") and a convenient one
/// for any keyed estimator.
#[derive(Debug, Clone, Default)]
pub struct KeyedEwma<K: Eq + Hash> {
    per_key: HashMap<K, Ewma>,
    global: Ewma,
}

impl<K: Eq + Hash> KeyedEwma<K> {
    /// An empty family with the [`DEFAULT_ALPHA`] smoothing factor.
    #[must_use]
    pub fn new() -> KeyedEwma<K> {
        KeyedEwma {
            per_key: HashMap::new(),
            global: Ewma::new(),
        }
    }

    /// Folds one sample into `key`'s average and into the global fallback.
    pub fn observe(&mut self, key: K, sample: f64) {
        self.per_key.entry(key).or_default().observe(sample);
        self.global.observe(sample);
    }

    /// The estimate for `key`: its own average, falling back to the global
    /// one, or `None` before any observation at all.
    #[must_use]
    pub fn estimate(&self, key: &K) -> Option<f64> {
        self.per_key
            .get(key)
            .and_then(Ewma::value)
            .or_else(|| self.global.value())
    }

    /// Total samples observed across all keys.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.global.samples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initialises_then_smooths() {
        let mut e = Ewma::new();
        assert_eq!(e.value(), None, "no evidence, no estimate");
        e.observe(1000.0);
        assert_eq!(e.value(), Some(1000.0), "first sample taken whole");
        e.observe(2000.0);
        let v = e.value().unwrap();
        assert!((v - 1300.0).abs() < 1e-9, "0.7*1000 + 0.3*2000 = {v}");
        assert_eq!(e.samples(), 2);
    }

    #[test]
    fn outliers_cannot_swing_the_estimate() {
        let mut e = Ewma::new();
        for _ in 0..20 {
            e.observe(100.0);
        }
        e.observe(10_000.0);
        let v = e.value().unwrap();
        assert!(v < 3200.0, "one outlier moved the average to {v}");
        assert!(v > 100.0);
    }

    #[test]
    fn keyed_family_falls_back_to_global() {
        let mut k: KeyedEwma<u64> = KeyedEwma::new();
        assert_eq!(k.estimate(&1), None, "empty family estimates nothing");
        k.observe(1, 500.0);
        assert_eq!(k.estimate(&1), Some(500.0));
        assert_eq!(k.estimate(&2), Some(500.0), "unseen key borrows global");
        k.observe(2, 1500.0);
        let own = k.estimate(&2).unwrap();
        assert!((own - 1500.0).abs() < 1e-9, "own history wins: {own}");
        assert_eq!(k.samples(), 2);
    }
}
