//! Exporters: Chrome trace-event JSON (Perfetto-loadable), a JSONL event
//! log, and a Prometheus-style text snapshot of the histogram registry.

use crate::json::escape;
use crate::metrics::{escape_help, render_histogram_series};
use crate::{ArgValue, Phase, Recorder};
use std::fmt::Write as _;

/// Microseconds (Chrome trace unit) with sub-microsecond precision.
fn micros(nanos: u64) -> String {
    format!("{:.3}", nanos as f64 / 1000.0)
}

fn json_value(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(n) => n.to_string(),
        ArgValue::I64(n) => n.to_string(),
        ArgValue::F64(n) if n.is_finite() => format!("{n}"),
        ArgValue::F64(_) => "null".to_string(),
        ArgValue::Str(s) => format!("\"{}\"", escape(s)),
        ArgValue::Bool(b) => b.to_string(),
    }
}

fn json_args(args: &[(&'static str, ArgValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape(k), json_value(v));
    }
    out.push('}');
    out
}

impl Recorder {
    /// Renders every resident event as a Chrome trace-event JSON document
    /// (`{"traceEvents": [...]}`), loadable in Perfetto or
    /// `chrome://tracing`. Complete spans become `X` events on one track
    /// per recording thread (named via [`Recorder::set_thread_track`]);
    /// async intervals become `b`/`e` pairs so overlapping intervals —
    /// queue waits — do not break per-track nesting. Disabled recorders
    /// render an empty event list.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |line: String, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push_str(",\n");
            }
            out.push_str(&line);
        };
        push(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"janus\"}}"
                .to_string(),
            &mut out,
        );
        for (tid, name) in self.tracks() {
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    escape(&name)
                ),
                &mut out,
            );
        }
        for e in self.events() {
            let common = format!(
                "\"pid\":1,\"tid\":{},\"ts\":{},\"cat\":\"{}\",\"name\":\"{}\"",
                e.tid,
                micros(e.ts_nanos),
                escape(e.cat),
                escape(&e.name),
            );
            let line = match &e.phase {
                Phase::Complete { dur_nanos } => format!(
                    "{{\"ph\":\"X\",{common},\"dur\":{},\"args\":{}}}",
                    micros(*dur_nanos),
                    json_args(&e.args)
                ),
                Phase::Instant => format!(
                    "{{\"ph\":\"i\",{common},\"s\":\"t\",\"args\":{}}}",
                    json_args(&e.args)
                ),
                Phase::AsyncBegin { id } => format!(
                    "{{\"ph\":\"b\",{common},\"id\":\"{id:#x}\",\"args\":{}}}",
                    json_args(&e.args)
                ),
                Phase::AsyncEnd { id } => {
                    format!("{{\"ph\":\"e\",{common},\"id\":\"{id:#x}\",\"args\":{{}}}}")
                }
            };
            push(line, &mut out);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Renders every resident event as one JSON object per line
    /// (timestamps in nanoseconds; `ph` uses the Chrome letters).
    #[must_use]
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            let (ph, extra) = match &e.phase {
                Phase::Complete { dur_nanos } => ("X", format!(",\"dur_nanos\":{dur_nanos}")),
                Phase::Instant => ("i", String::new()),
                Phase::AsyncBegin { id } => ("b", format!(",\"id\":{id}")),
                Phase::AsyncEnd { id } => ("e", format!(",\"id\":{id}")),
            };
            let _ = writeln!(
                out,
                "{{\"ts_nanos\":{},\"tid\":{},\"ph\":\"{ph}\",\"cat\":\"{}\",\
                 \"name\":\"{}\"{extra},\"args\":{}}}",
                e.ts_nanos,
                e.tid,
                escape(e.cat),
                escape(&e.name),
                json_args(&e.args)
            );
        }
        out
    }

    /// Renders the histogram registry as Prometheus text-format metrics:
    /// `# HELP`/`# TYPE` once per family, `janus_<name>_bucket{le="..."}`
    /// cumulative counts plus `_sum`, `_count` and a `_max` gauge family.
    /// The output round-trips through
    /// [`metrics::parse_exposition`](crate::metrics::parse_exposition).
    /// Empty on a disabled recorder.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let sanitize = |name: &str| -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        };
        for (name, hist) in self.histograms() {
            let metric = format!("janus_{}_nanos", sanitize(&name));
            let _ = writeln!(
                out,
                "# HELP {metric} Recorder histogram {} (nanoseconds).",
                escape_help(&name)
            );
            let _ = writeln!(out, "# TYPE {metric} histogram");
            render_histogram_series(&mut out, &metric, &[], &hist);
            let _ = writeln!(
                out,
                "# HELP {metric}_max Largest value recorded by {}.",
                escape_help(&name)
            );
            let _ = writeln!(out, "# TYPE {metric}_max gauge");
            let _ = writeln!(out, "{metric}_max {}", hist.snapshot().max);
        }
        out
    }

    /// Total events dropped plus resident, for export footers and tests.
    #[must_use]
    pub fn observed_events(&self) -> u64 {
        self.len() as u64 + self.dropped()
    }
}
