//! Always-on metrics: an atomic [`Counter`]/[`Gauge`]/[`Histogram`]
//! registry with static label sets, cheap enough to run unconditionally.
//!
//! The [`Recorder`](crate::Recorder) answers *"what happened in this run"*
//! and stays opt-in; this module answers *"how is the process doing right
//! now"* and is always on. The cost model that makes that acceptable:
//!
//! * **Registration is slow-path.** [`Registry::counter`] /
//!   [`Registry::gauge`] / [`Registry::histogram`] take a lock, intern the
//!   family and label set, and hand back an `Arc` handle. Callers do this
//!   once, at setup time, and cache the handle.
//! * **Recording is lock-free.** [`Counter::inc`] is one relaxed
//!   `fetch_add`; [`Gauge::set`] one relaxed `store`;
//!   [`Histogram::record`](crate::Histogram::record) a handful of relaxed
//!   atomics. No locks, no allocation, no branches on configuration —
//!   there is nothing to turn off.
//! * **Export walks the registry.** [`Registry::prometheus_text`] renders
//!   the Prometheus text exposition format (`# HELP`/`# TYPE` once per
//!   family, escaped label values, `_bucket`/`_sum`/`_count` histogram
//!   series); [`parse_exposition`] parses it back for round-trip tests and
//!   scrape format checks.
//!
//! A process-wide default registry is available through [`global`]; layers
//! that cannot thread a handle (the DBM hot path) meter against it, while
//! components with a configuration surface (the serving session) accept a
//! registry and default to the global one — so a default session's
//! `/metrics` endpoint exposes the whole process.
//!
//! # Example
//!
//! ```
//! use janus_obs::metrics::Registry;
//!
//! let registry = Registry::new();
//! let jobs = registry.counter(
//!     "janus_demo_jobs_total",
//!     "Jobs processed by the demo.",
//!     &[("tenant", "acme")],
//! );
//! jobs.inc(); // hot path: one relaxed atomic add
//! let text = registry.prometheus_text();
//! assert!(text.contains("# TYPE janus_demo_jobs_total counter"));
//! assert!(text.contains("janus_demo_jobs_total{tenant=\"acme\"} 1"));
//! let parsed = janus_obs::metrics::parse_exposition(&text).unwrap();
//! assert_eq!(parsed.value("janus_demo_jobs_total", &[("tenant", "acme")]), Some(1.0));
//! ```

use crate::hist::{bucket_upper_bound, Histogram, BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A monotonically increasing counter. Recording is one relaxed atomic op.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero (detached from any registry).
    #[must_use]
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. Recording is one relaxed
/// atomic op.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero (detached from any registry).
    #[must_use]
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The kind of a metric family, mirroring Prometheus `# TYPE` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter (names conventionally end `_total`).
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Log-bucketed histogram ([`Histogram`]); exported as
    /// `_bucket`/`_sum`/`_count` series.
    Histogram,
}

impl MetricKind {
    /// The `# TYPE` keyword.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One registered metric behind its family.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Owned label set of one series: `(key, value)` pairs, registration order.
type LabelSet = Vec<(&'static str, String)>;

/// One family: a help string, a kind, and its series keyed by label set.
#[derive(Debug)]
struct Family {
    help: &'static str,
    kind: MetricKind,
    /// Series in registration order; exports sort by label values. Small
    /// (one per label combination), so a linear scan on registration is
    /// fine — registration is the slow path by design.
    series: Vec<(LabelSet, Metric)>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

/// A registry of metric families. Cheap to clone (clones share state);
/// `Registry::default()` / [`Registry::new`] build an empty independent
/// registry, [`global`] returns the process-wide one.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl PartialEq for Registry {
    /// Two registries are equal when they share state (clones of one
    /// registry) — "points at the same sink", like
    /// [`Recorder`](crate::Recorder) equality.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Registry {
    /// An empty registry, independent of every other.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Whether this handle and `other` share one registry.
    #[must_use]
    pub fn same_as(&self, other: &Registry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Registers (or retrieves) a counter series. Idempotent: the same
    /// `name` + `labels` always return the same handle, so callers may
    /// re-register freely — but should cache the `Arc` and keep the hot
    /// path lock-free.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind — two
    /// call sites disagreeing about what a family is, a programming error.
    #[must_use]
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Counter> {
        match self.register(name, help, MetricKind::Counter, labels, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or retrieves) a gauge series. Same contract as
    /// [`Registry::counter`].
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    #[must_use]
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Gauge> {
        match self.register(name, help, MetricKind::Gauge, labels, || {
            Metric::Gauge(Arc::new(Gauge::new()))
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or retrieves) a histogram series (the shared log-bucketed
    /// [`Histogram`]). Same contract as [`Registry::counter`].
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    #[must_use]
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Histogram> {
        match self.register(name, help, MetricKind::Histogram, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&'static str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let labels: LabelSet = labels.iter().map(|(k, v)| (*k, v.to_string())).collect();
        let mut families = self.inner.families.lock().expect("metrics registry lock");
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            series: Vec::new(),
        });
        assert!(
            family.kind == kind,
            "metric family {name:?} registered as {:?} and {kind:?}",
            family.kind
        );
        if let Some((_, metric)) = family.series.iter().find(|(l, _)| *l == labels) {
            return metric.clone();
        }
        let metric = make();
        family.series.push((labels, metric.clone()));
        metric
    }

    /// The number of registered families.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .families
            .lock()
            .expect("metrics registry lock")
            .len()
    }

    /// Whether no family is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders every family as Prometheus text exposition format:
    /// `# HELP` and `# TYPE` once per family, series sorted by label
    /// values, label values escaped (`\\`, `\"`, `\n`), histograms as
    /// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let families = self.inner.families.lock().expect("metrics registry lock");
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.keyword());
            let mut series: Vec<&(LabelSet, Metric)> = family.series.iter().collect();
            series.sort_by(|(a, _), (b, _)| a.cmp(b));
            for (labels, metric) in series {
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels), c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels), g.get());
                    }
                    Metric::Histogram(h) => {
                        render_histogram_series(&mut out, name, labels, h);
                    }
                }
            }
        }
        out
    }

    /// Flat samples of every series: `(family, labels, value)`, with
    /// histograms contributing their `_sum` and `_count` (buckets are an
    /// exposition detail). For JSON snapshots and tests.
    #[must_use]
    pub fn samples(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        let families = self.inner.families.lock().expect("metrics registry lock");
        for (name, family) in families.iter() {
            for (labels, metric) in &family.series {
                let labels: Vec<(String, String)> = labels
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.clone()))
                    .collect();
                match metric {
                    Metric::Counter(c) => out.push(Sample {
                        name: (*name).to_string(),
                        labels,
                        value: c.get() as f64,
                    }),
                    Metric::Gauge(g) => out.push(Sample {
                        name: (*name).to_string(),
                        labels,
                        value: g.get() as f64,
                    }),
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        out.push(Sample {
                            name: format!("{name}_count"),
                            labels: labels.clone(),
                            value: snap.count as f64,
                        });
                        out.push(Sample {
                            name: format!("{name}_sum"),
                            labels,
                            value: snap.sum as f64,
                        });
                    }
                }
            }
        }
        out
    }
}

/// Renders one histogram series in exposition format: cumulative
/// `_bucket{le="..."}` lines (the `+Inf` bucket always present), `_sum`
/// and `_count`. Shared by the registry exporter and the flight recorder's
/// [`prometheus_text`](crate::Recorder::prometheus_text).
pub(crate) fn render_histogram_series(
    out: &mut String,
    name: &str,
    labels: &[(&'static str, String)],
    hist: &Histogram,
) {
    let snap = hist.snapshot();
    let mut cumulative = 0u64;
    for i in 0..BUCKETS {
        if snap.buckets[i] == 0 {
            continue;
        }
        cumulative += snap.buckets[i];
        let le = bucket_upper_bound(i).to_string();
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            render_labels_with(labels, ("le", &le))
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        render_labels_with(labels, ("le", "+Inf")),
        snap.count
    );
    let _ = writeln!(out, "{name}_sum{} {}", render_labels(labels), snap.sum);
    let _ = writeln!(out, "{name}_count{} {}", render_labels(labels), snap.count);
}

/// Escapes a label value per the exposition format: `\` → `\\`, `"` →
/// `\"`, newline → `\n`.
#[must_use]
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a `# HELP` string: `\` → `\\`, newline → `\n`.
pub(crate) fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&'static str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

fn render_labels_with(labels: &[(&'static str, String)], extra: (&str, &str)) -> String {
    let mut out = String::from("{");
    for (k, v) in labels {
        let _ = write!(out, "{k}=\"{}\",", escape_label_value(v));
    }
    let _ = write!(out, "{}=\"{}\"", extra.0, escape_label_value(extra.1));
    out.push('}');
    out
}

/// The process-wide default registry. Layers that cannot thread a handle
/// (the DBM's execution hot path) meter against it; a default-configured
/// serving session exports it, so one scrape covers the whole process.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ---------------------------------------------------------------------------
// Exposition parsing (round-trip tests, scrape format checks)
// ---------------------------------------------------------------------------

/// One parsed sample line of an exposition document.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Series name as written (histogram suffixes included).
    pub name: String,
    /// Label pairs, document order, escapes decoded.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A parsed Prometheus text exposition document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// `# TYPE` declarations: family name → kind keyword.
    pub families: BTreeMap<String, String>,
    /// `# HELP` declarations: family name → help text.
    pub help: BTreeMap<String, String>,
    /// Every sample line, document order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// The value of the series `name` with exactly `labels` (order
    /// ignored), or `None` when absent.
    #[must_use]
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| s.value)
    }

    /// All samples of the series `name`, any labels.
    #[must_use]
    pub fn series(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }
}

/// Parses a Prometheus text exposition document, validating the invariants
/// the exporter promises: every line is a comment, blank, or a well-formed
/// sample; `# TYPE` appears at most once per family; every sample belongs
/// to a `# TYPE`-declared family (histogram `_bucket`/`_sum`/`_count`
/// suffixes resolve to their base family).
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input.
pub fn parse_exposition(input: &str) -> Result<Exposition, String> {
    let mut doc = Exposition::default();
    for (lineno, line) in input.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("").to_string();
            let kind = parts.next().unwrap_or("").trim().to_string();
            if name.is_empty() || kind.is_empty() {
                return Err(format!("line {n}: malformed TYPE line"));
            }
            if doc.families.insert(name.clone(), kind).is_some() {
                return Err(format!("line {n}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("").to_string();
            let help = parts.next().unwrap_or("").to_string();
            doc.help.insert(name, help);
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal
        }
        let sample = parse_sample_line(line).map_err(|e| format!("line {n}: {e}"))?;
        let base = sample
            .name
            .strip_suffix("_bucket")
            .or_else(|| sample.name.strip_suffix("_sum"))
            .or_else(|| sample.name.strip_suffix("_count"))
            .filter(|base| doc.families.get(*base).map(String::as_str) == Some("histogram"))
            .unwrap_or(&sample.name);
        if !doc.families.contains_key(base) {
            return Err(format!(
                "line {n}: sample {:?} has no TYPE declaration",
                sample.name
            ));
        }
        doc.samples.push(sample);
    }
    Ok(doc)
}

fn parse_sample_line(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let name_end = bytes
        .iter()
        .position(|&b| b == b'{' || b == b' ')
        .ok_or("missing value")?;
    let name = line[..name_end].to_string();
    if name.is_empty() {
        return Err("empty metric name".to_string());
    }
    let mut labels = Vec::new();
    let mut pos = name_end;
    if bytes[pos] == b'{' {
        pos += 1;
        loop {
            if bytes.get(pos) == Some(&b'}') {
                pos += 1;
                break;
            }
            let key_end = line[pos..]
                .find('=')
                .map(|i| pos + i)
                .ok_or("label missing '='")?;
            let key = line[pos..key_end].trim_start_matches(',').to_string();
            pos = key_end + 1;
            if bytes.get(pos) != Some(&b'"') {
                return Err("label value not quoted".to_string());
            }
            pos += 1;
            let mut value = String::new();
            loop {
                match bytes.get(pos) {
                    None => return Err("unterminated label value".to_string()),
                    Some(b'"') => {
                        pos += 1;
                        break;
                    }
                    Some(b'\\') => {
                        match bytes.get(pos + 1) {
                            Some(b'\\') => value.push('\\'),
                            Some(b'"') => value.push('"'),
                            Some(b'n') => value.push('\n'),
                            _ => return Err("invalid escape in label value".to_string()),
                        }
                        pos += 2;
                    }
                    Some(_) => {
                        let rest = &line[pos..];
                        let c = rest.chars().next().ok_or("invalid utf-8")?;
                        value.push(c);
                        pos += c.len_utf8();
                    }
                }
            }
            labels.push((key, value));
            if bytes.get(pos) == Some(&b',') {
                pos += 1;
            }
        }
    }
    let rest = line[pos..].trim();
    if rest.is_empty() {
        return Err("missing value".to_string());
    }
    let value = match rest {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        n => n
            .parse::<f64>()
            .map_err(|_| format!("invalid value {n:?}"))?,
    };
    Ok(Sample {
        name,
        labels,
        value,
    })
}

// ---------------------------------------------------------------------------
// Process self-metrics
// ---------------------------------------------------------------------------

/// Process self-metrics: uptime, resident set size and thread count,
/// exported as `janus_process_*` gauges. RSS and thread count come from
/// `/proc/self/*` on Linux and degrade gracefully (gauges stay 0)
/// elsewhere — [`ProcessMetrics::refresh`] never fails.
#[derive(Debug)]
pub struct ProcessMetrics {
    start: Instant,
    uptime_seconds: Arc<Gauge>,
    rss_bytes: Arc<Gauge>,
    threads: Arc<Gauge>,
}

impl ProcessMetrics {
    /// Registers the `janus_process_*` gauges in `registry` (idempotent —
    /// re-registering shares the same gauges, though each handle keeps its
    /// own start instant for uptime).
    #[must_use]
    pub fn register(registry: &Registry) -> ProcessMetrics {
        ProcessMetrics {
            start: Instant::now(),
            uptime_seconds: registry.gauge(
                "janus_process_uptime_seconds",
                "Seconds since this process registered its telemetry.",
                &[],
            ),
            rss_bytes: registry.gauge(
                "janus_process_rss_bytes",
                "Resident set size in bytes (/proc/self/statm; 0 where unavailable).",
                &[],
            ),
            threads: registry.gauge(
                "janus_process_threads",
                "OS threads in this process (/proc/self/status; 0 where unavailable).",
                &[],
            ),
        }
    }

    /// Re-samples the gauges. Called by the telemetry endpoint on every
    /// scrape; cheap enough to call anywhere.
    pub fn refresh(&self) {
        self.uptime_seconds
            .set(i64::try_from(self.start.elapsed().as_secs()).unwrap_or(i64::MAX));
        if let Some(rss) = read_rss_bytes() {
            self.rss_bytes.set(i64::try_from(rss).unwrap_or(i64::MAX));
        }
        if let Some(threads) = read_thread_count() {
            self.threads.set(i64::try_from(threads).unwrap_or(i64::MAX));
        }
    }
}

/// Resident set size in bytes from `/proc/self/statm` (second field,
/// pages × 4096 — the page size on every Linux target the workspace
/// builds for). `None` where procfs is unavailable (non-Linux).
#[must_use]
pub fn read_rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let rss_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(rss_pages * 4096)
}

/// Thread count from `/proc/self/status` (`Threads:` line). `None` where
/// procfs is unavailable (non-Linux).
#[must_use]
pub fn read_thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_share_handles() {
        let registry = Registry::new();
        let a = registry.counter("janus_t_total", "help", &[("k", "v")]);
        let b = registry.counter("janus_t_total", "help", &[("k", "v")]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4, "same labels share one series");
        let other = registry.counter("janus_t_total", "help", &[("k", "w")]);
        other.inc();
        assert_eq!(other.get(), 1);
        let g = registry.gauge("janus_g", "help", &[]);
        g.set(7);
        g.dec();
        assert_eq!(g.get(), 6);
        assert_eq!(registry.len(), 2);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflict_panics() {
        let registry = Registry::new();
        let _ = registry.counter("janus_conflict", "help", &[]);
        let _ = registry.gauge("janus_conflict", "help", &[]);
    }

    #[test]
    fn global_registry_is_one_instance() {
        assert!(global().same_as(global()));
        assert!(!global().same_as(&Registry::new()));
    }

    #[test]
    fn label_escaping_round_trips() {
        let registry = Registry::new();
        let nasty = "a\\b\"c\nd";
        let c = registry.counter("janus_esc_total", "weird \\ help\nline", &[("path", nasty)]);
        c.add(9);
        let text = registry.prometheus_text();
        let doc = parse_exposition(&text).expect("exposition parses");
        assert_eq!(doc.value("janus_esc_total", &[("path", nasty)]), Some(9.0));
        assert_eq!(
            doc.families.get("janus_esc_total").map(String::as_str),
            Some("counter")
        );
    }

    #[test]
    fn histogram_exposition_has_buckets_sum_count() {
        let registry = Registry::new();
        let h = registry.histogram("janus_lat_nanos", "latency", &[("stage", "x")]);
        h.record(3);
        h.record(100);
        let text = registry.prometheus_text();
        let doc = parse_exposition(&text).expect("parses");
        assert_eq!(
            doc.value("janus_lat_nanos_count", &[("stage", "x")]),
            Some(2.0)
        );
        assert_eq!(
            doc.value("janus_lat_nanos_sum", &[("stage", "x")]),
            Some(103.0)
        );
        assert_eq!(
            doc.value("janus_lat_nanos_bucket", &[("stage", "x"), ("le", "+Inf")]),
            Some(2.0)
        );
        // Cumulative counts are monotone over le.
        let buckets = doc.series("janus_lat_nanos_bucket");
        let mut last = 0.0;
        for b in &buckets {
            assert!(b.value >= last, "cumulative buckets are monotone");
            last = b.value;
        }
    }

    #[test]
    fn parser_rejects_undeclared_and_duplicate_families() {
        assert!(parse_exposition("janus_x_total 1\n").is_err());
        let doubled = "# TYPE janus_x_total counter\n# TYPE janus_x_total counter\n";
        assert!(parse_exposition(doubled).is_err());
        let ok = "# TYPE janus_x_total counter\njanus_x_total 1\n";
        assert_eq!(parse_exposition(ok).unwrap().samples.len(), 1);
    }

    #[test]
    fn process_metrics_refresh_populates_gauges() {
        let registry = Registry::new();
        let process = ProcessMetrics::register(&registry);
        process.refresh();
        let doc = parse_exposition(&registry.prometheus_text()).expect("parses");
        assert!(doc.value("janus_process_uptime_seconds", &[]).is_some());
        if cfg!(target_os = "linux") {
            assert!(doc.value("janus_process_rss_bytes", &[]).unwrap() > 0.0);
            assert!(doc.value("janus_process_threads", &[]).unwrap() > 0.0);
        }
    }

    #[test]
    fn samples_flatten_every_series() {
        let registry = Registry::new();
        registry.counter("janus_a_total", "a", &[]).add(2);
        registry.gauge("janus_b", "b", &[("x", "1")]).set(-3);
        registry.histogram("janus_c_nanos", "c", &[]).record(5);
        let samples = registry.samples();
        let find = |name: &str| samples.iter().find(|s| s.name == name).map(|s| s.value);
        assert_eq!(find("janus_a_total"), Some(2.0));
        assert_eq!(find("janus_b"), Some(-3.0));
        assert_eq!(find("janus_c_nanos_count"), Some(1.0));
        assert_eq!(find("janus_c_nanos_sum"), Some(5.0));
    }
}
