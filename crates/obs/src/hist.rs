//! Log-bucketed latency histogram: 65 power-of-two buckets of atomic
//! counters, so p50/p90/p99/max snapshots cost O(buckets) and no samples
//! are retained.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: bucket 0 holds zeros, bucket `k` (1..=64) holds values in
/// `[2^(k-1), 2^k - 1]`.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (saturating at `u64::MAX`).
#[inline]
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A concurrent log-bucketed histogram. Recording is three relaxed atomic
/// ops plus a `fetch_max`; reading is a [`HistogramSnapshot`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (typically nanoseconds).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Folds another histogram's counts into this one (shard merging).
    /// `max` merges as the larger of the two; `sum`/`count` add.
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Shorthand for `snapshot().latency_stats()`.
    #[must_use]
    pub fn latency_stats(&self) -> LatencyStats {
        self.snapshot().latency_stats()
    }
}

/// A frozen copy of a [`Histogram`]'s counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping on overflow).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile estimate, `q` in `[0, 1]`. Returns the
    /// inclusive upper bound of the bucket holding the ranked sample,
    /// clamped to the tracked maximum — so the estimate is exact for the
    /// max, never below the true value, and never more than 2× above it.
    /// Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// The p50/p90/p99/max summary used by `ServeStats`.
    #[must_use]
    pub fn latency_stats(&self) -> LatencyStats {
        LatencyStats {
            count: self.count,
            p50_nanos: self.quantile(0.50),
            p90_nanos: self.quantile(0.90),
            p99_nanos: self.quantile(0.99),
            max_nanos: self.max,
        }
    }
}

/// A compact latency summary: quantile estimates from a log-bucketed
/// histogram (upper-bound semantics — each pXX is ≥ the true quantile and
/// < 2× it) plus the exact max. `Copy` so counter-style stats structs can
/// embed it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of samples summarised.
    pub count: u64,
    /// Estimated 50th percentile, nanoseconds.
    pub p50_nanos: u64,
    /// Estimated 90th percentile, nanoseconds.
    pub p90_nanos: u64,
    /// Estimated 99th percentile, nanoseconds.
    pub p99_nanos: u64,
    /// Exact maximum, nanoseconds.
    pub max_nanos: u64,
}

impl LatencyStats {
    /// p50 in seconds (convenience for bench tables).
    #[must_use]
    pub fn p50_seconds(&self) -> f64 {
        self.p50_nanos as f64 / 1e9
    }

    /// p90 in seconds.
    #[must_use]
    pub fn p90_seconds(&self) -> f64 {
        self.p90_nanos as f64 / 1e9
    }

    /// p99 in seconds.
    #[must_use]
    pub fn p99_seconds(&self) -> f64 {
        self.p99_nanos as f64 / 1e9
    }

    /// max in seconds.
    #[must_use]
    pub fn max_seconds(&self) -> f64 {
        self.max_nanos as f64 / 1e9
    }
}
