//! A minimal JSON parser and string escaper — enough to validate the
//! crate's own exports (and other hand-rolled JSON in the workspace)
//! without external dependencies. Not a general-purpose library: numbers
//! parse as `f64`, objects preserve insertion order in a `Vec`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object (`None` for non-objects/missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes and control characters).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a human-readable message with the byte offset of the first
/// syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf-8".to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| "invalid utf-8".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 code point.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8".to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}
