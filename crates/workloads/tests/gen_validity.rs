//! Meta-tests for the guest-program generator (`janus_workloads::gen`):
//! the differential fuzzer is only as good as the programs it feeds the
//! pipeline, so this battery checks — over a block of consecutive seeds —
//! that every generated program compiles, loads, runs to a clean exit
//! within a bounded instruction count, prints at least its checksum
//! epilogue, and that the generator's loop shapes actually cover the
//! analyser's category space (DOALL, speculative and sequential shapes
//! all appear with non-trivial frequency).

use janus_analysis::{analyze, LoopCategory};
use janus_compile::Compiler;
use janus_vm::{Process, Vm};
use janus_workloads::ProgramSpec;

const SEEDS: u64 = 96;

/// Generated guests are tiny by design; if one exceeds this retired-
/// instruction budget it is not terminating the way the generator
/// guarantees.
const MAX_RETIRED: u64 = 50_000_000;

#[test]
fn every_generated_program_compiles_loads_and_terminates() {
    for seed in 0..SEEDS {
        let spec = ProgramSpec::generate(seed);
        let program = spec.lower();
        let binary = Compiler::new()
            .compile(&program)
            .unwrap_or_else(|e| panic!("seed {seed} failed to compile: {e}\n{spec}"));
        let process = Process::load(&binary)
            .unwrap_or_else(|e| panic!("seed {seed} failed to load: {e}\n{spec}"));
        let mut vm = Vm::new(process);
        let result = vm
            .run()
            .unwrap_or_else(|e| panic!("seed {seed} trapped: {e}\n{spec}"));
        assert_eq!(result.exit_code, 0, "seed {seed} exited nonzero\n{spec}");
        assert!(
            result.retired <= MAX_RETIRED,
            "seed {seed} retired {} instructions — runaway loop?\n{spec}",
            result.retired
        );
        // The checksum epilogue prints once per array, so *something* must
        // land on an output stream for every program.
        assert!(
            !vm.output_ints().is_empty() || !vm.output_floats().is_empty(),
            "seed {seed} produced no output\n{spec}"
        );
    }
}

#[test]
fn generated_shapes_cover_the_analyser_category_space() {
    let mut histogram = [0usize; 6];
    let mut total = 0usize;
    for seed in 0..SEEDS {
        let binary = Compiler::new()
            .compile(&ProgramSpec::generate(seed).lower())
            .expect("compiles");
        let analysis = analyze(&binary).expect("analyses");
        for (cat, n) in analysis.category_histogram() {
            let slot = match cat {
                LoopCategory::StaticDoall => 0,
                LoopCategory::StaticDependence => 1,
                LoopCategory::DynamicDoall => 2,
                LoopCategory::DynamicDependence => 3,
                LoopCategory::Speculative => 4,
                LoopCategory::Incompatible => 5,
            };
            histogram[slot] += n;
            total += n;
        }
    }
    assert!(
        total >= SEEDS as usize,
        "generated programs must contain loops"
    );
    let doall = histogram[0] + histogram[2];
    let sequential = histogram[1] + histogram[3] + histogram[5];
    let speculative = histogram[4];
    // "Non-trivial frequency": at least ~5% of all generated loops in each
    // coarse bucket, so the fuzzer genuinely exercises the parallel path,
    // the serial path and the speculation engine.
    let floor = total / 20;
    assert!(
        doall > floor,
        "too few DOALL shapes: {doall}/{total} (histogram {histogram:?})"
    );
    assert!(
        sequential > floor,
        "too few sequential shapes: {sequential}/{total} (histogram {histogram:?})"
    );
    assert!(
        speculative > floor,
        "too few speculative shapes: {speculative}/{total} (histogram {histogram:?})"
    );
}

#[test]
fn generation_is_pure_per_seed() {
    for seed in [0u64, 17, 1093, 4096] {
        assert_eq!(
            ProgramSpec::generate(seed),
            ProgramSpec::generate(seed),
            "seed {seed} must generate identically every time"
        );
    }
}
