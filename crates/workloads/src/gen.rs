//! # Random guest-program generation for differential fuzzing
//!
//! The named suite ([`mod@crate::suite`]) is 13 hand-written benchmark kernels;
//! this module turns the cross-backend equivalence batteries into a
//! *scalable fuzzer* by generating arbitrary guest programs from a seed:
//! loop nests of configurable depth, affine and modulo subscripts, indirect
//! gathers and may-dependent scatters, add/sub reductions, loop-carried
//! recurrences and stencils, pointer-parameterised kernels (optionally
//! aliased), calls into the shared system library, irregular `while` chases,
//! data-dependent branches and IO inside loops — every loop category the
//! analyser knows, in random combination.
//!
//! The design splits generation from lowering. [`ProgramSpec`] is a small
//! declarative description (arrays + a list of [`LoopSpec`] shapes) produced
//! deterministically from a `u64` seed via the vendored proptest
//! [`TestRng`]; [`ProgramSpec::lower`] turns it into a well-formed
//! [`Program`]. Keeping the spec around (rather than generating the AST
//! directly) is what makes *shrinking* possible: [`ProgramSpec::
//! shrink_candidates`] proposes strictly simpler specs (drop a loop, halve
//! trip counts, halve arrays), and a greedy fixpoint over those candidates
//! reduces any failing program to a minimal counterexample.
//!
//! Every generated program terminates by construction: all `for` bounds are
//! compile-time constants and the single `while` shape counts down a bounded
//! counter. All subscripts are either range-limited by construction or
//! wrapped with an explicit `% len`, so no access can leave its array. The
//! program ends with a per-array checksum epilogue (an order-sensitive
//! integer fold and an order-insensitive float sum, both printed), so the
//! output stream captures the final memory state and a divergence in any
//! array is visible even without comparing memory digests.

use crate::suite::{Workload, WorkloadClass};
use janus_compile::ast::{
    BinOp, CmpOp, Cond, Expr, Function, GlobalArray, Init, LValue, Program, Stmt, Ty,
};
use proptest::test_runner::TestRng;
use std::fmt;

/// Element type of a generated global array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemTy {
    /// 64-bit signed integers.
    I64,
    /// 64-bit floats.
    F64,
}

/// A generated global array: type, length, deterministic initial contents.
#[derive(Debug, Clone, PartialEq)]
pub struct ArraySpec {
    /// Element type.
    pub ty: ElemTy,
    /// Number of elements (kept small: fuzz cases favour breadth over size).
    pub len: usize,
    /// `a[i] = (i * mul + add) % modulus` (scaled into `[0, 1)` for floats).
    pub init_mul: i64,
    /// See `init_mul`.
    pub init_add: i64,
    /// See `init_mul` (always positive).
    pub init_modulus: i64,
}

/// One top-level loop nest in the generated program. Array operands are
/// indices into [`ProgramSpec::arrays`]; lowering clamps every trip count
/// and subscript into range, so any combination of fields is valid — which
/// is exactly what makes mechanical shrinking safe.
#[derive(Debug, Clone, PartialEq)]
pub enum LoopSpec {
    /// `dst[i] = a[(i + shift) % len_a] op b[i]` — DOALL elementwise map;
    /// `shift == 0` lowers to the pure affine form.
    Elementwise {
        /// Destination array.
        dst: usize,
        /// First source array (same type as `dst`).
        a: usize,
        /// Second source array (same type as `dst`).
        b: usize,
        /// Operator (type-appropriate).
        op: GenOp,
        /// Read skew for the first source; non-zero lowers a `%` subscript.
        shift: i64,
        /// Trip count (clamped to the operand lengths).
        iters: usize,
    },
    /// `acc (+|-)= a[i] * b[i]`, printed after the loop — a recognisable
    /// add/sub reduction.
    Reduction {
        /// First source array.
        a: usize,
        /// Second source array (same type).
        b: usize,
        /// Subtract instead of add.
        sub: bool,
        /// Trip count.
        iters: usize,
    },
    /// `dst[i] = src[i-1] + src[i+1]` for `i in 1..n` — a three-point
    /// stencil; when `dst == src` it carries a cross-iteration dependence.
    Stencil {
        /// Destination array.
        dst: usize,
        /// Source array (same type; may equal `dst`).
        src: usize,
        /// Trip count.
        iters: usize,
    },
    /// `a[i] = a[i-1] * mul + add` — a first-order recurrence, sequential
    /// by construction.
    Recurrence {
        /// The array (read and written).
        arr: usize,
        /// Multiplier.
        mul: i64,
        /// Addend.
        add: i64,
        /// Trip count.
        iters: usize,
    },
    /// `dst[table[i] % len] += w[i]` — a may-dependent scatter-add, the
    /// DOACROSS shape `janus-spec` exists for.
    Scatter {
        /// Destination array.
        dst: usize,
        /// Integer array supplying the indirect subscripts.
        table: usize,
        /// Weight array (same type as `dst`).
        w: usize,
        /// Trip count.
        iters: usize,
    },
    /// `dst[i] = src[table[i] % len]` — an indirect gather (affine writes,
    /// data-dependent reads).
    Gather {
        /// Destination array.
        dst: usize,
        /// Integer array supplying the indirect subscripts.
        table: usize,
        /// Source array (same type as `dst`).
        src: usize,
        /// Trip count.
        iters: usize,
    },
    /// A helper function `kern(p, q, n)` walking two pointer parameters
    /// (`p[i] += q[i]`), called from `main` with array addresses — the
    /// dynamic-DOALL/bounds-check shape. With `alias` set the same array is
    /// passed for both pointers, so the "independent" operands in fact
    /// overlap.
    PointerKernel {
        /// Array passed as the destination pointer.
        a: usize,
        /// Array passed as the source pointer (ignored when `alias`).
        b: usize,
        /// Pass `a` for both parameters.
        alias: bool,
        /// Trip count.
        iters: usize,
    },
    /// `dst[i] = sin(src[i])` via the shared system library — the loop the
    /// pipeline must wrap in transactions (or speculate) because the callee
    /// is dynamically discovered code.
    SyslibLoop {
        /// Destination array (float).
        dst: usize,
        /// Source array (float).
        src: usize,
        /// Trip count.
        iters: usize,
    },
    /// A rectangular loop nest of depth `dims.len()` (2 or 3) writing
    /// `dst[linearised index] = f(indices)`.
    Nest {
        /// Destination array.
        dst: usize,
        /// Extent of each nesting level, outermost first.
        dims: Vec<usize>,
    },
    /// A non-unit-stride loop, upward or downward:
    /// `for i in 0..n step s` / `for i in n-1 ..= 0 step -s`.
    Strided {
        /// Destination array.
        dst: usize,
        /// Range walked.
        iters: usize,
        /// Stride (>= 2).
        step: i64,
        /// Walk downward with a negative step.
        down: bool,
    },
    /// A counted `while` chase: `j = (j*5 + 3) % len` accumulated through
    /// `probe[j]` — irregular induction, incompatible with parallelisation.
    ChaseLoop {
        /// Array probed through the chased index.
        probe: usize,
        /// Number of hops.
        iters: usize,
    },
    /// `if src[i] < threshold { dst[i] = src[i] + c } else { dst[i] =
    /// src[i] - c }` — data-dependent control flow inside a DOALL body.
    Branchy {
        /// Destination array.
        dst: usize,
        /// Source array (same type).
        src: usize,
        /// Branch threshold (integer; floats compare against it cast).
        threshold: i64,
        /// Trip count.
        iters: usize,
    },
    /// `print(src[i])` inside a short loop — IO makes it incompatible.
    IoLoop {
        /// Array printed.
        src: usize,
        /// Trip count (kept tiny to bound the output stream).
        iters: usize,
    },
}

/// Type-appropriate binary operators for [`LoopSpec::Elementwise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenOp {
    /// `+` (both types).
    Add,
    /// `-` (both types).
    Sub,
    /// `*` (both types).
    Mul,
    /// `^` on integers, `min` on floats.
    XorOrMin,
}

impl GenOp {
    fn binop(self, ty: ElemTy) -> BinOp {
        match (self, ty) {
            (GenOp::Add, _) => BinOp::Add,
            (GenOp::Sub, _) => BinOp::Sub,
            (GenOp::Mul, _) => BinOp::Mul,
            (GenOp::XorOrMin, ElemTy::I64) => BinOp::Xor,
            (GenOp::XorOrMin, ElemTy::F64) => BinOp::Min,
        }
    }
}

/// A complete generated program: arrays, loop nests, and the seed it came
/// from (carried for reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSpec {
    /// The seed [`ProgramSpec::generate`] was called with.
    pub seed: u64,
    /// Global arrays.
    pub arrays: Vec<ArraySpec>,
    /// Top-level loop nests, executed in order by `main`.
    pub loops: Vec<LoopSpec>,
}

impl fmt::Display for ProgramSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed {}: arrays [", self.seed)?;
        for (i, a) in self.arrays.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let ty = match a.ty {
                ElemTy::I64 => "i64",
                ElemTy::F64 => "f64",
            };
            write!(f, "g{i}: [{ty}; {}]", a.len)?;
        }
        write!(f, "], loops [")?;
        for (i, l) in self.loops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l:?}")?;
        }
        write!(f, "]")
    }
}

fn pick(rng: &mut TestRng, bound: usize) -> usize {
    rng.below(bound as u64) as usize
}

impl ProgramSpec {
    /// Deterministically generates a program spec from `seed`. Equal seeds
    /// produce equal specs.
    #[must_use]
    pub fn generate(seed: u64) -> ProgramSpec {
        let mut rng = TestRng::deterministic(&format!("janus-gen-{seed}"));
        let rng = &mut rng;

        // 2..=5 arrays, at least one of each element type so every loop
        // shape can find operands.
        let extra = pick(rng, 4);
        let mut arrays = vec![
            Self::gen_array(rng, ElemTy::I64),
            Self::gen_array(rng, ElemTy::F64),
        ];
        for _ in 0..extra {
            let ty = if rng.below(2) == 0 {
                ElemTy::I64
            } else {
                ElemTy::F64
            };
            arrays.push(Self::gen_array(rng, ty));
        }

        // 1..=4 loop nests.
        let n_loops = 1 + pick(rng, 4);
        let mut loops = Vec::with_capacity(n_loops);
        for _ in 0..n_loops {
            loops.push(Self::gen_loop(rng, &arrays));
        }

        ProgramSpec {
            seed,
            arrays,
            loops,
        }
    }

    fn gen_array(rng: &mut TestRng, ty: ElemTy) -> ArraySpec {
        ArraySpec {
            ty,
            len: 16 + pick(rng, 49), // 16..=64
            init_mul: 1 + rng.below(13) as i64,
            init_add: rng.below(7) as i64,
            init_modulus: 17 + rng.below(240) as i64,
        }
    }

    /// Index of a random array of the requested type (one always exists).
    fn of_type(rng: &mut TestRng, arrays: &[ArraySpec], ty: ElemTy) -> usize {
        let candidates: Vec<usize> = arrays
            .iter()
            .enumerate()
            .filter(|(_, a)| a.ty == ty)
            .map(|(i, _)| i)
            .collect();
        candidates[pick(rng, candidates.len())]
    }

    fn gen_loop(rng: &mut TestRng, arrays: &[ArraySpec]) -> LoopSpec {
        let any_ty = |rng: &mut TestRng| {
            if rng.below(2) == 0 {
                ElemTy::I64
            } else {
                ElemTy::F64
            }
        };
        let iters = 8 + pick(rng, 41); // 8..=48
        match rng.below(13) {
            0 => {
                let ty = any_ty(rng);
                let op = match rng.below(4) {
                    0 => GenOp::Add,
                    1 => GenOp::Sub,
                    2 => GenOp::Mul,
                    _ => GenOp::XorOrMin,
                };
                LoopSpec::Elementwise {
                    dst: Self::of_type(rng, arrays, ty),
                    a: Self::of_type(rng, arrays, ty),
                    b: Self::of_type(rng, arrays, ty),
                    op,
                    shift: rng.below(8) as i64,
                    iters,
                }
            }
            1 => {
                let ty = any_ty(rng);
                LoopSpec::Reduction {
                    a: Self::of_type(rng, arrays, ty),
                    b: Self::of_type(rng, arrays, ty),
                    sub: rng.below(2) == 1,
                    iters,
                }
            }
            2 => {
                let ty = any_ty(rng);
                LoopSpec::Stencil {
                    dst: Self::of_type(rng, arrays, ty),
                    src: Self::of_type(rng, arrays, ty),
                    iters,
                }
            }
            3 => {
                let ty = any_ty(rng);
                LoopSpec::Recurrence {
                    arr: Self::of_type(rng, arrays, ty),
                    mul: 1 + rng.below(3) as i64,
                    add: rng.below(5) as i64,
                    iters,
                }
            }
            4 => {
                let ty = any_ty(rng);
                LoopSpec::Scatter {
                    dst: Self::of_type(rng, arrays, ty),
                    table: Self::of_type(rng, arrays, ElemTy::I64),
                    w: Self::of_type(rng, arrays, ty),
                    iters,
                }
            }
            5 => {
                let ty = any_ty(rng);
                LoopSpec::Gather {
                    dst: Self::of_type(rng, arrays, ty),
                    table: Self::of_type(rng, arrays, ElemTy::I64),
                    src: Self::of_type(rng, arrays, ty),
                    iters,
                }
            }
            6 => {
                let ty = any_ty(rng);
                LoopSpec::PointerKernel {
                    a: Self::of_type(rng, arrays, ty),
                    b: Self::of_type(rng, arrays, ty),
                    alias: rng.below(3) == 0,
                    iters,
                }
            }
            7 => LoopSpec::SyslibLoop {
                dst: Self::of_type(rng, arrays, ElemTy::F64),
                src: Self::of_type(rng, arrays, ElemTy::F64),
                iters: 4 + pick(rng, 13), // syslib calls are modelled-pricey
            },
            8 => {
                let depth = 2 + pick(rng, 2);
                let dims = (0..depth).map(|_| 2 + pick(rng, 6)).collect();
                let ty = any_ty(rng);
                LoopSpec::Nest {
                    dst: Self::of_type(rng, arrays, ty),
                    dims,
                }
            }
            9 => {
                let ty = any_ty(rng);
                LoopSpec::Strided {
                    dst: Self::of_type(rng, arrays, ty),
                    iters,
                    step: 2 + rng.below(3) as i64,
                    down: rng.below(2) == 1,
                }
            }
            10 => {
                let ty = any_ty(rng);
                LoopSpec::ChaseLoop {
                    probe: Self::of_type(rng, arrays, ty),
                    iters,
                }
            }
            11 => {
                let ty = any_ty(rng);
                LoopSpec::Branchy {
                    dst: Self::of_type(rng, arrays, ty),
                    src: Self::of_type(rng, arrays, ty),
                    threshold: rng.below(64) as i64,
                    iters,
                }
            }
            _ => {
                let ty = any_ty(rng);
                LoopSpec::IoLoop {
                    src: Self::of_type(rng, arrays, ty),
                    iters: 2 + pick(rng, 5), // bounded output stream
                }
            }
        }
    }

    /// Lowers the spec to a well-formed guest program. Always succeeds: trip
    /// counts are clamped to operand lengths and indirect subscripts wrapped
    /// with `% len`, so the program compiles, stays in bounds and
    /// terminates.
    #[must_use]
    pub fn lower(&self) -> Program {
        let mut b = Program::builder(format!("gen.seed{}", self.seed));
        for (i, a) in self.arrays.iter().enumerate() {
            b = b.global(GlobalArray {
                name: format!("g{i}"),
                ty: match a.ty {
                    ElemTy::I64 => Ty::I64,
                    ElemTy::F64 => Ty::F64,
                },
                len: a.len,
                init: Init::Pattern {
                    mul: a.init_mul,
                    add: a.init_add,
                    modulus: a.init_modulus,
                },
            });
        }

        let mut main = Function::new("main");
        let mut body = Vec::new();
        let mut helpers = Vec::new();
        for (j, l) in self.loops.iter().enumerate() {
            let mut ctx = Lowerer {
                spec: self,
                j,
                main: &mut main,
                helpers: &mut helpers,
            };
            body.extend(ctx.lower_loop(l));
        }

        // Checksum epilogue: print an order-sensitive fold of every integer
        // array and an (exactly reassociable up to float rounding) sum of
        // every float array, so the output stream pins the final memory.
        for (i, a) in self.arrays.iter().enumerate() {
            let name = format!("g{i}");
            let iv = format!("ci{i}");
            main = main.local(&iv, Ty::I64);
            match a.ty {
                ElemTy::I64 => {
                    let acc = format!("cs{i}");
                    main = main.local(&acc, Ty::I64);
                    body.push(Stmt::assign(LValue::var(&acc), Expr::const_i(0)));
                    body.push(Stmt::simple_for(
                        &iv,
                        Expr::const_i(0),
                        Expr::const_i(a.len as i64),
                        vec![Stmt::assign(
                            LValue::var(&acc),
                            Expr::add(
                                Expr::mul(Expr::var(&acc), Expr::const_i(31)),
                                Expr::load(&name, Expr::var(&iv)),
                            ),
                        )],
                    ));
                    body.push(Stmt::print(Expr::var(&acc)));
                }
                ElemTy::F64 => {
                    let acc = format!("cf{i}");
                    main = main.local(&acc, Ty::F64);
                    body.push(Stmt::assign(LValue::var(&acc), Expr::const_f(0.0)));
                    body.push(Stmt::simple_for(
                        &iv,
                        Expr::const_i(0),
                        Expr::const_i(a.len as i64),
                        vec![Stmt::assign(
                            LValue::var(&acc),
                            Expr::add(Expr::var(&acc), Expr::load(&name, Expr::var(&iv))),
                        )],
                    ));
                    body.push(Stmt::print(Expr::var(&acc)));
                }
            }
        }

        main = main.body(body);
        for h in helpers {
            b = b.function(h);
        }
        b.function(main).build()
    }

    /// Strictly simpler variants of this spec, for greedy shrinking: each
    /// candidate drops one loop, halves one loop's trip count, or halves one
    /// array. The partial order is well-founded (every candidate has fewer
    /// loops, a smaller trip count, or a smaller array), so a greedy
    /// fixpoint over `shrink_candidates` terminates at a local minimum.
    #[must_use]
    pub fn shrink_candidates(&self) -> Vec<ProgramSpec> {
        let mut out = Vec::new();
        // Drop each loop (keep at least one — an empty program tests
        // nothing).
        if self.loops.len() > 1 {
            for j in 0..self.loops.len() {
                let mut s = self.clone();
                s.loops.remove(j);
                out.push(s);
            }
        }
        // Halve each loop's trip count.
        for j in 0..self.loops.len() {
            let mut s = self.clone();
            if s.loops[j].halve_iters() {
                out.push(s);
            }
        }
        // Halve each array.
        for i in 0..self.arrays.len() {
            if self.arrays[i].len > 8 {
                let mut s = self.clone();
                s.arrays[i].len /= 2;
                out.push(s);
            }
        }
        out
    }

    /// Greedily shrinks this spec while `fails` keeps returning `true`,
    /// returning a locally-minimal failing spec (possibly `self` unchanged).
    /// `fails` is re-run on every candidate, so it should be deterministic.
    #[must_use]
    pub fn shrink(&self, mut fails: impl FnMut(&ProgramSpec) -> bool) -> ProgramSpec {
        let mut current = self.clone();
        'outer: loop {
            for cand in current.shrink_candidates() {
                if fails(&cand) {
                    current = cand;
                    continue 'outer;
                }
            }
            return current;
        }
    }

    /// Wraps the lowered program as a [`Workload`] so a generator-discovered
    /// shape can be promoted into the named suite (the counterexample rule:
    /// any divergence the fuzzer finds becomes a named workload).
    #[must_use]
    pub fn into_workload(&self, name: &'static str, class: WorkloadClass) -> Workload {
        let program = self.lower();
        Workload {
            name,
            class,
            program: program.clone(),
            train_program: program,
        }
    }
}

impl ArraySpec {
    fn is_float(&self) -> bool {
        self.ty == ElemTy::F64
    }
}

impl LoopSpec {
    /// Halves this loop's trip count; returns `false` when already minimal.
    fn halve_iters(&mut self) -> bool {
        let iters = match self {
            LoopSpec::Elementwise { iters, .. }
            | LoopSpec::Reduction { iters, .. }
            | LoopSpec::Stencil { iters, .. }
            | LoopSpec::Recurrence { iters, .. }
            | LoopSpec::Scatter { iters, .. }
            | LoopSpec::Gather { iters, .. }
            | LoopSpec::PointerKernel { iters, .. }
            | LoopSpec::SyslibLoop { iters, .. }
            | LoopSpec::Strided { iters, .. }
            | LoopSpec::ChaseLoop { iters, .. }
            | LoopSpec::Branchy { iters, .. }
            | LoopSpec::IoLoop { iters, .. } => iters,
            LoopSpec::Nest { dims, .. } => {
                if let Some(d) = dims.iter_mut().find(|d| **d > 2) {
                    *d /= 2;
                    return true;
                }
                return false;
            }
        };
        if *iters > 4 {
            *iters /= 2;
            true
        } else {
            false
        }
    }
}

/// Per-loop lowering context: owns the unique-name discipline (`i{j}`,
/// accumulators, helper names) and pushes locals onto `main` as it goes.
struct Lowerer<'a> {
    spec: &'a ProgramSpec,
    j: usize,
    main: &'a mut Function,
    helpers: &'a mut Vec<Function>,
}

impl<'a> Lowerer<'a> {
    fn arr(&self, idx: usize) -> (&'a ArraySpec, String) {
        (&self.spec.arrays[idx], format!("g{idx}"))
    }

    fn local(&mut self, prefix: &str, ty: Ty) -> String {
        let name = format!("{prefix}{}", self.j);
        let taken = std::mem::replace(self.main, Function::new("main"));
        *self.main = taken.local(&name, ty);
        name
    }

    /// Constant for the loop's value scale: floats stay small, ints wrap
    /// deterministically anyway.
    fn small_const(&self, a: &ArraySpec) -> Expr {
        if a.is_float() {
            Expr::const_f(0.5)
        } else {
            Expr::const_i(3)
        }
    }

    fn lower_loop(&mut self, l: &LoopSpec) -> Vec<Stmt> {
        match l {
            LoopSpec::Elementwise {
                dst,
                a,
                b,
                op,
                shift,
                iters,
            } => {
                let (da, dn) = self.arr(*dst);
                let (aa, an) = self.arr(*a);
                let (_, bn) = self.arr(*b);
                let n = (*iters).min(da.len).min(self.spec.arrays[*b].len);
                let n = if *shift == 0 { n.min(aa.len) } else { n };
                let i = self.local("i", Ty::I64);
                let read_a = if *shift == 0 {
                    Expr::load(&an, Expr::var(&i))
                } else {
                    Expr::load(
                        &an,
                        Expr::rem(
                            Expr::add(Expr::var(&i), Expr::const_i(*shift)),
                            Expr::const_i(aa.len as i64),
                        ),
                    )
                };
                vec![Stmt::simple_for(
                    &i,
                    Expr::const_i(0),
                    Expr::const_i(n as i64),
                    vec![Stmt::assign(
                        LValue::store(&dn, Expr::var(&i)),
                        Expr::binary(op.binop(da.ty), read_a, Expr::load(&bn, Expr::var(&i))),
                    )],
                )]
            }
            LoopSpec::Reduction { a, b, sub, iters } => {
                let (aa, an) = self.arr(*a);
                let (_, bn) = self.arr(*b);
                let n = (*iters).min(aa.len).min(self.spec.arrays[*b].len);
                let i = self.local("i", Ty::I64);
                let float = aa.is_float();
                let acc = self.local("r", if float { Ty::F64 } else { Ty::I64 });
                let zero = if float {
                    Expr::const_f(0.0)
                } else {
                    Expr::const_i(0)
                };
                let term = Expr::mul(
                    Expr::load(&an, Expr::var(&i)),
                    Expr::load(&bn, Expr::var(&i)),
                );
                let op = if *sub { BinOp::Sub } else { BinOp::Add };
                vec![
                    Stmt::assign(LValue::var(&acc), zero),
                    Stmt::simple_for(
                        &i,
                        Expr::const_i(0),
                        Expr::const_i(n as i64),
                        vec![Stmt::assign(
                            LValue::var(&acc),
                            Expr::binary(op, Expr::var(&acc), term),
                        )],
                    ),
                    Stmt::print(Expr::var(&acc)),
                ]
            }
            LoopSpec::Stencil { dst, src, iters } => {
                let (da, dn) = self.arr(*dst);
                let (sa, sn) = self.arr(*src);
                // i in 1..n with i+1 <= len-1 on both operands.
                let n = (*iters)
                    .min(da.len.saturating_sub(1))
                    .min(sa.len.saturating_sub(1));
                let i = self.local("i", Ty::I64);
                vec![Stmt::simple_for(
                    &i,
                    Expr::const_i(1),
                    Expr::const_i(n as i64),
                    vec![Stmt::assign(
                        LValue::store(&dn, Expr::var(&i)),
                        Expr::add(
                            Expr::load(&sn, Expr::sub(Expr::var(&i), Expr::const_i(1))),
                            Expr::load(&sn, Expr::add(Expr::var(&i), Expr::const_i(1))),
                        ),
                    )],
                )]
            }
            LoopSpec::Recurrence {
                arr,
                mul,
                add,
                iters,
            } => {
                let (aa, an) = self.arr(*arr);
                let n = (*iters).min(aa.len);
                let i = self.local("i", Ty::I64);
                let (mul_e, add_e) = if aa.is_float() {
                    (
                        Expr::const_f(*mul as f64 * 0.25),
                        Expr::const_f(*add as f64 * 0.125),
                    )
                } else {
                    (Expr::const_i(*mul), Expr::const_i(*add))
                };
                vec![Stmt::simple_for(
                    &i,
                    Expr::const_i(1),
                    Expr::const_i(n as i64),
                    vec![Stmt::assign(
                        LValue::store(&an, Expr::var(&i)),
                        Expr::add(
                            Expr::mul(
                                Expr::load(&an, Expr::sub(Expr::var(&i), Expr::const_i(1))),
                                mul_e,
                            ),
                            add_e,
                        ),
                    )],
                )]
            }
            LoopSpec::Scatter {
                dst,
                table,
                w,
                iters,
            } => {
                let (da, dn) = self.arr(*dst);
                let (ta, tn) = self.arr(*table);
                let (_, wn) = self.arr(*w);
                let n = (*iters).min(ta.len).min(self.spec.arrays[*w].len);
                let i = self.local("i", Ty::I64);
                let t = self.local("t", Ty::I64);
                vec![Stmt::simple_for(
                    &i,
                    Expr::const_i(0),
                    Expr::const_i(n as i64),
                    vec![
                        // Euclidean wrap: the JVA's `Rem` follows the sign of
                        // the dividend, and table values go negative, so a
                        // plain `x % len` would index out of bounds and stomp
                        // whatever global sits below `dst` (fuzzer seed 1093).
                        Stmt::assign(
                            LValue::var(&t),
                            Expr::rem(
                                Expr::add(
                                    Expr::rem(
                                        Expr::load(&tn, Expr::var(&i)),
                                        Expr::const_i(da.len as i64),
                                    ),
                                    Expr::const_i(da.len as i64),
                                ),
                                Expr::const_i(da.len as i64),
                            ),
                        ),
                        Stmt::assign(
                            LValue::store(&dn, Expr::var(&t)),
                            Expr::add(
                                Expr::load(&dn, Expr::var(&t)),
                                Expr::load(&wn, Expr::var(&i)),
                            ),
                        ),
                    ],
                )]
            }
            LoopSpec::Gather {
                dst,
                table,
                src,
                iters,
            } => {
                let (da, dn) = self.arr(*dst);
                let (ta, tn) = self.arr(*table);
                let (sa, sn) = self.arr(*src);
                let n = (*iters).min(da.len).min(ta.len);
                let i = self.local("i", Ty::I64);
                vec![Stmt::simple_for(
                    &i,
                    Expr::const_i(0),
                    Expr::const_i(n as i64),
                    // Same euclidean wrap as `Scatter`: negative table values
                    // must not read below `src`.
                    vec![Stmt::assign(
                        LValue::store(&dn, Expr::var(&i)),
                        Expr::load(
                            &sn,
                            Expr::rem(
                                Expr::add(
                                    Expr::rem(
                                        Expr::load(&tn, Expr::var(&i)),
                                        Expr::const_i(sa.len as i64),
                                    ),
                                    Expr::const_i(sa.len as i64),
                                ),
                                Expr::const_i(sa.len as i64),
                            ),
                        ),
                    )],
                )]
            }
            LoopSpec::PointerKernel { a, b, alias, iters } => {
                let (aa, an) = self.arr(*a);
                let (_, bn) = self.arr(*b);
                let b_used = if *alias { *a } else { *b };
                let n = (*iters).min(aa.len).min(self.spec.arrays[b_used].len);
                let kern = format!("kern{}", self.j);
                self.helpers.push(
                    Function::new(&kern)
                        .param("p", Ty::Ptr)
                        .param("q", Ty::Ptr)
                        .param("n", Ty::I64)
                        .local("i", Ty::I64)
                        .body(vec![Stmt::simple_for(
                            "i",
                            Expr::const_i(0),
                            Expr::var("n"),
                            vec![Stmt::assign(
                                LValue::store_ptr("p", Expr::var("i")),
                                Expr::add(
                                    Expr::load_ptr("p", Expr::var("i")),
                                    Expr::load_ptr("q", Expr::var("i")),
                                ),
                            )],
                        )]),
                );
                let q = if *alias { an.clone() } else { bn };
                vec![Stmt::Call {
                    name: kern,
                    args: vec![Expr::addr_of(an), Expr::addr_of(q), Expr::const_i(n as i64)],
                    ret: None,
                }]
            }
            LoopSpec::SyslibLoop { dst, src, iters } => {
                let (da, dn) = self.arr(*dst);
                let (sa, sn) = self.arr(*src);
                let n = (*iters).min(da.len).min(sa.len);
                let i = self.local("i", Ty::I64);
                let t = self.local("f", Ty::F64);
                vec![Stmt::simple_for(
                    &i,
                    Expr::const_i(0),
                    Expr::const_i(n as i64),
                    vec![
                        Stmt::call_ext(
                            "sin",
                            vec![Expr::load(&sn, Expr::var(&i))],
                            Some(LValue::var(&t)),
                        ),
                        Stmt::assign(LValue::store(&dn, Expr::var(&i)), Expr::var(&t)),
                    ],
                )]
            }
            LoopSpec::Nest { dst, dims } => {
                let (da, dn) = self.arr(*dst);
                // Clamp the extents so the linearised index stays in range.
                let mut dims: Vec<usize> = dims.iter().map(|d| (*d).max(1)).collect();
                while dims.iter().product::<usize>() > da.len {
                    let m = dims
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, d)| **d)
                        .map(|(i, _)| i)
                        .unwrap();
                    if dims[m] <= 1 {
                        break;
                    }
                    dims[m] -= 1;
                }
                if dims.iter().product::<usize>() > da.len {
                    return Vec::new(); // degenerate: array too small to nest
                }
                let ivs: Vec<String> = (0..dims.len())
                    .map(|d| self.local(&format!("n{d}x"), Ty::I64))
                    .collect();
                // linear = ((iv0 * d1) + iv1) * d2 + iv2 ...
                let mut linear = Expr::var(&ivs[0]);
                for d in 1..dims.len() {
                    linear = Expr::add(
                        Expr::mul(linear, Expr::const_i(dims[d] as i64)),
                        Expr::var(&ivs[d]),
                    );
                }
                // value = iv0 + 2*iv1 (+ 3*iv2), type-cast for floats.
                let mut value = Expr::var(&ivs[0]);
                for (d, iv) in ivs.iter().enumerate().skip(1) {
                    value = Expr::add(value, Expr::mul(Expr::var(iv), Expr::const_i(d as i64 + 1)));
                }
                if da.is_float() {
                    value = Expr::cast(Ty::F64, value);
                }
                let mut stmt = Stmt::assign(LValue::store(&dn, linear), value);
                for (d, iv) in ivs.iter().enumerate().rev() {
                    stmt = Stmt::simple_for(
                        iv,
                        Expr::const_i(0),
                        Expr::const_i(dims[d] as i64),
                        vec![stmt],
                    );
                }
                vec![stmt]
            }
            LoopSpec::Strided {
                dst,
                iters,
                step,
                down,
            } => {
                let (da, dn) = self.arr(*dst);
                let n = (*iters).min(da.len);
                if n == 0 {
                    return Vec::new();
                }
                let i = self.local("i", Ty::I64);
                let value = if da.is_float() {
                    Expr::cast(Ty::F64, Expr::var(&i))
                } else {
                    Expr::mul(Expr::var(&i), Expr::const_i(7))
                };
                let body = vec![Stmt::assign(LValue::store(&dn, Expr::var(&i)), value)];
                if *down {
                    vec![Stmt::step_for(
                        &i,
                        Expr::const_i(n as i64 - 1),
                        Expr::const_i(-1),
                        -*step,
                        body,
                    )]
                } else {
                    vec![Stmt::step_for(
                        &i,
                        Expr::const_i(0),
                        Expr::const_i(n as i64),
                        *step,
                        body,
                    )]
                }
            }
            LoopSpec::ChaseLoop { probe, iters } => {
                let (pa, pn) = self.arr(*probe);
                let i = self.local("k", Ty::I64);
                let jv = self.local("c", Ty::I64);
                let float = pa.is_float();
                let acc = self.local("h", if float { Ty::F64 } else { Ty::I64 });
                let zero = if float {
                    Expr::const_f(0.0)
                } else {
                    Expr::const_i(0)
                };
                vec![
                    Stmt::assign(LValue::var(&i), Expr::const_i(0)),
                    Stmt::assign(LValue::var(&jv), Expr::const_i(0)),
                    Stmt::assign(LValue::var(&acc), zero),
                    Stmt::While {
                        cond: Cond::new(Expr::var(&i), CmpOp::Lt, Expr::const_i(*iters as i64)),
                        body: vec![
                            Stmt::assign(
                                LValue::var(&jv),
                                Expr::rem(
                                    Expr::add(
                                        Expr::mul(Expr::var(&jv), Expr::const_i(5)),
                                        Expr::const_i(3),
                                    ),
                                    Expr::const_i(pa.len as i64),
                                ),
                            ),
                            Stmt::assign(
                                LValue::var(&acc),
                                Expr::add(Expr::var(&acc), Expr::load(&pn, Expr::var(&jv))),
                            ),
                            Stmt::assign(
                                LValue::var(&i),
                                Expr::add(Expr::var(&i), Expr::const_i(1)),
                            ),
                        ],
                    },
                    Stmt::print(Expr::var(&acc)),
                ]
            }
            LoopSpec::Branchy {
                dst,
                src,
                threshold,
                iters,
            } => {
                let (da, dn) = self.arr(*dst);
                let (sa, sn) = self.arr(*src);
                let n = (*iters).min(da.len).min(sa.len);
                let i = self.local("i", Ty::I64);
                let c = self.small_const(da);
                let thr = if sa.is_float() {
                    Expr::const_f(*threshold as f64 / 64.0)
                } else {
                    Expr::const_i(*threshold)
                };
                vec![Stmt::simple_for(
                    &i,
                    Expr::const_i(0),
                    Expr::const_i(n as i64),
                    vec![Stmt::If {
                        cond: Cond::new(Expr::load(&sn, Expr::var(&i)), CmpOp::Lt, thr),
                        then: vec![Stmt::assign(
                            LValue::store(&dn, Expr::var(&i)),
                            Expr::add(Expr::load(&sn, Expr::var(&i)), c.clone()),
                        )],
                        els: vec![Stmt::assign(
                            LValue::store(&dn, Expr::var(&i)),
                            Expr::sub(Expr::load(&sn, Expr::var(&i)), c),
                        )],
                    }],
                )]
            }
            LoopSpec::IoLoop { src, iters } => {
                let (sa, sn) = self.arr(*src);
                let n = (*iters).min(sa.len).min(8);
                let i = self.local("i", Ty::I64);
                vec![Stmt::simple_for(
                    &i,
                    Expr::const_i(0),
                    Expr::const_i(n as i64),
                    vec![Stmt::print(Expr::load(&sn, Expr::var(&i)))],
                )]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            assert_eq!(ProgramSpec::generate(seed), ProgramSpec::generate(seed));
        }
        assert_ne!(ProgramSpec::generate(1), ProgramSpec::generate(2));
    }

    #[test]
    fn every_spec_lowers_to_a_buildable_program() {
        for seed in 0..64u64 {
            let spec = ProgramSpec::generate(seed);
            let program = spec.lower();
            assert!(program.function("main").is_some(), "{spec}");
            assert_eq!(program.globals.len(), spec.arrays.len(), "{spec}");
        }
    }

    #[test]
    fn shrink_candidates_are_strictly_simpler() {
        let spec = ProgramSpec::generate(7);
        for cand in spec.shrink_candidates() {
            let simpler = cand.loops.len() < spec.loops.len()
                || cand
                    .arrays
                    .iter()
                    .zip(&spec.arrays)
                    .any(|(c, o)| c.len < o.len)
                || cand != spec;
            assert!(simpler);
        }
    }

    #[test]
    fn greedy_shrink_reaches_a_fixpoint() {
        let spec = ProgramSpec::generate(3);
        // "Fails" whenever more than one loop remains: the shrinker must
        // reach exactly one loop and stop.
        let min = spec.shrink(|s| s.loops.len() > 1);
        assert_eq!(min.loops.len(), 1);
        // A predicate nothing satisfies leaves the spec unchanged.
        assert_eq!(spec.shrink(|_| false), spec);
    }
}
