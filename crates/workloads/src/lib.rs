//! # janus-workloads — the synthetic SPEC CPU 2006 stand-ins
//!
//! The paper evaluates Janus on SPEC CPU 2006, which cannot be redistributed
//! or compiled for the Janus Virtual Architecture. This crate provides 25
//! synthetic benchmark programs, one per SPEC benchmark used in the paper's
//! Figure 6, each modelled on the published loop-category mix and hot-loop
//! character of the original: the floating-point codes are dominated by
//! DOALL stencils and reductions (with bwaves calling `pow` from the shared
//! library inside its hot loop, and several codes walking arrays through
//! pointer parameters so that runtime bounds checks are required), while the
//! integer and C++ codes are dominated by pointer chasing, indirect calls,
//! IO and irregular control flow that make their loops incompatible with
//! DOALL parallelisation.
//!
//! Each workload carries a `train` and a `ref` input scale; profiling runs
//! use the training scale, measured runs the reference scale.
//!
//! Beyond the 25 SPEC stand-ins, [`speculative_benchmarks`] names four
//! may-dependent (DOACROSS-shaped) kernels — histogram scatter-add, sparse
//! field update, gather/scatter and a sliding-window recurrence — whose hot
//! loops the seed pipeline must serialise; they exist to exercise the
//! `janus-spec` iteration-level speculation engine and feed the `table3`
//! abort-rate figure.
//!
//! The names refer to the SPEC benchmarks only to indicate *which published
//! behaviour each synthetic program imitates*; none of the original source
//! code or data is included.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gen;
pub mod suite;

pub use gen::{ArraySpec, ElemTy, GenOp, LoopSpec, ProgramSpec};
pub use suite::{
    all_names, fuzz_regressions, parallel_benchmarks, program_by_name, spec_suite,
    speculative_benchmarks, suite, workload, Workload, WorkloadClass,
};
