//! The 25 synthetic benchmark programs.

use janus_compile::ast::{
    CmpOp, Cond, Expr, Function, GlobalArray, Init, LValue, Program, Stmt, Ty,
};

/// Rough behavioural class of a workload, used in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// Dominated by DOALL floating-point loops (parallelisable by Janus).
    FloatDoall,
    /// Floating-point but dominated by loops needing runtime checks.
    FloatDynamic,
    /// Integer / C++-like code dominated by incompatible loops.
    IntegerIrregular,
    /// Dominated by a may-dependent (DOACROSS-shaped) loop — data-dependent
    /// subscripts or sliding windows — that only the iteration-level
    /// speculation engine (`janus-spec`) can parallelise.
    MayDependent,
}

/// One benchmark program plus its input scales.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (SPEC-style, e.g. `"470.lbm"`).
    pub name: &'static str,
    /// Behavioural class.
    pub class: WorkloadClass,
    /// The program at reference scale.
    pub program: Program,
    /// The program at training scale (smaller arrays / fewer repeats).
    pub train_program: Program,
}

impl Workload {
    /// Returns `true` if the paper parallelises this benchmark (the nine bars
    /// of Figure 7).
    #[must_use]
    pub fn is_parallel_candidate(&self) -> bool {
        parallel_benchmarks().contains(&self.name)
    }

    /// Returns `true` if this workload's hot loop needs iteration-level
    /// speculation (the `janus-spec` engine) to parallelise.
    #[must_use]
    pub fn is_speculative_candidate(&self) -> bool {
        speculative_benchmarks().contains(&self.name)
    }
}

/// The nine benchmarks the paper parallelises in Figures 7–12.
#[must_use]
pub fn parallel_benchmarks() -> [&'static str; 9] {
    [
        "410.bwaves",
        "433.milc",
        "436.cactusADM",
        "437.leslie3d",
        "459.GemsFDTD",
        "462.libquantum",
        "464.h264ref",
        "470.lbm",
        "482.sphinx3",
    ]
}

/// The may-dependent (DOACROSS-shaped) kernels that the seed pipeline runs
/// serially and the `janus-spec` engine parallelises speculatively. Not part
/// of the paper's 25-benchmark suite.
#[must_use]
pub fn speculative_benchmarks() -> [&'static str; 4] {
    [
        "spec.histogram",
        "spec.sparse-update",
        "spec.gather-scatter",
        "spec.doacross-window",
    ]
}

/// Workloads promoted from differential-fuzzer counterexamples. The
/// promotion rule: every minimal counterexample `janus_bench::fuzz` finds
/// becomes a named workload here plus a named regression test, so the
/// fuzzer only ever finds each bug once. Not part of the paper's suite.
///
/// * `fuzz.nan-scatter` — generator seed 1093 (shrunk): an aliasing
///   pointer kernel feeding a shifted element-wise subtraction that drives
///   an index table negative, consumed by a signed scatter-add, with an
///   untouched bystander float array and a deliberate `0.0 / 0.0` print.
///   Caught two bugs at once: `outputs_match` rejected bit-identical NaN
///   streams, and the generated scatter's sign-following `%` indexed out
///   of bounds, stomping the global below the destination array.
#[must_use]
pub fn fuzz_regressions() -> [&'static str; 1] {
    ["fuzz.nan-scatter"]
}

/// Builds every speculative workload.
#[must_use]
pub fn spec_suite() -> Vec<Workload> {
    speculative_benchmarks()
        .into_iter()
        .map(|n| workload(n).unwrap())
        .collect()
}

/// Names of every workload in the suite (Figure 6's x-axis).
#[must_use]
pub fn all_names() -> Vec<&'static str> {
    vec![
        "400.perlbench",
        "401.bzip2",
        "403.gcc",
        "410.bwaves",
        "429.mcf",
        "433.milc",
        "434.zeusmp",
        "435.gromacs",
        "436.cactusADM",
        "437.leslie3d",
        "444.namd",
        "445.gobmk",
        "447.dealII",
        "450.soplex",
        "453.povray",
        "454.calculix",
        "456.hmmer",
        "458.sjeng",
        "459.GemsFDTD",
        "462.libquantum",
        "464.h264ref",
        "470.lbm",
        "473.astar",
        "482.sphinx3",
        "483.xalancbmk",
    ]
}

/// Builds the whole suite.
#[must_use]
pub fn suite() -> Vec<Workload> {
    all_names()
        .into_iter()
        .map(|n| workload(n).unwrap())
        .collect()
}

/// The reference-scale program of a named workload.
#[must_use]
pub fn program_by_name(name: &str) -> Option<Program> {
    workload(name).map(|w| w.program)
}

/// Builds one workload by name.
#[must_use]
pub fn workload(name: &str) -> Option<Workload> {
    let (class, build): (WorkloadClass, fn(u64) -> Program) = match name {
        "410.bwaves" => (WorkloadClass::FloatDynamic, bwaves),
        "433.milc" => (WorkloadClass::FloatDynamic, milc),
        "436.cactusADM" => (WorkloadClass::FloatDynamic, cactus),
        "437.leslie3d" => (WorkloadClass::FloatDynamic, leslie3d),
        "459.GemsFDTD" => (WorkloadClass::FloatDynamic, gems_fdtd),
        "462.libquantum" => (WorkloadClass::FloatDoall, libquantum),
        "464.h264ref" => (WorkloadClass::IntegerIrregular, h264ref),
        "470.lbm" => (WorkloadClass::FloatDoall, lbm),
        "482.sphinx3" => (WorkloadClass::FloatDynamic, sphinx3),
        "434.zeusmp" | "435.gromacs" | "444.namd" | "454.calculix" => {
            (WorkloadClass::FloatDynamic, mixed_float_irregular)
        }
        "400.perlbench" | "403.gcc" | "445.gobmk" | "458.sjeng" | "483.xalancbmk"
        | "453.povray" | "447.dealII" => (WorkloadClass::IntegerIrregular, irregular_integer),
        "401.bzip2" | "429.mcf" | "456.hmmer" | "473.astar" | "450.soplex" => {
            (WorkloadClass::IntegerIrregular, pointer_chasing_integer)
        }
        "spec.histogram" => (WorkloadClass::MayDependent, spec_histogram),
        "spec.sparse-update" => (WorkloadClass::MayDependent, spec_sparse_update),
        "spec.gather-scatter" => (WorkloadClass::MayDependent, spec_gather_scatter),
        "spec.doacross-window" => (WorkloadClass::MayDependent, spec_doacross_window),
        "fuzz.nan-scatter" => (WorkloadClass::MayDependent, fuzz_nan_scatter),
        _ => return None,
    };
    let seed = name.bytes().map(u64::from).sum::<u64>();
    let ref_scale = 16 + seed % 7;
    let train_scale = 3 + seed % 3;
    let mut program = build(ref_scale);
    program.name = name.to_string();
    let mut train_program = build(train_scale);
    train_program.name = format!("{name}.train");
    Some(Workload {
        name: all_names()
            .into_iter()
            .chain(speculative_benchmarks())
            .chain(fuzz_regressions())
            .find(|n| *n == name)?,
        class,
        program,
        train_program,
    })
}

// ----------------------------------------------------------------------------
// Building blocks
// ----------------------------------------------------------------------------

fn f64_array(name: &str, len: usize, seed: i64) -> GlobalArray {
    GlobalArray {
        name: name.to_string(),
        ty: Ty::F64,
        len,
        init: Init::Pattern {
            mul: 37 + seed,
            add: 11 * seed + 3,
            modulus: 1009,
        },
    }
}

fn i64_array(name: &str, len: usize, seed: i64) -> GlobalArray {
    GlobalArray {
        name: name.to_string(),
        ty: Ty::I64,
        len,
        init: Init::Pattern {
            mul: 17 + seed,
            add: 7 * seed + 1,
            modulus: len.max(2) as i64,
        },
    }
}

/// `dst[i] = a*x[i] + y[i]` over global arrays (static DOALL).
fn axpy_loop(dst: &str, x: &str, y: &str, n: i64, a: f64) -> Stmt {
    Stmt::simple_for(
        "i",
        Expr::const_i(0),
        Expr::const_i(n),
        vec![Stmt::assign(
            LValue::store(dst, Expr::var("i")),
            Expr::add(
                Expr::mul(Expr::load(x, Expr::var("i")), Expr::const_f(a)),
                Expr::load(y, Expr::var("i")),
            ),
        )],
    )
}

/// `s += x[i]*y[i]` reduction loop (static DOALL with reduction).
fn dot_loop(x: &str, y: &str, n: i64) -> Vec<Stmt> {
    vec![
        Stmt::assign(LValue::var("s"), Expr::const_f(0.0)),
        Stmt::simple_for(
            "i",
            Expr::const_i(0),
            Expr::const_i(n),
            vec![Stmt::assign(
                LValue::var("s"),
                Expr::add(
                    Expr::var("s"),
                    Expr::mul(Expr::load(x, Expr::var("i")), Expr::load(y, Expr::var("i"))),
                ),
            )],
        ),
        Stmt::print(Expr::var("s")),
    ]
}

/// A pointer-parameterised element-wise kernel (dynamic DOALL: bounds checks).
fn pointer_kernel(name: &str, extra_reads: usize) -> Function {
    let mut value = Expr::load_ptr("s", Expr::var("i"));
    for k in 0..extra_reads {
        value = Expr::add(
            value,
            Expr::mul(
                Expr::load_ptr(if k % 2 == 0 { "p" } else { "q" }, Expr::var("i")),
                Expr::const_f(0.25 + k as f64 * 0.125),
            ),
        );
    }
    Function::new(name)
        .param("d", Ty::Ptr)
        .param("s", Ty::Ptr)
        .param("p", Ty::Ptr)
        .param("n", Ty::I64)
        .local("q", Ty::Ptr)
        .local("i", Ty::I64)
        .body(vec![
            Stmt::assign(LValue::var("q"), Expr::var("p")),
            Stmt::simple_for(
                "i",
                Expr::const_i(0),
                Expr::var("n"),
                vec![Stmt::assign(LValue::store_ptr("d", Expr::var("i")), value)],
            ),
        ])
}

/// A recurrence loop `a[i] = a[i-1]*c + b[i]` (static dependence).
fn recurrence_loop(a: &str, b: &str, n: i64) -> Stmt {
    Stmt::simple_for(
        "i",
        Expr::const_i(1),
        Expr::const_i(n),
        vec![Stmt::assign(
            LValue::store(a, Expr::var("i")),
            Expr::add(
                Expr::mul(
                    Expr::load(a, Expr::sub(Expr::var("i"), Expr::const_i(1))),
                    Expr::const_f(0.5),
                ),
                Expr::load(b, Expr::var("i")),
            ),
        )],
    )
}

/// A pointer-chasing loop over an index array (incompatible: irregular
/// induction through memory).
fn pointer_chase_loop(next: &str, steps: i64) -> Vec<Stmt> {
    vec![
        Stmt::assign(LValue::var("p"), Expr::const_i(0)),
        Stmt::assign(LValue::var("k"), Expr::const_i(0)),
        Stmt::While {
            cond: Cond::new(Expr::var("k"), CmpOp::Lt, Expr::const_i(steps)),
            body: vec![
                Stmt::assign(LValue::var("p"), Expr::load(next, Expr::var("p"))),
                Stmt::assign(
                    LValue::var("acc"),
                    Expr::add(Expr::var("acc"), Expr::var("p")),
                ),
                Stmt::assign(
                    LValue::var("k"),
                    Expr::add(Expr::var("k"), Expr::const_i(1)),
                ),
            ],
        },
        Stmt::print(Expr::var("acc")),
    ]
}

/// A loop that prints inside the body (incompatible: IO).
fn io_loop(n: i64) -> Stmt {
    Stmt::simple_for(
        "i",
        Expr::const_i(0),
        Expr::const_i(n),
        vec![Stmt::print(Expr::var("i"))],
    )
}

/// A loop making indirect calls through a function table (incompatible).
fn indirect_call_loop(table: &str, n: i64) -> Stmt {
    Stmt::simple_for(
        "i",
        Expr::const_i(0),
        Expr::const_i(n),
        vec![Stmt::CallIndirect {
            table: table.to_string(),
            index: Expr::rem(Expr::var("i"), Expr::const_i(2)),
        }],
    )
}

// ----------------------------------------------------------------------------
// The nine parallelisable benchmarks
// ----------------------------------------------------------------------------

/// 470.lbm: one huge element-wise stencil sweep dominates execution (~98%).
fn lbm(scale: u64) -> Program {
    let n = (scale * 1200) as i64;
    Program::builder("470.lbm")
        .global(f64_array("src", n as usize, 1))
        .global(f64_array("dst", n as usize, 2))
        .global(f64_array("flags", n as usize, 3))
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("t", Ty::I64)
                .local("s", Ty::F64)
                .body(vec![
                    Stmt::step_for(
                        "t",
                        Expr::const_i(0),
                        Expr::const_i(4),
                        1,
                        vec![Stmt::simple_for(
                            "i",
                            Expr::const_i(0),
                            Expr::const_i(n),
                            vec![Stmt::assign(
                                LValue::store("dst", Expr::var("i")),
                                Expr::add(
                                    Expr::mul(
                                        Expr::load("src", Expr::var("i")),
                                        Expr::const_f(0.85),
                                    ),
                                    Expr::mul(
                                        Expr::load("flags", Expr::var("i")),
                                        Expr::const_f(0.15),
                                    ),
                                ),
                            )],
                        )],
                    ),
                    Stmt::print(Expr::load("dst", Expr::const_i(17))),
                ]),
        )
        .build()
}

/// 462.libquantum: big DOALL gate-application loops plus a reduction.
fn libquantum(scale: u64) -> Program {
    let n = (scale * 1000) as i64;
    let mut body = vec![
        Stmt::simple_for(
            "i",
            Expr::const_i(0),
            Expr::const_i(n),
            vec![Stmt::assign(
                LValue::store("amp", Expr::var("i")),
                Expr::mul(Expr::load("amp", Expr::var("i")), Expr::const_f(0.9999)),
            )],
        ),
        Stmt::simple_for(
            "i",
            Expr::const_i(0),
            Expr::const_i(n),
            vec![Stmt::assign(
                LValue::store("state", Expr::var("i")),
                Expr::add(
                    Expr::load("state", Expr::var("i")),
                    Expr::load("amp", Expr::var("i")),
                ),
            )],
        ),
    ];
    body.extend(dot_loop("amp", "state", n));
    Program::builder("462.libquantum")
        .global(f64_array("amp", n as usize, 5))
        .global(f64_array("state", n as usize, 6))
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("s", Ty::F64)
                .body(body),
        )
        .build()
}

/// 410.bwaves: the hot loop calls `pow` from the shared library and walks
/// arrays through pointer parameters (speculation + bounds checks).
fn bwaves(scale: u64) -> Program {
    let n = (scale * 1500) as i64;
    Program::builder("410.bwaves")
        .global(f64_array("u", n as usize, 7))
        .global(f64_array("v", n as usize, 8))
        .global(f64_array("w", n as usize, 9))
        .function(
            Function::new("flux")
                .param("d", Ty::Ptr)
                .param("s", Ty::Ptr)
                .param("n", Ty::I64)
                .local("i", Ty::I64)
                .local("t", Ty::F64)
                .body(vec![Stmt::simple_for(
                    "i",
                    Expr::const_i(0),
                    Expr::var("n"),
                    vec![
                        Stmt::call_ext(
                            "pow",
                            vec![Expr::load_ptr("s", Expr::var("i")), Expr::const_f(1.4)],
                            Some(LValue::var("t")),
                        ),
                        Stmt::assign(LValue::store_ptr("d", Expr::var("i")), Expr::var("t")),
                    ],
                )]),
        )
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("s", Ty::F64)
                .body({
                    let mut b = vec![
                        Stmt::Call {
                            name: "flux".into(),
                            args: vec![Expr::addr_of("v"), Expr::addr_of("u"), Expr::const_i(n)],
                            ret: None,
                        },
                        axpy_loop("w", "v", "u", n, 0.25),
                    ];
                    b.extend(dot_loop("w", "v", n));
                    b
                }),
        )
        .build()
}

/// 436.cactusADM: a 3-array pointer stencil needing a few bounds checks.
fn cactus(scale: u64) -> Program {
    let n = (scale * 2200) as i64;
    Program::builder("436.cactusADM")
        .global(f64_array("g11", n as usize, 10))
        .global(f64_array("g12", n as usize, 11))
        .global(f64_array("k11", n as usize, 12))
        .function(pointer_kernel("adm_kernel", 2))
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("s", Ty::F64)
                .body({
                    let mut b = vec![Stmt::Call {
                        name: "adm_kernel".into(),
                        args: vec![
                            Expr::addr_of("k11"),
                            Expr::addr_of("g11"),
                            Expr::addr_of("g12"),
                            Expr::const_i(n),
                        ],
                        ret: None,
                    }];
                    b.extend(dot_loop("k11", "g11", n));
                    b
                }),
        )
        .build()
}

/// 459.GemsFDTD: many field-update loops, each over several pointer-based
/// arrays, so many bounds checks per loop.
fn gems_fdtd(scale: u64) -> Program {
    let n = (scale * 1600) as i64;
    let mut main_body = Vec::new();
    for (d, s) in [("ex", "hy"), ("ey", "hz"), ("ez", "hx")] {
        main_body.push(Stmt::Call {
            name: "update".into(),
            args: vec![
                Expr::addr_of(d),
                Expr::addr_of(s),
                Expr::addr_of("coef"),
                Expr::const_i(n),
            ],
            ret: None,
        });
    }
    main_body.extend(dot_loop("ex", "ey", n));
    Program::builder("459.GemsFDTD")
        .global(f64_array("ex", n as usize, 13))
        .global(f64_array("ey", n as usize, 14))
        .global(f64_array("ez", n as usize, 15))
        .global(f64_array("hx", n as usize, 16))
        .global(f64_array("hy", n as usize, 17))
        .global(f64_array("hz", n as usize, 18))
        .global(f64_array("coef", n as usize, 19))
        .function(pointer_kernel("update", 3))
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("s", Ty::F64)
                .body(main_body),
        )
        .build()
}

/// 433.milc: many short loops invoked many times, so thread start/finish
/// overhead dominates; plus a sequential recurrence phase (Amdahl tail).
fn milc(scale: u64) -> Program {
    let n = (scale * 24) as i64;
    let reps = 60;
    Program::builder("433.milc")
        .global(f64_array("link", n as usize, 20))
        .global(f64_array("mom", n as usize, 21))
        .global(f64_array("force", n as usize, 22))
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("r", Ty::I64)
                .local("s", Ty::F64)
                .body({
                    let mut b = vec![Stmt::step_for(
                        "r",
                        Expr::const_i(0),
                        Expr::const_i(reps),
                        1,
                        vec![
                            axpy_loop("force", "link", "mom", n, 0.1),
                            recurrence_loop("mom", "force", n),
                        ],
                    )];
                    b.extend(dot_loop("force", "link", n));
                    b
                }),
        )
        .build()
}

/// 437.leslie3d: loop candidates have low iteration counts and a large
/// sequential recurrence fraction.
fn leslie3d(scale: u64) -> Program {
    let n = (scale * 40) as i64;
    Program::builder("437.leslie3d")
        .global(f64_array("q", n as usize, 23))
        .global(f64_array("flux", n as usize, 24))
        .global(f64_array("visc", n as usize, 25))
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("r", Ty::I64)
                .local("s", Ty::F64)
                .body({
                    let mut b = vec![Stmt::step_for(
                        "r",
                        Expr::const_i(0),
                        Expr::const_i(30),
                        1,
                        vec![
                            axpy_loop("flux", "q", "visc", n, 0.3),
                            recurrence_loop("q", "flux", n),
                            recurrence_loop("visc", "q", n),
                        ],
                    )];
                    b.extend(dot_loop("flux", "visc", n));
                    b
                }),
        )
        .build()
}

/// 482.sphinx3: a modest DOALL fraction plus heavy sequential scoring code.
fn sphinx3(scale: u64) -> Program {
    let n = (scale * 1400) as i64;
    Program::builder("482.sphinx3")
        .global(f64_array("feat", n as usize, 26))
        .global(f64_array("score", n as usize, 27))
        .global(f64_array("gauden", n as usize, 28))
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("s", Ty::F64)
                .body({
                    let mut b = vec![
                        axpy_loop("score", "feat", "gauden", n, 0.7),
                        recurrence_loop("gauden", "score", n),
                        recurrence_loop("score", "feat", n),
                    ];
                    b.extend(dot_loop("score", "gauden", n));
                    b
                }),
        )
        .build()
}

/// 464.h264ref: branchy integer code with indirect calls and only small
/// DOALL loops, so DynamoRIO overhead dominates.
fn h264ref(scale: u64) -> Program {
    let n = (scale * 40) as i64;
    Program::builder("464.h264ref")
        .global(i64_array("blocks", n as usize, 29))
        .global(i64_array("mv", n as usize, 30))
        .global_i64("table", 2)
        .global(f64_array("sad", n as usize, 31))
        .global(f64_array("cost", n as usize, 32))
        .function(Function::new("mode0").body(vec![Stmt::assign(
            LValue::store("mv", Expr::const_i(0)),
            Expr::add(Expr::load("mv", Expr::const_i(0)), Expr::const_i(1)),
        )]))
        .function(Function::new("mode1").body(vec![Stmt::assign(
            LValue::store("mv", Expr::const_i(1)),
            Expr::add(Expr::load("mv", Expr::const_i(1)), Expr::const_i(2)),
        )]))
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("k", Ty::I64)
                .local("p", Ty::I64)
                .local("acc", Ty::I64)
                .local("s", Ty::F64)
                .body({
                    let mut b = vec![
                        Stmt::assign(
                            LValue::store("table", Expr::const_i(0)),
                            Expr::AddrOfFn("mode0".into()),
                        ),
                        Stmt::assign(
                            LValue::store("table", Expr::const_i(1)),
                            Expr::AddrOfFn("mode1".into()),
                        ),
                        indirect_call_loop("table", n),
                        Stmt::simple_for(
                            "i",
                            Expr::const_i(0),
                            Expr::const_i(n),
                            vec![Stmt::If {
                                cond: Cond::new(
                                    Expr::rem(
                                        Expr::load("blocks", Expr::var("i")),
                                        Expr::const_i(3),
                                    ),
                                    CmpOp::Eq,
                                    Expr::const_i(0),
                                ),
                                then: vec![Stmt::assign(
                                    LValue::var("acc"),
                                    Expr::add(Expr::var("acc"), Expr::load("mv", Expr::var("i"))),
                                )],
                                els: vec![Stmt::assign(
                                    LValue::var("acc"),
                                    Expr::add(Expr::var("acc"), Expr::const_i(1)),
                                )],
                            }],
                        ),
                        axpy_loop("cost", "sad", "cost", n, 0.5),
                        Stmt::print(Expr::var("acc")),
                    ];
                    b.extend(dot_loop("cost", "sad", n));
                    b
                }),
        )
        .build()
}

// ----------------------------------------------------------------------------
// May-dependent (speculative DOACROSS) kernels
// ----------------------------------------------------------------------------

/// An i64 index array with values in `[0, modulus)`.
fn index_array(name: &str, len: usize, seed: i64, modulus: i64) -> GlobalArray {
    GlobalArray {
        name: name.to_string(),
        ty: Ty::I64,
        len,
        init: Init::Pattern {
            mul: 13 + seed,
            add: 5 * seed + 2,
            modulus: modulus.max(2),
        },
    }
}

/// `spec.histogram`: `hist[idx[i]] += w[i]` — a scatter-add through a
/// data-dependent subscript. Collisions exist (the bin count is below the
/// iteration count) but are spread far apart, so speculative iterations
/// rarely conflict inside the in-flight window.
fn spec_histogram(scale: u64) -> Program {
    let n = (scale * 420) as i64;
    let bins = (n * 3 / 4).max(8);
    let mut body = vec![Stmt::simple_for(
        "i",
        Expr::const_i(0),
        Expr::const_i(n),
        vec![Stmt::assign(
            LValue::store("hist", Expr::load("idx", Expr::var("i"))),
            Expr::add(
                Expr::load("hist", Expr::load("idx", Expr::var("i"))),
                Expr::load("w", Expr::var("i")),
            ),
        )],
    )];
    body.extend(dot_loop("hist", "hist", bins));
    Program::builder("spec.histogram")
        .global(index_array("idx", n as usize, 41, bins))
        .global(f64_array("w", n as usize, 42))
        .global(f64_array("hist", bins as usize, 43))
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("s", Ty::F64)
                .body(body),
        )
        .build()
}

/// `spec.sparse-update`: `cell[map[i]] = cell[map[i]] * 0.6 + inc[i]` — a
/// read-modify-write sparse field update; every cell is revisited a few
/// times, at long distances.
fn spec_sparse_update(scale: u64) -> Program {
    let n = (scale * 380) as i64;
    let cells = (n / 2).max(8);
    let mut body = vec![Stmt::simple_for(
        "i",
        Expr::const_i(0),
        Expr::const_i(n),
        vec![Stmt::assign(
            LValue::store("cell", Expr::load("map", Expr::var("i"))),
            Expr::add(
                Expr::mul(
                    Expr::load("cell", Expr::load("map", Expr::var("i"))),
                    Expr::const_f(0.6),
                ),
                Expr::load("inc", Expr::var("i")),
            ),
        )],
    )];
    body.extend(dot_loop("cell", "cell", cells));
    Program::builder("spec.sparse-update")
        .global(index_array("map", n as usize, 44, cells))
        .global(f64_array("inc", n as usize, 45))
        .global(f64_array("cell", cells as usize, 46))
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("s", Ty::F64)
                .body(body),
        )
        .build()
}

/// `spec.gather-scatter`: `dst[p[i]] += src[q[i]]` — independent gather and
/// scatter permutations, the classic irregular kernel no bounds check can
/// discharge.
fn spec_gather_scatter(scale: u64) -> Program {
    let n = (scale * 340) as i64;
    let mut body = vec![Stmt::simple_for(
        "i",
        Expr::const_i(0),
        Expr::const_i(n),
        vec![Stmt::assign(
            LValue::store("dst", Expr::load("p", Expr::var("i"))),
            Expr::add(
                Expr::load("dst", Expr::load("p", Expr::var("i"))),
                Expr::load("src", Expr::load("q", Expr::var("i"))),
            ),
        )],
    )];
    body.extend(dot_loop("dst", "src", n));
    Program::builder("spec.gather-scatter")
        .global(index_array("p", n as usize, 47, n))
        .global(index_array("q", n as usize, 48, n))
        .global(f64_array("src", n as usize, 49))
        .global(f64_array("dst", n as usize, 50))
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("s", Ty::F64)
                .body(body),
        )
        .build()
}

/// `spec.doacross-window`: `ring[i % 6] += a[i]` — a sliding-window
/// recurrence with cross-iteration dependences at distance 6, *inside* the
/// speculative in-flight window: iterations genuinely conflict, abort and
/// retry, and the abort counters in the run report are non-trivial.
fn spec_doacross_window(scale: u64) -> Program {
    let n = (scale * 300) as i64;
    let window = 6i64;
    let mut body = vec![Stmt::simple_for(
        "i",
        Expr::const_i(0),
        Expr::const_i(n),
        vec![Stmt::assign(
            LValue::store("ring", Expr::rem(Expr::var("i"), Expr::const_i(window))),
            Expr::add(
                Expr::load("ring", Expr::rem(Expr::var("i"), Expr::const_i(window))),
                Expr::load("a", Expr::var("i")),
            ),
        )],
    )];
    body.extend(dot_loop("ring", "ring", window));
    Program::builder("spec.doacross-window")
        .global(f64_array("a", n as usize, 51))
        .global(f64_array("ring", window as usize, 52))
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("s", Ty::F64)
                .body(body),
        )
        .build()
}

/// `fuzz.nan-scatter`: the shrunk differential-fuzzer counterexample from
/// generator seed 1093, promoted per the rule on [`fuzz_regressions`]. An
/// aliasing pointer kernel doubles `acc` in place, a shifted element-wise
/// subtraction drives `table` negative, and a scatter-add consumes those
/// signed values through a euclidean wrap (`((x % n) + n) % n` — the
/// JVA's `Rem` follows the dividend's sign, so the single-`%` version of
/// this workload wrote below `acc` and corrupted `bystander`). The
/// deliberate `0.0 / 0.0` print pins NaN handling in the output-equality
/// check: both legs print NaN and must still count as matching.
fn fuzz_nan_scatter(scale: u64) -> Program {
    let tn = (scale * 7) as i64; // table / weight length
    let an = (scale * 8) as i64; // scatter destination length (differs from tn)
    let wrap = |x: Expr| {
        Expr::rem(
            Expr::add(Expr::rem(x, Expr::const_i(an)), Expr::const_i(an)),
            Expr::const_i(an),
        )
    };
    let body = vec![
        // Aliasing pointer kernel: kern(&acc, &acc, an) => acc[i] += acc[i].
        Stmt::Call {
            name: "kern".to_string(),
            args: vec![
                Expr::addr_of("acc"),
                Expr::addr_of("acc"),
                Expr::const_i(an),
            ],
            ret: None,
        },
        // Shifted element-wise subtraction pushes table values negative.
        Stmt::simple_for(
            "i",
            Expr::const_i(0),
            Expr::const_i(tn),
            vec![Stmt::assign(
                LValue::store("table", Expr::var("i")),
                Expr::sub(
                    Expr::load(
                        "table",
                        Expr::rem(
                            Expr::add(Expr::var("i"), Expr::const_i(4)),
                            Expr::const_i(tn),
                        ),
                    ),
                    Expr::load(
                        "acc",
                        Expr::rem(
                            Expr::add(Expr::var("i"), Expr::const_i(4)),
                            Expr::const_i(an),
                        ),
                    ),
                ),
            )],
        ),
        // Scatter-add through the signed, euclidean-wrapped subscript.
        Stmt::simple_for(
            "i",
            Expr::const_i(0),
            Expr::const_i(tn),
            vec![
                Stmt::assign(LValue::var("t"), wrap(Expr::load("table", Expr::var("i")))),
                Stmt::assign(
                    LValue::store("acc", Expr::var("t")),
                    Expr::add(
                        Expr::load("acc", Expr::var("t")),
                        Expr::load("table", Expr::var("i")),
                    ),
                ),
            ],
        ),
        // The NaN pin: IEEE 0/0, printed from both execution legs.
        Stmt::print(Expr::div(Expr::const_f(0.0), Expr::const_f(0.0))),
        // Integer checksum over the scatter destination.
        Stmt::assign(LValue::var("cs"), Expr::const_i(0)),
        Stmt::simple_for(
            "i",
            Expr::const_i(0),
            Expr::const_i(an),
            vec![Stmt::assign(
                LValue::var("cs"),
                Expr::add(
                    Expr::mul(Expr::var("cs"), Expr::const_i(31)),
                    Expr::load("acc", Expr::var("i")),
                ),
            )],
        ),
        Stmt::print(Expr::var("cs")),
        // The bystander must come through untouched: with the pre-fix
        // single-`%` scatter this sum read as garbage.
        Stmt::assign(LValue::var("s"), Expr::const_f(0.0)),
        Stmt::simple_for(
            "i",
            Expr::const_i(0),
            Expr::const_i(tn),
            vec![Stmt::assign(
                LValue::var("s"),
                Expr::add(Expr::var("s"), Expr::load("bystander", Expr::var("i"))),
            )],
        ),
        Stmt::print(Expr::var("s")),
    ];
    Program::builder("fuzz.nan-scatter")
        .global(i64_array("acc", an as usize, 61))
        .global(f64_array("bystander", tn as usize, 62))
        .global(index_array("table", tn as usize, 63, an))
        .function(
            Function::new("kern")
                .param("p", Ty::Ptr)
                .param("q", Ty::Ptr)
                .param("n", Ty::I64)
                .local("i", Ty::I64)
                .body(vec![Stmt::simple_for(
                    "i",
                    Expr::const_i(0),
                    Expr::var("n"),
                    vec![Stmt::assign(
                        LValue::store_ptr("p", Expr::var("i")),
                        Expr::add(
                            Expr::load_ptr("p", Expr::var("i")),
                            Expr::load_ptr("q", Expr::var("i")),
                        ),
                    )],
                )]),
        )
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("t", Ty::I64)
                .local("cs", Ty::I64)
                .local("s", Ty::F64)
                .body(body),
        )
        .build()
}

// ----------------------------------------------------------------------------
// Non-parallelisable benchmark templates
// ----------------------------------------------------------------------------

/// Float code mixing a small DOALL loop with dominant recurrences and IO
/// (zeusmp, gromacs, namd, calculix).
fn mixed_float_irregular(scale: u64) -> Program {
    let n = (scale * 60) as i64;
    Program::builder("mixed")
        .global(f64_array("a", n as usize, 33))
        .global(f64_array("b", n as usize, 34))
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("s", Ty::F64)
                .body({
                    let mut b = vec![
                        axpy_loop("a", "b", "a", n, 0.2),
                        recurrence_loop("b", "a", n),
                        recurrence_loop("a", "b", n),
                        io_loop(8),
                    ];
                    b.extend(dot_loop("a", "b", n));
                    b
                }),
        )
        .build()
}

/// Integer code dominated by irregular control flow, indirect calls and IO
/// (perlbench, gcc, gobmk, sjeng, xalancbmk, povray, dealII).
fn irregular_integer(scale: u64) -> Program {
    let n = (scale * 70) as i64;
    Program::builder("irregular")
        .global(i64_array("work", n as usize, 35))
        .global(i64_array("hash", n as usize, 36))
        .global_i64("table", 2)
        .function(Function::new("op_add").body(vec![Stmt::assign(
            LValue::store("hash", Expr::const_i(0)),
            Expr::add(Expr::load("hash", Expr::const_i(0)), Expr::const_i(3)),
        )]))
        .function(Function::new("op_xor").body(vec![Stmt::assign(
            LValue::store("hash", Expr::const_i(1)),
            Expr::add(Expr::load("hash", Expr::const_i(1)), Expr::const_i(5)),
        )]))
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("k", Ty::I64)
                .local("p", Ty::I64)
                .local("acc", Ty::I64)
                .body(vec![
                    Stmt::assign(
                        LValue::store("table", Expr::const_i(0)),
                        Expr::AddrOfFn("op_add".into()),
                    ),
                    Stmt::assign(
                        LValue::store("table", Expr::const_i(1)),
                        Expr::AddrOfFn("op_xor".into()),
                    ),
                    indirect_call_loop("table", n),
                    // Hash loop with a data-dependent index (unknown access).
                    Stmt::simple_for(
                        "i",
                        Expr::const_i(0),
                        Expr::const_i(n),
                        vec![Stmt::assign(
                            LValue::store("hash", Expr::load("work", Expr::var("i"))),
                            Expr::add(
                                Expr::load("hash", Expr::load("work", Expr::var("i"))),
                                Expr::const_i(1),
                            ),
                        )],
                    ),
                    io_loop(6),
                    Stmt::print(Expr::load("hash", Expr::const_i(0))),
                ]),
        )
        .build()
}

/// Integer code dominated by pointer chasing over linked structures
/// (bzip2, mcf, hmmer, astar, soplex).
fn pointer_chasing_integer(scale: u64) -> Program {
    let n = (scale * 90) as i64;
    let mut body = vec![
        // Build a permutation-like next[] chain.
        Stmt::simple_for(
            "i",
            Expr::const_i(0),
            Expr::const_i(n),
            vec![Stmt::assign(
                LValue::store("next", Expr::var("i")),
                Expr::rem(
                    Expr::add(
                        Expr::mul(Expr::var("i"), Expr::const_i(7)),
                        Expr::const_i(3),
                    ),
                    Expr::const_i(n),
                ),
            )],
        ),
    ];
    body.extend(pointer_chase_loop("next", n * 3));
    Program::builder("chase")
        .global(i64_array("next", n as usize, 37))
        .function(
            Function::new("main")
                .local("i", Ty::I64)
                .local("p", Ty::I64)
                .local("k", Ty::I64)
                .local("acc", Ty::I64)
                .body(body),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_compile::{CompileOptions, Compiler};
    use janus_vm::{Process, Vm};

    #[test]
    fn all_25_workloads_build_and_compile() {
        let suite = suite();
        assert_eq!(suite.len(), 25);
        for w in &suite {
            let bin = Compiler::with_options(CompileOptions::gcc_o3())
                .compile(&w.program)
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", w.name));
            assert!(bin.num_instructions() > 0, "{}", w.name);
            let train = Compiler::new().compile(&w.train_program).unwrap();
            assert!(
                train.num_instructions() > 0,
                "{} train binary empty",
                w.name
            );
        }
    }

    #[test]
    fn parallel_candidates_execute_natively_and_produce_output() {
        for name in parallel_benchmarks() {
            let w = workload(name).unwrap();
            let bin = Compiler::with_options(CompileOptions::gcc_o2())
                .compile(&w.train_program)
                .unwrap();
            let mut vm = Vm::new(Process::load(&bin).unwrap());
            let result = vm.run().unwrap_or_else(|e| panic!("{name} failed: {e}"));
            assert!(result.retired > 0, "{name}");
            assert!(
                !vm.output_floats().is_empty() || !vm.output_ints().is_empty(),
                "{name} produced no output"
            );
        }
    }

    #[test]
    fn workload_lookup_and_classification() {
        assert!(workload("470.lbm").unwrap().is_parallel_candidate());
        assert!(!workload("403.gcc").unwrap().is_parallel_candidate());
        assert!(workload("does-not-exist").is_none());
        assert_eq!(all_names().len(), 25);
        assert_eq!(parallel_benchmarks().len(), 9);
        let h = workload("spec.histogram").unwrap();
        assert!(h.is_speculative_candidate());
        assert!(!h.is_parallel_candidate());
        assert_eq!(h.class, WorkloadClass::MayDependent);
        assert!(!workload("470.lbm").unwrap().is_speculative_candidate());
    }

    #[test]
    fn speculative_workloads_compile_and_run_natively() {
        let suite = spec_suite();
        assert_eq!(suite.len(), 4);
        for w in &suite {
            let bin = Compiler::with_options(CompileOptions::gcc_o2())
                .compile(&w.train_program)
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", w.name));
            let mut vm = Vm::new(Process::load(&bin).unwrap());
            let result = vm
                .run()
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            assert!(result.retired > 0, "{}", w.name);
            assert!(
                !vm.output_floats().is_empty(),
                "{} produced no output",
                w.name
            );
        }
    }

    #[test]
    fn train_programs_are_smaller_than_ref() {
        let w = workload("470.lbm").unwrap();
        let ref_len = w.program.globals.iter().map(|g| g.len).sum::<usize>();
        let train_len = w.train_program.globals.iter().map(|g| g.len).sum::<usize>();
        assert!(train_len < ref_len);
    }
}
