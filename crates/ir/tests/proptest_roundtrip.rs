//! Property-based tests for the JVA instruction encoding and the JBin
//! container: any instruction the generators can produce must survive an
//! encode/decode round trip, and any binary must survive serialisation.

use janus_ir::{
    decode, encode, AluOp, AsmBuilder, Cond, FpuOp, Inst, JBinary, MemRef, Operand, Reg, INST_SIZE,
};
use proptest::prelude::*;

fn arb_gpr() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::gpr)
}

fn arb_vreg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::vreg)
}

fn arb_scale() -> impl Strategy<Value = u8> {
    prop_oneof![Just(1u8), Just(2), Just(4), Just(8)]
}

fn arb_memref() -> impl Strategy<Value = MemRef> {
    (
        proptest::option::of(arb_gpr()),
        proptest::option::of(arb_gpr()),
        arb_scale(),
        -0x7fff_ffff_ffffi64..0x7fff_ffff_ffff,
    )
        .prop_map(|(base, index, scale, disp)| MemRef {
            base,
            index,
            scale,
            disp,
        })
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_gpr().prop_map(Operand::Reg),
        arb_vreg().prop_map(Operand::Reg),
        any::<i64>().prop_map(Operand::Imm),
        arb_memref().prop_map(Operand::Mem),
    ]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Sar),
    ]
}

fn arb_fpu_op() -> impl Strategy<Value = FpuOp> {
    prop_oneof![
        Just(FpuOp::Add),
        Just(FpuOp::Sub),
        Just(FpuOp::Mul),
        Just(FpuOp::Div),
        Just(FpuOp::Min),
        Just(FpuOp::Max),
        Just(FpuOp::Sqrt),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Le),
        Just(Cond::Gt),
        Just(Cond::Ge),
        Just(Cond::Below),
        Just(Cond::AboveEq),
    ]
}

fn arb_lanes() -> impl Strategy<Value = u8> {
    prop_oneof![Just(2u8), Just(4u8)]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Halt),
        Just(Inst::Ret),
        (arb_operand(), arb_operand()).prop_map(|(dst, src)| Inst::Mov { dst, src }),
        (arb_gpr(), arb_memref()).prop_map(|(dst, mem)| Inst::Lea { dst, mem }),
        (arb_alu_op(), arb_operand(), arb_operand()).prop_map(|(op, dst, src)| Inst::Alu {
            op,
            dst,
            src
        }),
        (arb_operand(), arb_operand()).prop_map(|(dst, src)| Inst::FMov { dst, src }),
        (arb_fpu_op(), arb_operand(), arb_operand()).prop_map(|(op, dst, src)| Inst::Fpu {
            op,
            dst,
            src
        }),
        (arb_operand(), arb_operand(), arb_lanes()).prop_map(|(dst, src, lanes)| Inst::VMov {
            dst,
            src,
            lanes
        }),
        (arb_fpu_op(), arb_vreg(), arb_operand(), arb_lanes()).prop_map(|(op, dst, src, lanes)| {
            Inst::Vec {
                op,
                dst,
                src,
                lanes,
            }
        }),
        (arb_vreg(), arb_operand()).prop_map(|(dst, src)| Inst::CvtIntToFloat { dst, src }),
        (arb_gpr(), arb_operand()).prop_map(|(dst, src)| Inst::CvtFloatToInt { dst, src }),
        (arb_operand(), arb_operand()).prop_map(|(lhs, rhs)| Inst::Cmp { lhs, rhs }),
        (arb_operand(), arb_operand()).prop_map(|(lhs, rhs)| Inst::FCmp { lhs, rhs }),
        (arb_operand(), arb_operand()).prop_map(|(lhs, rhs)| Inst::Test { lhs, rhs }),
        (arb_cond(), arb_gpr(), arb_operand()).prop_map(|(cond, dst, src)| Inst::CMov {
            cond,
            dst,
            src
        }),
        any::<u32>().prop_map(|t| Inst::Jmp {
            target: u64::from(t)
        }),
        (arb_cond(), any::<u32>()).prop_map(|(cond, t)| Inst::Jcc {
            cond,
            target: u64::from(t)
        }),
        arb_operand().prop_map(|target| Inst::JmpInd { target }),
        any::<u32>().prop_map(|t| Inst::Call {
            target: u64::from(t)
        }),
        arb_operand().prop_map(|target| Inst::CallInd { target }),
        any::<u16>().prop_map(|plt| Inst::CallExt {
            plt: u32::from(plt)
        }),
        arb_operand().prop_map(|src| Inst::Push { src }),
        arb_operand().prop_map(|dst| Inst::Pop { dst }),
        (0u32..6).prop_map(|num| Inst::Syscall { num }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_instruction_round_trips_through_the_encoder(inst in arb_inst()) {
        let bytes = encode(&inst);
        prop_assert_eq!(bytes.len(), INST_SIZE);
        let decoded = decode(0x40_0000, &bytes).expect("generated instructions always decode");
        prop_assert_eq!(decoded, inst);
    }

    #[test]
    fn decoding_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), INST_SIZE)) {
        // Arbitrary byte patterns either decode to some instruction or return
        // an error; they must never panic.
        let _ = decode(0x40_0000, &bytes);
    }

    #[test]
    fn reads_and_writes_never_report_invalid_registers(inst in arb_inst()) {
        for r in inst.reads().into_iter().chain(inst.writes()) {
            prop_assert!(Reg::from_raw(r.raw()).is_some());
        }
    }

    #[test]
    fn binaries_round_trip_through_serialisation(
        insts in proptest::collection::vec(arb_inst(), 1..40),
        data in proptest::collection::vec(any::<u8>(), 0..128),
        plt_names in proptest::collection::vec("[a-z]{1,8}", 0..4),
        strip in any::<bool>(),
    ) {
        let mut asm = AsmBuilder::new();
        asm.function("main");
        let _ = asm.data_object("blob", &data);
        for inst in &insts {
            // Branch targets of generated instructions may point anywhere;
            // that is fine for container round-tripping.
            asm.push(inst.clone());
        }
        asm.push(Inst::Halt);
        for name in &plt_names {
            asm.plt_index(name.clone());
        }
        let mut bin = asm.finish_binary("main").expect("assembles");
        if strip {
            bin.strip();
        }
        let bytes = bin.to_bytes();
        let back = JBinary::from_bytes(&bytes).expect("deserialises");
        prop_assert_eq!(back, bin);
    }
}
