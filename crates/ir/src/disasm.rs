//! Disassembly of JBin text sections back into IR instructions.
//!
//! This is the reproduction's stand-in for the Capstone disassembler: the
//! static analyser never sees the structures the compiler used to *produce*
//! the binary, only what can be recovered from the bytes.

use crate::binary::JBinary;
use crate::encode::{decode, INST_SIZE};
use crate::error::Result;
use crate::inst::Inst;

/// An instruction together with the address it was decoded from.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedInst {
    /// Virtual address of the instruction.
    pub addr: u64,
    /// The decoded instruction.
    pub inst: Inst,
}

/// Disassembles the entire text section of a binary.
///
/// # Errors
///
/// Returns an error if any instruction fails to decode.
pub fn disassemble(binary: &JBinary) -> Result<Vec<DecodedInst>> {
    disassemble_range(
        binary.text_base(),
        binary.text(),
        binary.text_base(),
        binary.text_end(),
    )
}

/// Disassembles the instructions within `[start, end)` of a text section that
/// begins at `text_base`.
///
/// # Errors
///
/// Returns an error if any instruction fails to decode or the range is not
/// instruction aligned.
pub fn disassemble_range(
    text_base: u64,
    text: &[u8],
    start: u64,
    end: u64,
) -> Result<Vec<DecodedInst>> {
    let mut out = Vec::new();
    let mut addr = start;
    while addr < end {
        let off = (addr - text_base) as usize;
        let inst = decode(addr, &text[off..(off + INST_SIZE).min(text.len())])?;
        out.push(DecodedInst { addr, inst });
        addr += INST_SIZE as u64;
    }
    Ok(out)
}

/// Formats one instruction in an AT&T-free, Intel-like syntax.
#[must_use]
pub fn format_inst(inst: &Inst) -> String {
    match inst {
        Inst::Mov { dst, src } => format!("mov {dst}, {src}"),
        Inst::Lea { dst, mem } => format!("lea {dst}, {mem}"),
        Inst::Alu { op, dst, src } => format!("{} {dst}, {src}", op.mnemonic()),
        Inst::FMov { dst, src } => format!("fmov {dst}, {src}"),
        Inst::Fpu { op, dst, src } => format!("{} {dst}, {src}", op.mnemonic()),
        Inst::VMov { dst, src, lanes } => format!("vmov{lanes} {dst}, {src}"),
        Inst::Vec {
            op,
            dst,
            src,
            lanes,
        } => format!("v{}{lanes} {dst}, {src}", op.mnemonic()),
        Inst::CvtIntToFloat { dst, src } => format!("cvtsi2sd {dst}, {src}"),
        Inst::CvtFloatToInt { dst, src } => format!("cvtsd2si {dst}, {src}"),
        Inst::Cmp { lhs, rhs } => format!("cmp {lhs}, {rhs}"),
        Inst::FCmp { lhs, rhs } => format!("fcmp {lhs}, {rhs}"),
        Inst::Test { lhs, rhs } => format!("test {lhs}, {rhs}"),
        Inst::CMov { cond, dst, src } => format!("cmov{} {dst}, {src}", cond.suffix()),
        Inst::Jmp { target } => format!("jmp {target:#x}"),
        Inst::Jcc { cond, target } => format!("j{} {target:#x}", cond.suffix()),
        Inst::JmpInd { target } => format!("jmp {target}"),
        Inst::Call { target } => format!("call {target:#x}"),
        Inst::CallInd { target } => format!("call {target}"),
        Inst::CallExt { plt } => format!("call plt[{plt}]"),
        Inst::Ret => "ret".to_string(),
        Inst::Push { src } => format!("push {src}"),
        Inst::Pop { dst } => format!("pop {dst}"),
        Inst::Syscall { num } => format!("syscall {num}"),
        Inst::Nop => "nop".to_string(),
        Inst::Halt => "hlt".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AsmBuilder;
    use crate::inst::{AluOp, Cond};
    use crate::operand::{MemRef, Operand};
    use crate::reg::Reg;

    fn build_sample() -> JBinary {
        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(0)));
        asm.label("loop");
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::mem(MemRef::base_index(Reg::R8, Reg::R0, 8)),
            Operand::imm(1),
        ));
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R0),
            Operand::imm(1),
        ));
        asm.push(Inst::cmp(Operand::reg(Reg::R0), Operand::imm(100)));
        asm.push_branch(Cond::Lt, "loop");
        asm.push(Inst::Halt);
        asm.finish_binary("main").unwrap()
    }

    #[test]
    fn disassembles_whole_binary_in_order() {
        let bin = build_sample();
        let insts = disassemble(&bin).unwrap();
        assert_eq!(insts.len(), 6);
        for (i, d) in insts.iter().enumerate() {
            assert_eq!(d.addr, bin.text_base() + (i * INST_SIZE) as u64);
        }
        assert_eq!(insts.last().unwrap().inst, Inst::Halt);
    }

    #[test]
    fn disassemble_range_is_a_window() {
        let bin = build_sample();
        let start = bin.text_base() + INST_SIZE as u64;
        let end = start + 2 * INST_SIZE as u64;
        let insts = disassemble_range(bin.text_base(), bin.text(), start, end).unwrap();
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[0].addr, start);
    }

    #[test]
    fn formatting_is_stable() {
        assert_eq!(
            format_inst(&Inst::mov(Operand::reg(Reg::R1), Operand::imm(7))),
            "mov r1, 7"
        );
        assert_eq!(
            format_inst(&Inst::Jcc {
                cond: Cond::Le,
                target: 0x400020
            }),
            "jle 0x400020"
        );
        assert_eq!(
            format_inst(&Inst::Vec {
                op: crate::inst::FpuOp::Add,
                dst: Reg::V1,
                src: Operand::mem(MemRef::base(Reg::R2)),
                lanes: 4
            }),
            "vfadd4 v1, [r2]"
        );
        assert_eq!(format_inst(&Inst::CallExt { plt: 2 }), "call plt[2]");
    }

    #[test]
    fn display_uses_format_inst() {
        let i = Inst::Ret;
        assert_eq!(i.to_string(), "ret");
    }
}
