//! Instruction operands: registers, immediates and memory references.

use crate::reg::Reg;
use std::fmt;

/// A memory reference of the form `[base + index * scale + disp]`.
///
/// Any of `base` and `index` may be absent; an absolute global address is
/// expressed with both absent and the address in `disp`.
///
/// # Example
///
/// ```
/// use janus_ir::{MemRef, Reg};
/// let m = MemRef::base_index(Reg::R8, Reg::R1, 8).with_disp(16);
/// assert_eq!(m.to_string(), "[r8 + r1*8 + 16]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register, if any.
    pub index: Option<Reg>,
    /// Scale applied to the index register (1, 2, 4 or 8).
    pub scale: u8,
    /// Constant displacement (or absolute address when no registers are used).
    pub disp: i64,
}

impl MemRef {
    /// A reference through a base register only: `[base]`.
    #[must_use]
    pub fn base(base: Reg) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp: 0,
        }
    }

    /// A base + displacement reference: `[base + disp]`.
    #[must_use]
    pub fn base_disp(base: Reg, disp: i64) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
        }
    }

    /// A base + scaled-index reference: `[base + index*scale]`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not 1, 2, 4 or 8.
    #[must_use]
    pub fn base_index(base: Reg, index: Reg, scale: u8) -> MemRef {
        assert!(
            matches!(scale, 1 | 2 | 4 | 8),
            "scale must be 1, 2, 4 or 8, got {scale}"
        );
        MemRef {
            base: Some(base),
            index: Some(index),
            scale,
            disp: 0,
        }
    }

    /// An absolute reference to a fixed address: `[addr]`.
    #[must_use]
    pub fn absolute(addr: u64) -> MemRef {
        MemRef {
            base: None,
            index: None,
            scale: 1,
            disp: addr as i64,
        }
    }

    /// Returns a copy of this reference with the displacement set to `disp`.
    #[must_use]
    pub fn with_disp(mut self, disp: i64) -> MemRef {
        self.disp = disp;
        self
    }

    /// Returns a copy with the index register and scale set.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not 1, 2, 4 or 8.
    #[must_use]
    pub fn with_index(mut self, index: Reg, scale: u8) -> MemRef {
        assert!(
            matches!(scale, 1 | 2 | 4 | 8),
            "scale must be 1, 2, 4 or 8, got {scale}"
        );
        self.index = Some(index);
        self.scale = scale;
        self
    }

    /// Returns `true` if this reference uses no registers (absolute address).
    #[must_use]
    pub fn is_absolute(self) -> bool {
        self.base.is_none() && self.index.is_none()
    }

    /// Returns `true` if this reference is relative to the stack pointer or
    /// frame pointer.
    #[must_use]
    pub fn is_stack_relative(self) -> bool {
        self.base == Some(Reg::SP) || self.base == Some(Reg::FP)
    }

    /// Registers read when computing the effective address.
    pub fn regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.base.into_iter().chain(self.index)
    }

    /// Rewrites every use of register `from` to register `to`, returning the
    /// modified reference.
    #[must_use]
    pub fn replace_reg(mut self, from: Reg, to: Reg) -> MemRef {
        if self.base == Some(from) {
            self.base = Some(to);
        }
        if self.index == Some(from) {
            self.index = Some(to);
        }
        self
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some(i) = self.index {
            if wrote {
                write!(f, " + ")?;
            }
            write!(f, "{i}*{}", self.scale)?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                if self.disp >= 0 {
                    write!(f, " + {}", self.disp)?;
                } else {
                    write!(f, " - {}", -self.disp)?;
                }
            } else {
                write!(f, "{:#x}", self.disp)?;
            }
        }
        write!(f, "]")
    }
}

/// An instruction operand.
///
/// Most instructions accept at most one memory operand, mirroring x86.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// A 64-bit signed immediate.
    Imm(i64),
    /// A memory operand.
    Mem(MemRef),
}

impl Operand {
    /// A register operand.
    #[must_use]
    pub fn reg(r: Reg) -> Operand {
        Operand::Reg(r)
    }

    /// An immediate operand.
    #[must_use]
    pub fn imm(v: i64) -> Operand {
        Operand::Imm(v)
    }

    /// A memory operand.
    #[must_use]
    pub fn mem(m: MemRef) -> Operand {
        Operand::Mem(m)
    }

    /// Returns the register if this operand is a plain register.
    #[must_use]
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns the immediate value if this operand is an immediate.
    #[must_use]
    pub fn as_imm(&self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the memory reference if this operand is a memory operand.
    #[must_use]
    pub fn as_mem(&self) -> Option<MemRef> {
        match self {
            Operand::Mem(m) => Some(*m),
            _ => None,
        }
    }

    /// Returns `true` if this operand accesses memory.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(_))
    }

    /// Registers read when evaluating this operand **as a source**.
    pub fn read_regs(&self) -> Vec<Reg> {
        match self {
            Operand::Reg(r) => vec![*r],
            Operand::Imm(_) => vec![],
            Operand::Mem(m) => m.regs().collect(),
        }
    }

    /// Registers read when this operand is used **as a destination**
    /// (address registers of a memory destination).
    pub fn dest_addr_regs(&self) -> Vec<Reg> {
        match self {
            Operand::Mem(m) => m.regs().collect(),
            _ => vec![],
        }
    }

    /// Rewrites every use of register `from` to `to`.
    #[must_use]
    pub fn replace_reg(self, from: Reg, to: Reg) -> Operand {
        match self {
            Operand::Reg(r) if r == from => Operand::Reg(to),
            Operand::Mem(m) => Operand::Mem(m.replace_reg(from, to)),
            other => other,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl From<MemRef> for Operand {
    fn from(m: MemRef) -> Operand {
        Operand::Mem(m)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::Mem(m) => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memref_constructors() {
        let m = MemRef::base(Reg::R3);
        assert_eq!(m.base, Some(Reg::R3));
        assert_eq!(m.disp, 0);
        assert!(!m.is_absolute());

        let m = MemRef::absolute(0x600010);
        assert!(m.is_absolute());
        assert_eq!(m.disp, 0x600010);

        let m = MemRef::base_disp(Reg::SP, -8);
        assert!(m.is_stack_relative());
        assert_eq!(m.disp, -8);

        let m = MemRef::base_index(Reg::R8, Reg::R1, 4).with_disp(8);
        assert_eq!(m.scale, 4);
        assert_eq!(m.disp, 8);
        assert_eq!(m.regs().collect::<Vec<_>>(), vec![Reg::R8, Reg::R1]);
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn bad_scale_panics() {
        let _ = MemRef::base_index(Reg::R0, Reg::R1, 3);
    }

    #[test]
    fn replace_reg_in_memref() {
        let m = MemRef::base_index(Reg::R2, Reg::R3, 8);
        let r = m.replace_reg(Reg::R2, Reg::R10);
        assert_eq!(r.base, Some(Reg::R10));
        assert_eq!(r.index, Some(Reg::R3));
        let r = m.replace_reg(Reg::R3, Reg::R11);
        assert_eq!(r.index, Some(Reg::R11));
    }

    #[test]
    fn operand_accessors() {
        assert_eq!(Operand::reg(Reg::R1).as_reg(), Some(Reg::R1));
        assert_eq!(Operand::imm(-3).as_imm(), Some(-3));
        assert!(Operand::mem(MemRef::base(Reg::R0)).is_mem());
        assert_eq!(Operand::imm(5).as_reg(), None);
        assert_eq!(Operand::reg(Reg::R1).as_mem(), None);
    }

    #[test]
    fn operand_read_regs() {
        assert_eq!(Operand::reg(Reg::R5).read_regs(), vec![Reg::R5]);
        assert!(Operand::imm(1).read_regs().is_empty());
        let m = Operand::mem(MemRef::base_index(Reg::R1, Reg::R2, 8));
        assert_eq!(m.read_regs(), vec![Reg::R1, Reg::R2]);
        assert_eq!(m.dest_addr_regs(), vec![Reg::R1, Reg::R2]);
        assert!(Operand::reg(Reg::R5).dest_addr_regs().is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Operand::reg(Reg::R2).to_string(), "r2");
        assert_eq!(Operand::imm(42).to_string(), "42");
        assert_eq!(
            Operand::mem(MemRef::base_disp(Reg::R8, 24)).to_string(),
            "[r8 + 24]"
        );
        assert_eq!(
            Operand::mem(MemRef::base_disp(Reg::R8, -24)).to_string(),
            "[r8 - 24]"
        );
        assert_eq!(
            Operand::mem(MemRef::absolute(0x600000)).to_string(),
            "[0x600000]"
        );
    }

    #[test]
    fn conversions_from_primitive_types() {
        let o: Operand = Reg::R1.into();
        assert_eq!(o, Operand::Reg(Reg::R1));
        let o: Operand = 7i64.into();
        assert_eq!(o, Operand::Imm(7));
        let o: Operand = MemRef::base(Reg::R2).into();
        assert!(o.is_mem());
    }
}
