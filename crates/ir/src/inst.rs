//! The JVA instruction set.

use crate::operand::{MemRef, Operand};
use crate::reg::Reg;
use std::fmt;

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Signed multiplication.
    Mul,
    /// Signed division (traps on division by zero).
    Div,
    /// Signed remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
}

impl AluOp {
    /// Returns `true` if the operation is commutative.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            AluOp::Add | AluOp::Mul | AluOp::And | AluOp::Or | AluOp::Xor
        )
    }

    /// Mnemonic used by the disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "imul",
            AluOp::Div => "idiv",
            AluOp::Rem => "irem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
        }
    }
}

/// Floating-point (and vector) operations on `f64` lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Square root (unary; the source operand is the input).
    Sqrt,
}

impl FpuOp {
    /// Mnemonic used by the disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpuOp::Add => "fadd",
            FpuOp::Sub => "fsub",
            FpuOp::Mul => "fmul",
            FpuOp::Div => "fdiv",
            FpuOp::Min => "fmin",
            FpuOp::Max => "fmax",
            FpuOp::Sqrt => "fsqrt",
        }
    }
}

/// Branch conditions evaluated against the flags register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal / zero.
    Eq,
    /// Not equal / not zero.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed less than or equal.
    Le,
    /// Signed greater than.
    Gt,
    /// Signed greater than or equal.
    Ge,
    /// Unsigned below.
    Below,
    /// Unsigned above or equal.
    AboveEq,
}

impl Cond {
    /// The condition that is true exactly when `self` is false.
    #[must_use]
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::Below => Cond::AboveEq,
            Cond::AboveEq => Cond::Below,
        }
    }

    /// Mnemonic suffix used by the disassembler (`je`, `jne`, ...).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Eq => "e",
            Cond::Ne => "ne",
            Cond::Lt => "l",
            Cond::Le => "le",
            Cond::Gt => "g",
            Cond::Ge => "ge",
            Cond::Below => "b",
            Cond::AboveEq => "ae",
        }
    }
}

/// System call numbers understood by the JVA runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallNum {
    /// Terminate the process; `r0` holds the exit code.
    Exit,
    /// Write the integer in `r1` to the simulated output stream.
    WriteInt,
    /// Write the float in `v0` lane 0 to the simulated output stream.
    WriteFloat,
    /// Extend the heap by `r1` bytes; returns the old break in `r0`.
    Sbrk,
    /// Read the cycle counter into `r0`.
    Clock,
    /// Read one 64-bit value of input into `r0` (simulated stdin).
    ReadInt,
}

impl SyscallNum {
    /// Encodes the syscall number.
    #[must_use]
    pub fn as_u32(self) -> u32 {
        match self {
            SyscallNum::Exit => 0,
            SyscallNum::WriteInt => 1,
            SyscallNum::WriteFloat => 2,
            SyscallNum::Sbrk => 3,
            SyscallNum::Clock => 4,
            SyscallNum::ReadInt => 5,
        }
    }

    /// Decodes a syscall number.
    #[must_use]
    pub fn from_u32(v: u32) -> Option<SyscallNum> {
        Some(match v {
            0 => SyscallNum::Exit,
            1 => SyscallNum::WriteInt,
            2 => SyscallNum::WriteFloat,
            3 => SyscallNum::Sbrk,
            4 => SyscallNum::Clock,
            5 => SyscallNum::ReadInt,
            _ => return None,
        })
    }
}

/// A single JVA machine instruction.
///
/// The set intentionally mirrors the x86-64 subset that matters for the
/// Janus analyses: two-operand ALU forms where either operand may be memory,
/// explicit flags via [`Inst::Cmp`]/[`Inst::Test`], conditional moves,
/// push/pop, direct and indirect control flow, and PLT-indirected external
/// calls.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Move `src` into `dst` (integer, 64-bit).
    Mov {
        /// Destination (register or memory).
        dst: Operand,
        /// Source (register, immediate or memory).
        src: Operand,
    },
    /// Load the effective address of `mem` into `dst`.
    Lea {
        /// Destination register.
        dst: Reg,
        /// Address expression.
        mem: MemRef,
    },
    /// Two-operand integer ALU operation: `dst = dst op src`. Sets flags.
    Alu {
        /// The operation to perform.
        op: AluOp,
        /// Destination (register or memory).
        dst: Operand,
        /// Source (register, immediate or memory).
        src: Operand,
    },
    /// Scalar floating-point move between vector registers and memory.
    FMov {
        /// Destination (vector register or memory).
        dst: Operand,
        /// Source (vector register, memory or immediate bit pattern).
        src: Operand,
    },
    /// Two-operand scalar floating-point operation: `dst = dst op src`.
    Fpu {
        /// The operation to perform.
        op: FpuOp,
        /// Destination (vector register lane 0 or memory).
        dst: Operand,
        /// Source operand.
        src: Operand,
    },
    /// Packed vector move of `lanes` consecutive `f64` values.
    VMov {
        /// Destination (vector register or memory).
        dst: Operand,
        /// Source (vector register or memory).
        src: Operand,
        /// Number of lanes moved (2 = SSE-like, 4 = AVX-like).
        lanes: u8,
    },
    /// Packed vector operation over `lanes` lanes: `dst = dst op src`.
    Vec {
        /// The lane-wise operation.
        op: FpuOp,
        /// Destination vector register.
        dst: Reg,
        /// Source (vector register or memory).
        src: Operand,
        /// Number of lanes (2 or 4).
        lanes: u8,
    },
    /// Convert a 64-bit integer to `f64`: `dst = (f64) src`.
    CvtIntToFloat {
        /// Destination vector register (lane 0).
        dst: Reg,
        /// Integer source.
        src: Operand,
    },
    /// Convert an `f64` to a 64-bit integer (truncating): `dst = (i64) src`.
    CvtFloatToInt {
        /// Destination integer register.
        dst: Reg,
        /// Floating-point source.
        src: Operand,
    },
    /// Integer compare: sets flags according to `lhs - rhs`.
    Cmp {
        /// Left-hand side.
        lhs: Operand,
        /// Right-hand side.
        rhs: Operand,
    },
    /// Floating-point compare of lane 0 values.
    FCmp {
        /// Left-hand side.
        lhs: Operand,
        /// Right-hand side.
        rhs: Operand,
    },
    /// Bitwise test: sets flags according to `lhs & rhs`.
    Test {
        /// Left-hand side.
        lhs: Operand,
        /// Right-hand side.
        rhs: Operand,
    },
    /// Conditional move: `if cond { dst = src }`.
    CMov {
        /// The condition.
        cond: Cond,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Unconditional direct jump.
    Jmp {
        /// Absolute target address.
        target: u64,
    },
    /// Conditional direct jump.
    Jcc {
        /// The condition.
        cond: Cond,
        /// Absolute target address.
        target: u64,
    },
    /// Indirect jump through a register or memory operand.
    JmpInd {
        /// Operand holding the target address.
        target: Operand,
    },
    /// Direct call; pushes the return address.
    Call {
        /// Absolute target address.
        target: u64,
    },
    /// Indirect call through a register or memory operand.
    CallInd {
        /// Operand holding the target address.
        target: Operand,
    },
    /// Call through the PLT to an external (shared-library or native) function.
    CallExt {
        /// Index into the binary's PLT table.
        plt: u32,
    },
    /// Return; pops the return address.
    Ret,
    /// Push a value onto the stack.
    Push {
        /// The value pushed.
        src: Operand,
    },
    /// Pop the top of the stack into `dst`.
    Pop {
        /// Destination (register or memory).
        dst: Operand,
    },
    /// System call; the number selects the service.
    Syscall {
        /// Which service is requested.
        num: u32,
    },
    /// No operation.
    Nop,
    /// Stop the machine (end of program).
    Halt,
}

/// Classification of an instruction's effect on control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlFlow {
    /// Falls through to the next instruction.
    FallThrough,
    /// Unconditional branch to a known target.
    Jump(u64),
    /// Conditional branch: target plus fall-through.
    Branch(u64),
    /// Indirect branch with statically unknown target.
    IndirectJump,
    /// Direct call to a known target (returns to the next instruction).
    Call(u64),
    /// Indirect or external call (returns to the next instruction).
    IndirectCall,
    /// Return from a call.
    Return,
    /// Terminates the program.
    Halt,
}

impl Inst {
    /// Convenience constructor for [`Inst::Mov`].
    #[must_use]
    pub fn mov(dst: Operand, src: Operand) -> Inst {
        Inst::Mov { dst, src }
    }

    /// Convenience constructor for [`Inst::Alu`].
    #[must_use]
    pub fn alu(op: AluOp, dst: Operand, src: Operand) -> Inst {
        Inst::Alu { op, dst, src }
    }

    /// Convenience constructor for [`Inst::Fpu`].
    #[must_use]
    pub fn fpu(op: FpuOp, dst: Operand, src: Operand) -> Inst {
        Inst::Fpu { op, dst, src }
    }

    /// Convenience constructor for [`Inst::Cmp`].
    #[must_use]
    pub fn cmp(lhs: Operand, rhs: Operand) -> Inst {
        Inst::Cmp { lhs, rhs }
    }

    /// How this instruction affects control flow.
    #[must_use]
    pub fn control_flow(&self) -> ControlFlow {
        match self {
            Inst::Jmp { target } => ControlFlow::Jump(*target),
            Inst::Jcc { target, .. } => ControlFlow::Branch(*target),
            Inst::JmpInd { .. } => ControlFlow::IndirectJump,
            Inst::Call { target } => ControlFlow::Call(*target),
            Inst::CallInd { .. } | Inst::CallExt { .. } => ControlFlow::IndirectCall,
            Inst::Ret => ControlFlow::Return,
            Inst::Halt => ControlFlow::Halt,
            Inst::Syscall { num } if *num == SyscallNum::Exit.as_u32() => ControlFlow::Halt,
            _ => ControlFlow::FallThrough,
        }
    }

    /// Returns `true` if this instruction ends a basic block.
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        !matches!(self.control_flow(), ControlFlow::FallThrough)
            || matches!(
                self,
                Inst::Call { .. } | Inst::CallInd { .. } | Inst::CallExt { .. }
            )
    }

    /// Returns `true` if this instruction writes the flags register.
    #[must_use]
    pub fn writes_flags(&self) -> bool {
        matches!(
            self,
            Inst::Alu { .. } | Inst::Cmp { .. } | Inst::FCmp { .. } | Inst::Test { .. }
        )
    }

    /// Returns `true` if this instruction reads the flags register.
    #[must_use]
    pub fn reads_flags(&self) -> bool {
        matches!(self, Inst::Jcc { .. } | Inst::CMov { .. })
    }

    /// Registers read by this instruction (excluding implicit flag reads).
    #[must_use]
    pub fn reads(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        match self {
            Inst::Mov { dst, src } | Inst::FMov { dst, src } | Inst::VMov { dst, src, .. } => {
                out.extend(src.read_regs());
                out.extend(dst.dest_addr_regs());
            }
            Inst::Lea { mem, .. } => out.extend(mem.regs()),
            Inst::Alu { dst, src, .. } | Inst::Fpu { dst, src, .. } => {
                // Two-operand form: the destination is also a source.
                out.extend(src.read_regs());
                out.extend(dst.read_regs());
            }
            Inst::Vec { dst, src, .. } => {
                out.push(*dst);
                out.extend(src.read_regs());
            }
            Inst::CvtIntToFloat { src, .. } | Inst::CvtFloatToInt { src, .. } => {
                out.extend(src.read_regs());
            }
            Inst::Cmp { lhs, rhs } | Inst::FCmp { lhs, rhs } | Inst::Test { lhs, rhs } => {
                out.extend(lhs.read_regs());
                out.extend(rhs.read_regs());
            }
            Inst::CMov { dst, src, .. } => {
                out.push(*dst);
                out.extend(src.read_regs());
            }
            Inst::JmpInd { target } | Inst::CallInd { target } => out.extend(target.read_regs()),
            Inst::Push { src } => {
                out.extend(src.read_regs());
                out.push(Reg::SP);
            }
            Inst::Pop { dst } => {
                out.extend(dst.dest_addr_regs());
                out.push(Reg::SP);
            }
            Inst::Call { .. } | Inst::CallExt { .. } | Inst::Ret => out.push(Reg::SP),
            Inst::Syscall { .. } => {
                out.push(Reg::R0);
                out.push(Reg::R1);
            }
            Inst::Jmp { .. } | Inst::Jcc { .. } | Inst::Nop | Inst::Halt => {}
        }
        out
    }

    /// Registers written by this instruction.
    #[must_use]
    pub fn writes(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        match self {
            Inst::Mov { dst, .. }
            | Inst::FMov { dst, .. }
            | Inst::VMov { dst, .. }
            | Inst::Alu { dst, .. }
            | Inst::Fpu { dst, .. } => {
                if let Some(r) = dst.as_reg() {
                    out.push(r);
                }
            }
            Inst::Lea { dst, .. }
            | Inst::Vec { dst, .. }
            | Inst::CvtIntToFloat { dst, .. }
            | Inst::CvtFloatToInt { dst, .. }
            | Inst::CMov { dst, .. } => out.push(*dst),
            Inst::Push { .. } => out.push(Reg::SP),
            Inst::Pop { dst } => {
                if let Some(r) = dst.as_reg() {
                    out.push(r);
                }
                out.push(Reg::SP);
            }
            Inst::Call { .. } | Inst::CallInd { .. } | Inst::CallExt { .. } | Inst::Ret => {
                out.push(Reg::SP);
            }
            Inst::Syscall { .. } => out.push(Reg::R0),
            Inst::Cmp { .. }
            | Inst::FCmp { .. }
            | Inst::Test { .. }
            | Inst::Jmp { .. }
            | Inst::Jcc { .. }
            | Inst::JmpInd { .. }
            | Inst::Nop
            | Inst::Halt => {}
        }
        out
    }

    /// Memory operand read by this instruction, if any (excluding implicit
    /// stack traffic from push/pop/call/ret).
    #[must_use]
    pub fn mem_read(&self) -> Option<MemRef> {
        match self {
            Inst::Mov { src, .. }
            | Inst::FMov { src, .. }
            | Inst::VMov { src, .. }
            | Inst::CMov { src, .. }
            | Inst::CvtIntToFloat { src, .. }
            | Inst::CvtFloatToInt { src, .. }
            | Inst::Push { src } => src.as_mem(),
            Inst::Alu { dst, src, .. } | Inst::Fpu { dst, src, .. } => {
                // dst is read-modify-write; report whichever side touches memory.
                src.as_mem().or_else(|| dst.as_mem())
            }
            Inst::Vec { src, .. } => src.as_mem(),
            Inst::Cmp { lhs, rhs } | Inst::FCmp { lhs, rhs } | Inst::Test { lhs, rhs } => {
                lhs.as_mem().or_else(|| rhs.as_mem())
            }
            Inst::JmpInd { target } | Inst::CallInd { target } => target.as_mem(),
            _ => None,
        }
    }

    /// Memory operand written by this instruction, if any (excluding implicit
    /// stack traffic).
    #[must_use]
    pub fn mem_write(&self) -> Option<MemRef> {
        match self {
            Inst::Mov { dst, .. }
            | Inst::FMov { dst, .. }
            | Inst::VMov { dst, .. }
            | Inst::Alu { dst, .. }
            | Inst::Fpu { dst, .. }
            | Inst::Pop { dst } => dst.as_mem(),
            _ => None,
        }
    }

    /// Returns `true` if this instruction performs any explicit memory access.
    #[must_use]
    pub fn touches_memory(&self) -> bool {
        self.mem_read().is_some() || self.mem_write().is_some()
    }

    /// Returns `true` if this instruction is a system call or other operation
    /// incompatible with parallelisation (IO, process control).
    #[must_use]
    pub fn is_incompatible_with_parallel(&self) -> bool {
        matches!(self, Inst::Syscall { .. })
    }

    /// Size in bytes each access transfers (8 for scalar, `lanes * 8` for
    /// vector operations). Returns 0 for instructions without memory access.
    #[must_use]
    pub fn access_width(&self) -> u64 {
        match self {
            Inst::VMov { lanes, .. } | Inst::Vec { lanes, .. } => u64::from(*lanes) * 8,
            _ if self.touches_memory() => 8,
            Inst::Push { .. } | Inst::Pop { .. } => 8,
            _ => 0,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::disasm::format_inst(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_negation_is_involutive() {
        let all = [
            Cond::Eq,
            Cond::Ne,
            Cond::Lt,
            Cond::Le,
            Cond::Gt,
            Cond::Ge,
            Cond::Below,
            Cond::AboveEq,
        ];
        for c in all {
            assert_eq!(c.negate().negate(), c);
            assert_ne!(c.negate(), c);
        }
    }

    #[test]
    fn syscall_round_trip() {
        for n in 0..6 {
            let s = SyscallNum::from_u32(n).unwrap();
            assert_eq!(s.as_u32(), n);
        }
        assert_eq!(SyscallNum::from_u32(99), None);
    }

    #[test]
    fn control_flow_classification() {
        assert_eq!(
            Inst::Jmp { target: 0x400040 }.control_flow(),
            ControlFlow::Jump(0x400040)
        );
        assert_eq!(
            Inst::Jcc {
                cond: Cond::Lt,
                target: 0x400080
            }
            .control_flow(),
            ControlFlow::Branch(0x400080)
        );
        assert_eq!(Inst::Ret.control_flow(), ControlFlow::Return);
        assert_eq!(Inst::Halt.control_flow(), ControlFlow::Halt);
        assert_eq!(
            Inst::Syscall {
                num: SyscallNum::Exit.as_u32()
            }
            .control_flow(),
            ControlFlow::Halt
        );
        assert_eq!(
            Inst::mov(Operand::reg(Reg::R0), Operand::imm(1)).control_flow(),
            ControlFlow::FallThrough
        );
        assert!(Inst::Call { target: 0x400100 }.is_terminator());
        assert!(Inst::CallExt { plt: 0 }.is_terminator());
        assert!(!Inst::Nop.is_terminator());
    }

    #[test]
    fn reads_and_writes_for_alu() {
        let i = Inst::alu(
            AluOp::Add,
            Operand::mem(MemRef::base_disp(Reg::R2, 0x20)),
            Operand::reg(Reg::R0),
        );
        let reads = i.reads();
        assert!(reads.contains(&Reg::R2));
        assert!(reads.contains(&Reg::R0));
        assert!(
            i.writes().is_empty(),
            "memory destination writes no register"
        );
        assert!(i.mem_read().is_some());
        assert!(i.mem_write().is_some());
        assert!(i.touches_memory());
        assert!(i.writes_flags());
    }

    #[test]
    fn reads_and_writes_for_mov() {
        let i = Inst::mov(
            Operand::reg(Reg::R3),
            Operand::mem(MemRef::base_index(Reg::R8, Reg::R1, 8)),
        );
        assert_eq!(i.writes(), vec![Reg::R3]);
        let reads = i.reads();
        assert!(reads.contains(&Reg::R8) && reads.contains(&Reg::R1));
        assert!(i.mem_read().is_some());
        assert!(i.mem_write().is_none());
        assert!(!i.writes_flags());
    }

    #[test]
    fn push_pop_touch_stack_pointer() {
        let push = Inst::Push {
            src: Operand::reg(Reg::R5),
        };
        assert!(push.reads().contains(&Reg::SP));
        assert_eq!(push.writes(), vec![Reg::SP]);
        let pop = Inst::Pop {
            dst: Operand::reg(Reg::R5),
        };
        assert!(pop.writes().contains(&Reg::R5));
        assert!(pop.writes().contains(&Reg::SP));
    }

    #[test]
    fn cmov_reads_destination() {
        let i = Inst::CMov {
            cond: Cond::Eq,
            dst: Reg::R1,
            src: Operand::reg(Reg::R2),
        };
        assert!(i.reads().contains(&Reg::R1));
        assert!(i.reads().contains(&Reg::R2));
        assert_eq!(i.writes(), vec![Reg::R1]);
        assert!(i.reads_flags());
    }

    #[test]
    fn vector_access_width() {
        let v = Inst::VMov {
            dst: Operand::reg(Reg::V0),
            src: Operand::mem(MemRef::base(Reg::R1)),
            lanes: 4,
        };
        assert_eq!(v.access_width(), 32);
        let s = Inst::FMov {
            dst: Operand::reg(Reg::V0),
            src: Operand::mem(MemRef::base(Reg::R1)),
        };
        assert_eq!(s.access_width(), 8);
        assert_eq!(Inst::Nop.access_width(), 0);
    }

    #[test]
    fn syscall_incompatible_with_parallel() {
        assert!(Inst::Syscall { num: 1 }.is_incompatible_with_parallel());
        assert!(!Inst::Nop.is_incompatible_with_parallel());
    }

    #[test]
    fn alu_commutativity() {
        assert!(AluOp::Add.is_commutative());
        assert!(AluOp::Xor.is_commutative());
        assert!(!AluOp::Sub.is_commutative());
        assert!(!AluOp::Shl.is_commutative());
    }
}
