//! The pipeline's shared content-digest primitive.
//!
//! Everything in the system that fingerprints bytes — the binary's
//! [`crate::JBinary::content_digest`], the artifact store's on-disk
//! checksums, incremental digests over memory images — uses the same
//! 64-bit FNV-1a so the digest family can never drift apart between
//! producers and consumers. FNV-1a is dependency-free, stable across
//! platforms, and cheap enough to run over whole guest memory images.

/// The FNV-1a 64-bit offset basis (the hash of the empty byte string).
pub const FNV1A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV1A_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte slice.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV1A_OFFSET, bytes)
}

/// Folds more bytes into a running FNV-1a state, for incremental digests
/// over discontiguous inputs. Seed the state with [`FNV1A_OFFSET`]; the
/// result of digesting the concatenation equals digesting the pieces in
/// order through this function.
#[must_use]
pub fn fnv1a_update(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV1A_PRIME);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_fnv1a_vectors() {
        // Reference vectors from the FNV specification (Landon Curt Noll).
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_update_equals_one_shot() {
        let bytes = b"the quick brown fox jumps over the lazy dog";
        for split in 0..bytes.len() {
            let (head, tail) = bytes.split_at(split);
            let state = fnv1a_update(fnv1a(head), tail);
            assert_eq!(state, fnv1a(bytes));
        }
    }
}
