//! # janus-ir — the Janus Virtual Architecture (JVA)
//!
//! This crate defines the virtual instruction set architecture, instruction
//! encoding and executable container used throughout the Janus reproduction.
//! It plays the role that x86-64 machine code, the ELF container and the
//! Capstone disassembler play in the original Janus system (CGO 2019):
//!
//! * [`Reg`], [`Operand`], [`MemRef`] and [`Inst`] model an x86-flavoured
//!   two-operand ISA with memory operands, condition flags, indirect branches
//!   and PLT-indirected external calls — the structural features that make
//!   binary-level analysis and rewriting non-trivial.
//! * [`encode`]/[`decode`] provide a fixed-width binary encoding so that a
//!   program really exists as a byte-addressed `.text` section, and the
//!   decoder gives the one-to-one machine-instruction ↔ IR mapping the paper
//!   requires of its static analyser.
//! * [`JBinary`] is the executable container (text/data/bss, PLT, optional
//!   symbol table) that the static analyser, profiler and dynamic binary
//!   modifier all consume.
//! * [`AsmBuilder`] is a small label-based assembler used by the mini
//!   compiler, the system library and the test-suite to produce binaries.
//!
//! # Example
//!
//! ```
//! use janus_ir::{AluOp, AsmBuilder, Inst, Operand, Reg, JBinary};
//!
//! let mut asm = AsmBuilder::new();
//! asm.label("entry");
//! asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(41)));
//! asm.push(Inst::alu(AluOp::Add, Operand::reg(Reg::R0), Operand::imm(1)));
//! asm.push(Inst::Halt);
//! let binary: JBinary = asm.finish_binary("entry").expect("assembly succeeds");
//! assert_eq!(binary.text_len() / janus_ir::INST_SIZE as u64, 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod binary;
mod builder;
pub mod digest;
mod disasm;
mod encode;
mod error;
mod inst;
mod layout;
mod operand;
mod reg;

pub use binary::{JBinary, PltEntry, Section, Symbol, SymbolKind};
pub use builder::AsmBuilder;
pub use digest::fnv1a;
pub use disasm::{disassemble, disassemble_range, format_inst, DecodedInst};
pub use encode::{decode, decode_at, encode, encode_into, INST_SIZE};
pub use error::{IrError, Result};
pub use inst::{AluOp, Cond, ControlFlow, FpuOp, Inst, SyscallNum};
pub use layout::{
    DATA_BASE, HEAP_BASE, STACK_BASE, STACK_SIZE, SYSLIB_BASE, SYSLIB_DATA_BASE, TEXT_BASE,
};
pub use operand::{MemRef, Operand};
pub use reg::{Reg, RegClass, NUM_GPR, NUM_VREG};
