//! Label-based assembly of JVA binaries.

use crate::binary::{JBinary, Symbol, SymbolKind};
use crate::encode::{encode, INST_SIZE};
use crate::error::{IrError, Result};
use crate::inst::Inst;
use crate::layout::{DATA_BASE, TEXT_BASE};
use std::collections::HashMap;

/// Where a pending label fix-up must be applied within an instruction.
#[derive(Debug, Clone)]
enum Fixup {
    /// Fill the branch/call target field of the instruction at `index`.
    Target { index: usize, label: String },
    /// Fill the immediate source operand of the instruction at `index` with
    /// the address of `label`.
    ImmAddr { index: usize, label: String },
}

/// An incremental assembler that produces a [`JBinary`].
///
/// Instructions are appended in program order; control-flow targets can be
/// expressed symbolically with labels that are resolved when the binary is
/// finished. Data objects are laid out in the `.data` section and their
/// addresses can be queried while emitting code.
///
/// # Example
///
/// ```
/// use janus_ir::{AluOp, AsmBuilder, Cond, Inst, Operand, Reg};
///
/// let mut asm = AsmBuilder::new();
/// asm.label("main");
/// asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(0)));
/// asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::imm(10)));
/// asm.label("loop");
/// asm.push(Inst::alu(AluOp::Add, Operand::reg(Reg::R0), Operand::imm(1)));
/// asm.push(Inst::cmp(Operand::reg(Reg::R0), Operand::reg(Reg::R1)));
/// asm.push_branch(Cond::Lt, "loop");
/// asm.push(Inst::Halt);
/// let bin = asm.finish_binary("main").unwrap();
/// assert_eq!(bin.num_instructions(), 6);
/// ```
#[derive(Debug, Default)]
pub struct AsmBuilder {
    text_base: u64,
    data_base: u64,
    insts: Vec<Inst>,
    labels: HashMap<String, usize>,
    fixups: Vec<Fixup>,
    data: Vec<u8>,
    data_symbols: Vec<(String, u64, u64)>,
    bss_size: u64,
    plt: Vec<String>,
    function_starts: Vec<(String, usize)>,
    producer: String,
}

impl AsmBuilder {
    /// Creates a builder targeting the standard executable layout.
    #[must_use]
    pub fn new() -> AsmBuilder {
        AsmBuilder {
            text_base: TEXT_BASE,
            data_base: DATA_BASE,
            ..AsmBuilder::default()
        }
    }

    /// Creates a builder with explicit text and data base addresses (used for
    /// the shared system library).
    #[must_use]
    pub fn with_bases(text_base: u64, data_base: u64) -> AsmBuilder {
        AsmBuilder {
            text_base,
            data_base,
            ..AsmBuilder::default()
        }
    }

    /// Sets the producer string recorded in the binary.
    pub fn set_producer(&mut self, producer: impl Into<String>) {
        self.producer = producer.into();
    }

    /// The address the next pushed instruction will occupy.
    #[must_use]
    pub fn current_addr(&self) -> u64 {
        self.text_base + (self.insts.len() * INST_SIZE) as u64
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Defines `label` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined (programming error in the
    /// caller; use unique labels).
    pub fn label(&mut self, label: impl Into<String>) {
        let label = label.into();
        let prev = self.labels.insert(label.clone(), self.insts.len());
        assert!(prev.is_none(), "duplicate label `{label}`");
    }

    /// Defines `label` at the current position and records it as a function
    /// symbol in the binary's symbol table.
    pub fn function(&mut self, name: impl Into<String>) {
        let name = name.into();
        self.function_starts.push((name.clone(), self.insts.len()));
        self.label(name);
    }

    /// Returns `true` if `label` has been defined.
    #[must_use]
    pub fn has_label(&self, label: &str) -> bool {
        self.labels.contains_key(label)
    }

    /// Appends an instruction and returns its address.
    pub fn push(&mut self, inst: Inst) -> u64 {
        let addr = self.current_addr();
        self.insts.push(inst);
        addr
    }

    /// Appends an unconditional jump to `label`.
    pub fn push_jmp(&mut self, label: impl Into<String>) -> u64 {
        let index = self.insts.len();
        self.fixups.push(Fixup::Target {
            index,
            label: label.into(),
        });
        self.push(Inst::Jmp { target: 0 })
    }

    /// Appends a conditional branch to `label`.
    pub fn push_branch(&mut self, cond: crate::inst::Cond, label: impl Into<String>) -> u64 {
        let index = self.insts.len();
        self.fixups.push(Fixup::Target {
            index,
            label: label.into(),
        });
        self.push(Inst::Jcc { cond, target: 0 })
    }

    /// Appends a direct call to `label`.
    pub fn push_call(&mut self, label: impl Into<String>) -> u64 {
        let index = self.insts.len();
        self.fixups.push(Fixup::Target {
            index,
            label: label.into(),
        });
        self.push(Inst::Call { target: 0 })
    }

    /// Appends a call to the external function `name` through the PLT,
    /// creating the PLT entry if necessary.
    pub fn push_call_ext(&mut self, name: impl Into<String>) -> u64 {
        let plt = self.plt_index(name);
        self.push(Inst::CallExt { plt })
    }

    /// Appends `mov dst, <address of label>`; the immediate is patched when
    /// the binary is finished. Used to materialise function addresses for
    /// indirect calls and runtime call tables.
    pub fn push_load_label_addr(&mut self, dst: crate::reg::Reg, label: impl Into<String>) -> u64 {
        let index = self.insts.len();
        self.fixups.push(Fixup::ImmAddr {
            index,
            label: label.into(),
        });
        self.push(Inst::Mov {
            dst: crate::operand::Operand::Reg(dst),
            src: crate::operand::Operand::Imm(0),
        })
    }

    /// Returns (creating if needed) the PLT index for `name`.
    pub fn plt_index(&mut self, name: impl Into<String>) -> u32 {
        let name = name.into();
        if let Some(pos) = self.plt.iter().position(|n| *n == name) {
            return pos as u32;
        }
        self.plt.push(name);
        (self.plt.len() - 1) as u32
    }

    /// Reserves `len` bytes of initialised data (8-byte aligned) filled from
    /// `bytes` and returns the virtual address of the object.
    pub fn data_object(&mut self, name: impl Into<String>, bytes: &[u8]) -> u64 {
        while self.data.len() % 8 != 0 {
            self.data.push(0);
        }
        let addr = self.data_base + self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        self.data_symbols
            .push((name.into(), addr, bytes.len() as u64));
        addr
    }

    /// Reserves `len` zero-initialised bytes and returns the virtual address.
    pub fn zeroed_object(&mut self, name: impl Into<String>, len: u64) -> u64 {
        self.data_object(name, &vec![0u8; len as usize])
    }

    /// Reserves an array of `len` 64-bit integers initialised from `values`
    /// (padded with zeros) and returns its address.
    pub fn i64_array(&mut self, name: impl Into<String>, len: usize, values: &[i64]) -> u64 {
        let mut bytes = Vec::with_capacity(len * 8);
        for i in 0..len {
            let v = values.get(i).copied().unwrap_or(0);
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.data_object(name, &bytes)
    }

    /// Reserves an array of `len` doubles initialised from `values` (padded
    /// with zeros) and returns its address.
    pub fn f64_array(&mut self, name: impl Into<String>, len: usize, values: &[f64]) -> u64 {
        let mut bytes = Vec::with_capacity(len * 8);
        for i in 0..len {
            let v = values.get(i).copied().unwrap_or(0.0);
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.data_object(name, &bytes)
    }

    /// The address assigned to a previously defined label.
    ///
    /// # Errors
    ///
    /// Returns an error if the label is undefined.
    pub fn label_addr(&self, label: &str) -> Result<u64> {
        self.labels
            .get(label)
            .map(|&idx| self.text_base + (idx * INST_SIZE) as u64)
            .ok_or_else(|| IrError::UndefinedLabel {
                label: label.to_string(),
            })
    }

    /// Finishes assembly, resolving all label references, and returns the
    /// instruction stream together with the label table.
    ///
    /// # Errors
    ///
    /// Returns an error if any referenced label is undefined.
    pub fn finish(mut self) -> Result<(Vec<Inst>, HashMap<String, u64>)> {
        let fixups = std::mem::take(&mut self.fixups);
        for fixup in fixups {
            match fixup {
                Fixup::Target { index, label } => {
                    let target = self.label_addr(&label)?;
                    match &mut self.insts[index] {
                        Inst::Jmp { target: t }
                        | Inst::Jcc { target: t, .. }
                        | Inst::Call { target: t } => *t = target,
                        other => {
                            return Err(IrError::InvalidOperand {
                                addr: self.text_base + (index * INST_SIZE) as u64,
                                reason: format!("fixup applied to non-branch {other:?}"),
                            })
                        }
                    }
                }
                Fixup::ImmAddr { index, label } => {
                    let target = self.label_addr(&label)?;
                    match &mut self.insts[index] {
                        Inst::Mov {
                            src: crate::operand::Operand::Imm(v),
                            ..
                        } => *v = target as i64,
                        other => {
                            return Err(IrError::InvalidOperand {
                                addr: self.text_base + (index * INST_SIZE) as u64,
                                reason: format!("address fixup applied to {other:?}"),
                            })
                        }
                    }
                }
            }
        }
        let labels = self
            .labels
            .iter()
            .map(|(k, &v)| (k.clone(), self.text_base + (v * INST_SIZE) as u64))
            .collect();
        Ok((self.insts, labels))
    }

    /// Finishes assembly and packages the result as a [`JBinary`] whose entry
    /// point is the label `entry`.
    ///
    /// # Errors
    ///
    /// Returns an error if a referenced label is undefined or the binary is
    /// malformed.
    pub fn finish_binary(self, entry: &str) -> Result<JBinary> {
        let text_base = self.text_base;
        let data_base = self.data_base;
        let data = self.data.clone();
        let bss_size = self.bss_size;
        let plt = self.plt.clone();
        let data_symbols = self.data_symbols.clone();
        let function_starts = self.function_starts.clone();
        let producer = self.producer.clone();
        let (insts, labels) = self.finish()?;
        let entry_addr = *labels.get(entry).ok_or_else(|| IrError::UndefinedLabel {
            label: entry.to_string(),
        })?;
        let mut text = Vec::with_capacity(insts.len() * INST_SIZE);
        for inst in &insts {
            text.extend_from_slice(&encode(inst));
        }
        let mut bin = JBinary::new_at(entry_addr, text_base, text, data_base, data, bss_size)?;
        for name in plt {
            bin.add_plt_entry(name);
        }
        for (name, idx) in function_starts {
            bin.add_symbol(Symbol {
                name,
                addr: text_base + (idx * INST_SIZE) as u64,
                size: 0,
                kind: SymbolKind::Function,
            });
        }
        for (name, addr, size) in data_symbols {
            bin.add_symbol(Symbol {
                name,
                addr,
                size,
                kind: SymbolKind::Object,
            });
        }
        if !producer.is_empty() {
            bin.set_producer(producer);
        }
        Ok(bin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Cond};
    use crate::operand::Operand;
    use crate::reg::Reg;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = AsmBuilder::new();
        asm.label("start");
        asm.push_jmp("end"); // forward reference
        asm.label("mid");
        asm.push(Inst::Nop);
        asm.push_jmp("mid"); // backward reference
        asm.label("end");
        asm.push(Inst::Halt);
        let (insts, labels) = asm.finish().unwrap();
        assert_eq!(labels["start"], TEXT_BASE);
        assert_eq!(labels["mid"], TEXT_BASE + INST_SIZE as u64);
        match &insts[0] {
            Inst::Jmp { target } => assert_eq!(*target, labels["end"]),
            other => panic!("expected jmp, got {other:?}"),
        }
        match &insts[2] {
            Inst::Jmp { target } => assert_eq!(*target, labels["mid"]),
            other => panic!("expected jmp, got {other:?}"),
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut asm = AsmBuilder::new();
        asm.label("main");
        asm.push_jmp("nowhere");
        assert!(matches!(asm.finish(), Err(IrError::UndefinedLabel { .. })));
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut asm = AsmBuilder::new();
        asm.label("x");
        asm.label("x");
    }

    #[test]
    fn data_objects_are_aligned_and_addressed() {
        let mut asm = AsmBuilder::new();
        let a = asm.data_object("a", &[1, 2, 3]);
        let b = asm.i64_array("b", 4, &[10, 20]);
        let c = asm.f64_array("c", 2, &[1.5]);
        assert_eq!(a, DATA_BASE);
        assert_eq!(b, DATA_BASE + 8, "second object is 8-byte aligned");
        assert_eq!(c, b + 32);
        assert_eq!(a % 8, 0);
    }

    #[test]
    fn finish_binary_produces_symbols_and_plt() {
        let mut asm = AsmBuilder::new();
        asm.set_producer("test");
        let _arr = asm.i64_array("numbers", 8, &[]);
        asm.function("main");
        asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(1)));
        asm.push_call("helper");
        asm.push_call_ext("pow");
        asm.push(Inst::Halt);
        asm.function("helper");
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R0),
            Operand::imm(1),
        ));
        asm.push(Inst::Ret);
        let bin = asm.finish_binary("main").unwrap();
        assert_eq!(bin.entry(), TEXT_BASE);
        assert_eq!(bin.plt_name(0), Some("pow"));
        assert!(bin.symbol("helper").is_ok());
        assert!(bin.symbol("numbers").is_ok());
        assert_eq!(bin.producer(), "test");
        assert_eq!(bin.num_instructions(), 6);
    }

    #[test]
    fn finish_binary_with_custom_bases() {
        let mut asm = AsmBuilder::with_bases(0x7000_0000, 0x7800_0000);
        asm.function("pow");
        asm.push(Inst::Ret);
        let bin = asm.finish_binary("pow").unwrap();
        assert_eq!(bin.entry(), 0x7000_0000);
        assert_eq!(bin.text_base(), 0x7000_0000);
        assert_eq!(bin.data_base(), 0x7800_0000);
    }

    #[test]
    fn push_branch_resolves_condition_and_target() {
        let mut asm = AsmBuilder::new();
        asm.label("main");
        asm.label("loop");
        asm.push(Inst::Nop);
        asm.push_branch(Cond::Ne, "loop");
        asm.push(Inst::Halt);
        let bin = asm.finish_binary("main").unwrap();
        let insts = crate::disasm::disassemble(&bin).unwrap();
        match &insts[1].inst {
            Inst::Jcc { cond, target } => {
                assert_eq!(*cond, Cond::Ne);
                assert_eq!(*target, TEXT_BASE);
            }
            other => panic!("expected jcc, got {other:?}"),
        }
    }

    #[test]
    fn plt_index_is_stable() {
        let mut asm = AsmBuilder::new();
        let a = asm.plt_index("pow");
        let b = asm.plt_index("exp");
        let c = asm.plt_index("pow");
        assert_eq!(a, c);
        assert_ne!(a, b);
    }

    #[test]
    fn current_addr_tracks_instruction_count() {
        let mut asm = AsmBuilder::new();
        assert_eq!(asm.current_addr(), TEXT_BASE);
        assert!(asm.is_empty());
        asm.label("main");
        asm.push(Inst::Nop);
        assert_eq!(asm.current_addr(), TEXT_BASE + INST_SIZE as u64);
        assert_eq!(asm.len(), 1);
    }
}
