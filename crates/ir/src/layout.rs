//! Canonical address-space layout for JVA processes.
//!
//! The layout mirrors a conventional x86-64 Linux process so that the static
//! analyser and the dynamic binary modifier can reason about "stack",
//! "heap/global" and "shared library" address ranges the same way the paper's
//! system does.

/// Base virtual address of the main executable's `.text` section.
pub const TEXT_BASE: u64 = 0x0040_0000;

/// Base virtual address of the main executable's `.data`/`.bss` sections.
pub const DATA_BASE: u64 = 0x0060_0000;

/// Base virtual address of the simulated heap (`sbrk` region).
pub const HEAP_BASE: u64 = 0x1000_0000;

/// Base virtual address of the shared system library's `.text` section.
///
/// Code above this address is *not* covered by the static analyser's rewrite
/// schedule and is therefore "dynamically discovered" at runtime, exactly as
/// shared-library code is in the paper.
pub const SYSLIB_BASE: u64 = 0x7000_0000;

/// Base virtual address of the shared system library's data section.
pub const SYSLIB_DATA_BASE: u64 = 0x7800_0000;

/// Top-of-stack address of the main thread. The stack grows downwards.
pub const STACK_BASE: u64 = 0x7fff_0000;

/// Default size in bytes reserved for each thread's stack.
pub const STACK_SIZE: u64 = 0x0010_0000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        // Evaluated at compile time: a bad layout constant fails the build.
        const {
            assert!(TEXT_BASE < DATA_BASE);
            assert!(DATA_BASE < HEAP_BASE);
            assert!(HEAP_BASE < SYSLIB_BASE);
            assert!(SYSLIB_BASE < SYSLIB_DATA_BASE);
            assert!(SYSLIB_DATA_BASE < STACK_BASE - STACK_SIZE);
        }
    }

    #[test]
    fn stack_region_is_nonempty() {
        const {
            assert!(STACK_SIZE > 0);
            assert!(STACK_BASE > STACK_SIZE);
        }
    }
}
