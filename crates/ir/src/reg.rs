//! Architectural registers of the Janus Virtual Architecture.

use std::fmt;

/// Number of general-purpose (integer) registers.
pub const NUM_GPR: usize = 16;
/// Number of vector/floating-point registers.
pub const NUM_VREG: usize = 16;

/// Register class: integer general-purpose or vector/floating-point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// 64-bit integer general-purpose register.
    Gpr,
    /// 256-bit vector register holding four `f64` lanes (lane 0 doubles as the
    /// scalar floating-point register).
    Vec,
}

/// An architectural register.
///
/// Registers `R0`–`R15` are 64-bit integer registers; `R15` is the stack
/// pointer and `R14` the frame pointer by software convention. `V0`–`V15`
/// are 256-bit vector registers whose lane 0 doubles as the scalar
/// floating-point register.
///
/// # Example
///
/// ```
/// use janus_ir::{Reg, RegClass};
/// assert_eq!(Reg::SP, Reg::R15);
/// assert_eq!(Reg::V3.class(), RegClass::Vec);
/// assert_eq!(Reg::R7.index(), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

macro_rules! gpr_consts {
    ($($name:ident = $idx:expr),* $(,)?) => {
        $(
            #[doc = concat!("General-purpose register ", stringify!($name), ".")]
            pub const $name: Reg = Reg($idx);
        )*
    };
}

macro_rules! vreg_consts {
    ($($name:ident = $idx:expr),* $(,)?) => {
        $(
            #[doc = concat!("Vector register ", stringify!($name), ".")]
            pub const $name: Reg = Reg(16 + $idx);
        )*
    };
}

impl Reg {
    gpr_consts! {
        R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
        R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
    }
    vreg_consts! {
        V0 = 0, V1 = 1, V2 = 2, V3 = 3, V4 = 4, V5 = 5, V6 = 6, V7 = 7,
        V8 = 8, V9 = 9, V10 = 10, V11 = 11, V12 = 12, V13 = 13, V14 = 14, V15 = 15,
    }

    /// The stack pointer (alias of [`Reg::R15`]).
    pub const SP: Reg = Reg::R15;
    /// The frame pointer (alias of [`Reg::R14`]).
    pub const FP: Reg = Reg::R14;
    /// Register used for function return values and the first argument
    /// (alias of [`Reg::R0`]).
    pub const RET: Reg = Reg::R0;

    /// Creates a general-purpose register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_GPR`.
    #[must_use]
    pub fn gpr(index: u8) -> Reg {
        assert!((index as usize) < NUM_GPR, "gpr index {index} out of range");
        Reg(index)
    }

    /// Creates a vector register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_VREG`.
    #[must_use]
    pub fn vreg(index: u8) -> Reg {
        assert!(
            (index as usize) < NUM_VREG,
            "vector register index {index} out of range"
        );
        Reg(16 + index)
    }

    /// Creates a register from its raw encoding, if valid.
    #[must_use]
    pub fn from_raw(raw: u8) -> Option<Reg> {
        if (raw as usize) < NUM_GPR + NUM_VREG {
            Some(Reg(raw))
        } else {
            None
        }
    }

    /// The raw encoding of this register (0–31).
    #[must_use]
    pub fn raw(self) -> u8 {
        self.0
    }

    /// The index of this register within its class (0–15).
    #[must_use]
    pub fn index(self) -> u8 {
        self.0 % 16
    }

    /// The class (integer or vector) of this register.
    #[must_use]
    pub fn class(self) -> RegClass {
        if self.0 < 16 {
            RegClass::Gpr
        } else {
            RegClass::Vec
        }
    }

    /// Returns `true` for integer general-purpose registers.
    #[must_use]
    pub fn is_gpr(self) -> bool {
        self.class() == RegClass::Gpr
    }

    /// Returns `true` for vector registers.
    #[must_use]
    pub fn is_vec(self) -> bool {
        self.class() == RegClass::Vec
    }

    /// Returns `true` if this register is the stack pointer.
    #[must_use]
    pub fn is_sp(self) -> bool {
        self == Reg::SP
    }

    /// Iterator over all general-purpose registers.
    pub fn all_gprs() -> impl Iterator<Item = Reg> {
        (0..NUM_GPR as u8).map(Reg)
    }

    /// Iterator over all vector registers.
    pub fn all_vregs() -> impl Iterator<Item = Reg> {
        (0..NUM_VREG as u8).map(|i| Reg(16 + i))
    }

    /// Iterator over every architectural register.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..(NUM_GPR + NUM_VREG) as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Gpr => {
                if *self == Reg::SP {
                    write!(f, "sp")
                } else if *self == Reg::FP {
                    write!(f, "fp")
                } else {
                    write!(f, "r{}", self.index())
                }
            }
            RegClass::Vec => write!(f, "v{}", self.index()),
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_match_indices() {
        assert_eq!(Reg::SP, Reg::R15);
        assert_eq!(Reg::FP, Reg::R14);
        assert_eq!(Reg::RET, Reg::R0);
        assert!(Reg::SP.is_sp());
        assert!(!Reg::R3.is_sp());
    }

    #[test]
    fn class_and_index_round_trip() {
        for r in Reg::all_gprs() {
            assert_eq!(r.class(), RegClass::Gpr);
            assert_eq!(Reg::gpr(r.index()), r);
        }
        for r in Reg::all_vregs() {
            assert_eq!(r.class(), RegClass::Vec);
            assert_eq!(Reg::vreg(r.index()), r);
        }
    }

    #[test]
    fn raw_round_trip() {
        for r in Reg::all() {
            assert_eq!(Reg::from_raw(r.raw()), Some(r));
        }
        assert_eq!(Reg::from_raw(32), None);
        assert_eq!(Reg::from_raw(255), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gpr_out_of_range_panics() {
        let _ = Reg::gpr(16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vreg_out_of_range_panics() {
        let _ = Reg::vreg(16);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R15.to_string(), "sp");
        assert_eq!(Reg::R14.to_string(), "fp");
        assert_eq!(Reg::V4.to_string(), "v4");
    }

    #[test]
    fn all_counts() {
        assert_eq!(Reg::all_gprs().count(), NUM_GPR);
        assert_eq!(Reg::all_vregs().count(), NUM_VREG);
        assert_eq!(Reg::all().count(), NUM_GPR + NUM_VREG);
    }
}
