//! Fixed-width binary encoding of JVA instructions.
//!
//! Every instruction occupies exactly [`INST_SIZE`] bytes in the `.text`
//! section, so instruction addresses are always multiples of the instruction
//! size relative to the text base. The encoding is deliberately simple — the
//! interesting property for the Janus reproduction is that programs exist as
//! byte streams that must be *decoded* before they can be analysed or
//! modified, exactly like real machine code.

use crate::error::{IrError, Result};
use crate::inst::{AluOp, Cond, FpuOp, Inst};
use crate::operand::{MemRef, Operand};
use crate::reg::Reg;

/// Size in bytes of every encoded instruction.
pub const INST_SIZE: usize = 32;

const OP_NOP: u8 = 0;
const OP_HALT: u8 = 1;
const OP_MOV: u8 = 2;
const OP_LEA: u8 = 3;
const OP_ALU: u8 = 4;
const OP_FMOV: u8 = 5;
const OP_FPU: u8 = 6;
const OP_VMOV: u8 = 7;
const OP_VEC: u8 = 8;
const OP_CVT_I2F: u8 = 9;
const OP_CVT_F2I: u8 = 10;
const OP_CMP: u8 = 11;
const OP_FCMP: u8 = 12;
const OP_TEST: u8 = 13;
const OP_CMOV: u8 = 14;
const OP_JMP: u8 = 15;
const OP_JCC: u8 = 16;
const OP_JMP_IND: u8 = 17;
const OP_CALL: u8 = 18;
const OP_CALL_IND: u8 = 19;
const OP_CALL_EXT: u8 = 20;
const OP_RET: u8 = 21;
const OP_PUSH: u8 = 22;
const OP_POP: u8 = 23;
const OP_SYSCALL: u8 = 24;

const KIND_NONE: u8 = 0;
const KIND_REG: u8 = 1;
const KIND_IMM: u8 = 2;
const KIND_MEM: u8 = 3;

const NO_REG: u8 = 0xff;

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Div => 3,
        AluOp::Rem => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Shl => 8,
        AluOp::Shr => 9,
        AluOp::Sar => 10,
    }
}

fn alu_from_code(code: u8) -> Option<AluOp> {
    Some(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Div,
        4 => AluOp::Rem,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Shl,
        9 => AluOp::Shr,
        10 => AluOp::Sar,
        _ => return None,
    })
}

fn fpu_code(op: FpuOp) -> u8 {
    match op {
        FpuOp::Add => 0,
        FpuOp::Sub => 1,
        FpuOp::Mul => 2,
        FpuOp::Div => 3,
        FpuOp::Min => 4,
        FpuOp::Max => 5,
        FpuOp::Sqrt => 6,
    }
}

fn fpu_from_code(code: u8) -> Option<FpuOp> {
    Some(match code {
        0 => FpuOp::Add,
        1 => FpuOp::Sub,
        2 => FpuOp::Mul,
        3 => FpuOp::Div,
        4 => FpuOp::Min,
        5 => FpuOp::Max,
        6 => FpuOp::Sqrt,
        _ => return None,
    })
}

fn cond_code(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Le => 3,
        Cond::Gt => 4,
        Cond::Ge => 5,
        Cond::Below => 6,
        Cond::AboveEq => 7,
    }
}

fn cond_from_code(code: u8) -> Option<Cond> {
    Some(match code {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Le,
        4 => Cond::Gt,
        5 => Cond::Ge,
        6 => Cond::Below,
        7 => Cond::AboveEq,
        _ => return None,
    })
}

fn encode_operand(op: Option<&Operand>, out: &mut [u8]) {
    debug_assert_eq!(out.len(), 10);
    out.fill(0);
    match op {
        None => out[0] = KIND_NONE,
        Some(Operand::Reg(r)) => {
            out[0] = KIND_REG;
            out[1] = r.raw();
        }
        Some(Operand::Imm(v)) => {
            out[0] = KIND_IMM;
            out[2..10].copy_from_slice(&v.to_le_bytes());
        }
        Some(Operand::Mem(m)) => {
            out[0] = KIND_MEM;
            out[1] = m.base.map_or(NO_REG, Reg::raw);
            out[2] = m.index.map_or(NO_REG, Reg::raw);
            out[3] = m.scale;
            // 48-bit signed displacement.
            let bytes = m.disp.to_le_bytes();
            out[4..10].copy_from_slice(&bytes[..6]);
        }
    }
}

fn decode_operand(addr: u64, bytes: &[u8]) -> Result<Option<Operand>> {
    debug_assert_eq!(bytes.len(), 10);
    match bytes[0] {
        KIND_NONE => Ok(None),
        KIND_REG => {
            let r = Reg::from_raw(bytes[1]).ok_or(IrError::InvalidRegister { index: bytes[1] })?;
            Ok(Some(Operand::Reg(r)))
        }
        KIND_IMM => {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[2..10]);
            Ok(Some(Operand::Imm(i64::from_le_bytes(b))))
        }
        KIND_MEM => {
            let base = if bytes[1] == NO_REG {
                None
            } else {
                Some(Reg::from_raw(bytes[1]).ok_or(IrError::InvalidRegister { index: bytes[1] })?)
            };
            let index = if bytes[2] == NO_REG {
                None
            } else {
                Some(Reg::from_raw(bytes[2]).ok_or(IrError::InvalidRegister { index: bytes[2] })?)
            };
            let scale = bytes[3];
            if !matches!(scale, 1 | 2 | 4 | 8) {
                return Err(IrError::InvalidOperand {
                    addr,
                    reason: format!("invalid scale {scale}"),
                });
            }
            // Sign-extend the 48-bit displacement.
            let mut b = [0u8; 8];
            b[..6].copy_from_slice(&bytes[4..10]);
            if b[5] & 0x80 != 0 {
                b[6] = 0xff;
                b[7] = 0xff;
            }
            let disp = i64::from_le_bytes(b);
            Ok(Some(Operand::Mem(MemRef {
                base,
                index,
                scale,
                disp,
            })))
        }
        other => Err(IrError::InvalidOperand {
            addr,
            reason: format!("invalid operand kind {other}"),
        }),
    }
}

fn expect_operand(addr: u64, op: Option<Operand>) -> Result<Operand> {
    op.ok_or(IrError::InvalidOperand {
        addr,
        reason: "missing operand".to_string(),
    })
}

fn expect_reg(addr: u64, raw: u8) -> Result<Reg> {
    Reg::from_raw(raw).ok_or(IrError::InvalidOperand {
        addr,
        reason: format!("invalid register field {raw}"),
    })
}

/// Encodes one instruction into a fresh [`INST_SIZE`]-byte array.
#[must_use]
pub fn encode(inst: &Inst) -> [u8; INST_SIZE] {
    let mut out = [0u8; INST_SIZE];
    encode_into(inst, &mut out);
    out
}

/// Encodes one instruction into the provided buffer.
///
/// # Panics
///
/// Panics if `out.len() != INST_SIZE`.
pub fn encode_into(inst: &Inst, out: &mut [u8]) {
    assert_eq!(
        out.len(),
        INST_SIZE,
        "encode buffer must be INST_SIZE bytes"
    );
    out.fill(0);
    let (op1, op2): (Option<&Operand>, Option<&Operand>);
    match inst {
        Inst::Nop => {
            out[0] = OP_NOP;
            op1 = None;
            op2 = None;
        }
        Inst::Halt => {
            out[0] = OP_HALT;
            op1 = None;
            op2 = None;
        }
        Inst::Mov { dst, src } => {
            out[0] = OP_MOV;
            op1 = Some(dst);
            op2 = Some(src);
        }
        Inst::Lea { dst, mem } => {
            out[0] = OP_LEA;
            out[3] = dst.raw();
            encode_operand(Some(&Operand::Mem(*mem)), &mut out[12..22]);
            encode_operand(None, &mut out[22..32]);
            return;
        }
        Inst::Alu { op, dst, src } => {
            out[0] = OP_ALU;
            out[1] = alu_code(*op);
            op1 = Some(dst);
            op2 = Some(src);
        }
        Inst::FMov { dst, src } => {
            out[0] = OP_FMOV;
            op1 = Some(dst);
            op2 = Some(src);
        }
        Inst::Fpu { op, dst, src } => {
            out[0] = OP_FPU;
            out[1] = fpu_code(*op);
            op1 = Some(dst);
            op2 = Some(src);
        }
        Inst::VMov { dst, src, lanes } => {
            out[0] = OP_VMOV;
            out[2] = *lanes;
            op1 = Some(dst);
            op2 = Some(src);
        }
        Inst::Vec {
            op,
            dst,
            src,
            lanes,
        } => {
            out[0] = OP_VEC;
            out[1] = fpu_code(*op);
            out[2] = *lanes;
            out[3] = dst.raw();
            op1 = None;
            op2 = Some(src);
        }
        Inst::CvtIntToFloat { dst, src } => {
            out[0] = OP_CVT_I2F;
            out[3] = dst.raw();
            op1 = None;
            op2 = Some(src);
        }
        Inst::CvtFloatToInt { dst, src } => {
            out[0] = OP_CVT_F2I;
            out[3] = dst.raw();
            op1 = None;
            op2 = Some(src);
        }
        Inst::Cmp { lhs, rhs } => {
            out[0] = OP_CMP;
            op1 = Some(lhs);
            op2 = Some(rhs);
        }
        Inst::FCmp { lhs, rhs } => {
            out[0] = OP_FCMP;
            op1 = Some(lhs);
            op2 = Some(rhs);
        }
        Inst::Test { lhs, rhs } => {
            out[0] = OP_TEST;
            op1 = Some(lhs);
            op2 = Some(rhs);
        }
        Inst::CMov { cond, dst, src } => {
            out[0] = OP_CMOV;
            out[1] = cond_code(*cond);
            out[3] = dst.raw();
            op1 = None;
            op2 = Some(src);
        }
        Inst::Jmp { target } => {
            out[0] = OP_JMP;
            out[4..12].copy_from_slice(&target.to_le_bytes());
            op1 = None;
            op2 = None;
        }
        Inst::Jcc { cond, target } => {
            out[0] = OP_JCC;
            out[1] = cond_code(*cond);
            out[4..12].copy_from_slice(&target.to_le_bytes());
            op1 = None;
            op2 = None;
        }
        Inst::JmpInd { target } => {
            out[0] = OP_JMP_IND;
            op1 = Some(target);
            op2 = None;
        }
        Inst::Call { target } => {
            out[0] = OP_CALL;
            out[4..12].copy_from_slice(&target.to_le_bytes());
            op1 = None;
            op2 = None;
        }
        Inst::CallInd { target } => {
            out[0] = OP_CALL_IND;
            op1 = Some(target);
            op2 = None;
        }
        Inst::CallExt { plt } => {
            out[0] = OP_CALL_EXT;
            out[4..8].copy_from_slice(&plt.to_le_bytes());
            op1 = None;
            op2 = None;
        }
        Inst::Ret => {
            out[0] = OP_RET;
            op1 = None;
            op2 = None;
        }
        Inst::Push { src } => {
            out[0] = OP_PUSH;
            op1 = Some(src);
            op2 = None;
        }
        Inst::Pop { dst } => {
            out[0] = OP_POP;
            op1 = Some(dst);
            op2 = None;
        }
        Inst::Syscall { num } => {
            out[0] = OP_SYSCALL;
            out[4..8].copy_from_slice(&num.to_le_bytes());
            op1 = None;
            op2 = None;
        }
    }
    encode_operand(op1, &mut out[12..22]);
    encode_operand(op2, &mut out[22..32]);
}

/// Decodes a single instruction from `bytes`, which must contain at least
/// [`INST_SIZE`] bytes. The `addr` parameter is only used for error reporting.
///
/// # Errors
///
/// Returns an error if the byte stream is truncated or malformed.
pub fn decode(addr: u64, bytes: &[u8]) -> Result<Inst> {
    if bytes.len() < INST_SIZE {
        return Err(IrError::TruncatedInstruction {
            addr,
            available: bytes.len(),
        });
    }
    let opcode = bytes[0];
    let sub = bytes[1];
    let extra = bytes[2];
    let regf = bytes[3];
    let mut u64f = [0u8; 8];
    u64f.copy_from_slice(&bytes[4..12]);
    let u64field = u64::from_le_bytes(u64f);
    let op1 = decode_operand(addr, &bytes[12..22])?;
    let op2 = decode_operand(addr, &bytes[22..32])?;

    let inst = match opcode {
        OP_NOP => Inst::Nop,
        OP_HALT => Inst::Halt,
        OP_MOV => Inst::Mov {
            dst: expect_operand(addr, op1)?,
            src: expect_operand(addr, op2)?,
        },
        OP_LEA => {
            let mem = match op1 {
                Some(Operand::Mem(m)) => m,
                _ => {
                    return Err(IrError::InvalidOperand {
                        addr,
                        reason: "lea requires a memory operand".to_string(),
                    })
                }
            };
            Inst::Lea {
                dst: expect_reg(addr, regf)?,
                mem,
            }
        }
        OP_ALU => Inst::Alu {
            op: alu_from_code(sub).ok_or(IrError::InvalidOpcode { addr, opcode: sub })?,
            dst: expect_operand(addr, op1)?,
            src: expect_operand(addr, op2)?,
        },
        OP_FMOV => Inst::FMov {
            dst: expect_operand(addr, op1)?,
            src: expect_operand(addr, op2)?,
        },
        OP_FPU => Inst::Fpu {
            op: fpu_from_code(sub).ok_or(IrError::InvalidOpcode { addr, opcode: sub })?,
            dst: expect_operand(addr, op1)?,
            src: expect_operand(addr, op2)?,
        },
        OP_VMOV => Inst::VMov {
            dst: expect_operand(addr, op1)?,
            src: expect_operand(addr, op2)?,
            lanes: extra,
        },
        OP_VEC => Inst::Vec {
            op: fpu_from_code(sub).ok_or(IrError::InvalidOpcode { addr, opcode: sub })?,
            dst: expect_reg(addr, regf)?,
            src: expect_operand(addr, op2)?,
            lanes: extra,
        },
        OP_CVT_I2F => Inst::CvtIntToFloat {
            dst: expect_reg(addr, regf)?,
            src: expect_operand(addr, op2)?,
        },
        OP_CVT_F2I => Inst::CvtFloatToInt {
            dst: expect_reg(addr, regf)?,
            src: expect_operand(addr, op2)?,
        },
        OP_CMP => Inst::Cmp {
            lhs: expect_operand(addr, op1)?,
            rhs: expect_operand(addr, op2)?,
        },
        OP_FCMP => Inst::FCmp {
            lhs: expect_operand(addr, op1)?,
            rhs: expect_operand(addr, op2)?,
        },
        OP_TEST => Inst::Test {
            lhs: expect_operand(addr, op1)?,
            rhs: expect_operand(addr, op2)?,
        },
        OP_CMOV => Inst::CMov {
            cond: cond_from_code(sub).ok_or(IrError::InvalidOpcode { addr, opcode: sub })?,
            dst: expect_reg(addr, regf)?,
            src: expect_operand(addr, op2)?,
        },
        OP_JMP => Inst::Jmp { target: u64field },
        OP_JCC => Inst::Jcc {
            cond: cond_from_code(sub).ok_or(IrError::InvalidOpcode { addr, opcode: sub })?,
            target: u64field,
        },
        OP_JMP_IND => Inst::JmpInd {
            target: expect_operand(addr, op1)?,
        },
        OP_CALL => Inst::Call { target: u64field },
        OP_CALL_IND => Inst::CallInd {
            target: expect_operand(addr, op1)?,
        },
        OP_CALL_EXT => Inst::CallExt {
            plt: (u64field & 0xffff_ffff) as u32,
        },
        OP_RET => Inst::Ret,
        OP_PUSH => Inst::Push {
            src: expect_operand(addr, op1)?,
        },
        OP_POP => Inst::Pop {
            dst: expect_operand(addr, op1)?,
        },
        OP_SYSCALL => Inst::Syscall {
            num: (u64field & 0xffff_ffff) as u32,
        },
        other => {
            return Err(IrError::InvalidOpcode {
                addr,
                opcode: other,
            })
        }
    };
    Ok(inst)
}

/// Decodes the instruction located at `addr` given the start address and byte
/// contents of a text section.
///
/// # Errors
///
/// Returns an error if `addr` lies outside the section or the instruction is
/// malformed.
pub fn decode_at(text_base: u64, text: &[u8], addr: u64) -> Result<Inst> {
    if addr < text_base {
        return Err(IrError::TruncatedInstruction { addr, available: 0 });
    }
    let off = (addr - text_base) as usize;
    if off + INST_SIZE > text.len() {
        return Err(IrError::TruncatedInstruction {
            addr,
            available: text.len().saturating_sub(off),
        });
    }
    decode(addr, &text[off..off + INST_SIZE])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn sample_instructions() -> Vec<Inst> {
        vec![
            Inst::Nop,
            Inst::Halt,
            Inst::mov(Operand::reg(Reg::R1), Operand::imm(-42)),
            Inst::mov(
                Operand::mem(MemRef::base_index(Reg::R8, Reg::R1, 8).with_disp(16)),
                Operand::reg(Reg::R2),
            ),
            Inst::Lea {
                dst: Reg::R3,
                mem: MemRef::base_disp(Reg::SP, -128),
            },
            Inst::alu(AluOp::Add, Operand::reg(Reg::R0), Operand::imm(1)),
            Inst::alu(
                AluOp::Mul,
                Operand::reg(Reg::R4),
                Operand::mem(MemRef::absolute(0x600020)),
            ),
            Inst::FMov {
                dst: Operand::reg(Reg::V1),
                src: Operand::mem(MemRef::base_index(Reg::R9, Reg::R2, 8)),
            },
            Inst::fpu(FpuOp::Mul, Operand::reg(Reg::V0), Operand::reg(Reg::V1)),
            Inst::VMov {
                dst: Operand::reg(Reg::V2),
                src: Operand::mem(MemRef::base(Reg::R10)),
                lanes: 4,
            },
            Inst::Vec {
                op: FpuOp::Add,
                dst: Reg::V2,
                src: Operand::mem(MemRef::base_disp(Reg::R11, 32)),
                lanes: 2,
            },
            Inst::CvtIntToFloat {
                dst: Reg::V3,
                src: Operand::reg(Reg::R1),
            },
            Inst::CvtFloatToInt {
                dst: Reg::R1,
                src: Operand::reg(Reg::V3),
            },
            Inst::cmp(Operand::reg(Reg::R1), Operand::imm(10000)),
            Inst::FCmp {
                lhs: Operand::reg(Reg::V0),
                rhs: Operand::reg(Reg::V1),
            },
            Inst::Test {
                lhs: Operand::reg(Reg::R0),
                rhs: Operand::reg(Reg::R0),
            },
            Inst::CMov {
                cond: Cond::Le,
                dst: Reg::R5,
                src: Operand::reg(Reg::R6),
            },
            Inst::Jmp { target: 0x400200 },
            Inst::Jcc {
                cond: Cond::Lt,
                target: 0x400100,
            },
            Inst::JmpInd {
                target: Operand::reg(Reg::R7),
            },
            Inst::Call { target: 0x401000 },
            Inst::CallInd {
                target: Operand::mem(MemRef::base_index(Reg::R8, Reg::R3, 8)),
            },
            Inst::CallExt { plt: 3 },
            Inst::Ret,
            Inst::Push {
                src: Operand::reg(Reg::R12),
            },
            Inst::Pop {
                dst: Operand::reg(Reg::R12),
            },
            Inst::Syscall { num: 1 },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for inst in sample_instructions() {
            let bytes = encode(&inst);
            let back = decode(0x400000, &bytes).expect("decodes");
            assert_eq!(back, inst, "round trip failed for {inst:?}");
        }
    }

    #[test]
    fn negative_displacement_round_trip() {
        let inst = Inst::mov(
            Operand::reg(Reg::R1),
            Operand::mem(MemRef::base_disp(Reg::SP, -65536)),
        );
        let back = decode(0, &encode(&inst)).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let bytes = encode(&Inst::Nop);
        let err = decode(0x400000, &bytes[..10]).unwrap_err();
        assert!(matches!(err, IrError::TruncatedInstruction { .. }));
    }

    #[test]
    fn invalid_opcode_is_an_error() {
        let mut bytes = [0u8; INST_SIZE];
        bytes[0] = 0xee;
        let err = decode(0x400000, &bytes).unwrap_err();
        assert!(matches!(err, IrError::InvalidOpcode { .. }));
    }

    #[test]
    fn invalid_scale_is_an_error() {
        let mut bytes = encode(&Inst::mov(
            Operand::reg(Reg::R0),
            Operand::mem(MemRef::base(Reg::R1)),
        ));
        bytes[22 + 3] = 5; // corrupt the scale of the source memory operand
        let err = decode(0x400000, &bytes).unwrap_err();
        assert!(matches!(err, IrError::InvalidOperand { .. }));
    }

    #[test]
    fn decode_at_respects_bounds() {
        let text: Vec<u8> = sample_instructions()
            .iter()
            .flat_map(|i| encode(i).to_vec())
            .collect();
        let base = 0x400000u64;
        let third = decode_at(base, &text, base + 2 * INST_SIZE as u64).unwrap();
        assert_eq!(third, Inst::mov(Operand::reg(Reg::R1), Operand::imm(-42)));
        assert!(decode_at(base, &text, base + text.len() as u64).is_err());
        assert!(decode_at(base, &text, base - INST_SIZE as u64).is_err());
    }
}
