//! Error type for IR encoding, decoding and assembly.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, IrError>;

/// Errors produced while encoding, decoding or assembling JVA code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// The byte stream ended in the middle of an instruction.
    TruncatedInstruction {
        /// Address at which decoding was attempted.
        addr: u64,
        /// Number of bytes that were available.
        available: usize,
    },
    /// An opcode byte did not correspond to any known instruction.
    InvalidOpcode {
        /// Address of the faulting instruction.
        addr: u64,
        /// The opcode byte found.
        opcode: u8,
    },
    /// An operand descriptor was malformed.
    InvalidOperand {
        /// Address of the faulting instruction.
        addr: u64,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A register number was out of range for its class.
    InvalidRegister {
        /// The raw register index.
        index: u8,
    },
    /// A label was referenced but never defined during assembly.
    UndefinedLabel {
        /// The missing label.
        label: String,
    },
    /// A label was defined more than once during assembly.
    DuplicateLabel {
        /// The offending label.
        label: String,
    },
    /// The binary container was malformed.
    MalformedBinary {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A symbol lookup failed.
    UnknownSymbol {
        /// The missing symbol.
        name: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::TruncatedInstruction { addr, available } => write!(
                f,
                "truncated instruction at {addr:#x} ({available} bytes available)"
            ),
            IrError::InvalidOpcode { addr, opcode } => {
                write!(f, "invalid opcode {opcode:#x} at {addr:#x}")
            }
            IrError::InvalidOperand { addr, reason } => {
                write!(f, "invalid operand at {addr:#x}: {reason}")
            }
            IrError::InvalidRegister { index } => write!(f, "invalid register index {index}"),
            IrError::UndefinedLabel { label } => write!(f, "undefined label `{label}`"),
            IrError::DuplicateLabel { label } => write!(f, "duplicate label `{label}`"),
            IrError::MalformedBinary { reason } => write!(f, "malformed binary: {reason}"),
            IrError::UnknownSymbol { name } => write!(f, "unknown symbol `{name}`"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = vec![
            IrError::TruncatedInstruction {
                addr: 0x400000,
                available: 3,
            },
            IrError::InvalidOpcode {
                addr: 0x400020,
                opcode: 0xff,
            },
            IrError::InvalidOperand {
                addr: 0x1,
                reason: "bad scale".into(),
            },
            IrError::InvalidRegister { index: 200 },
            IrError::UndefinedLabel {
                label: "loop".into(),
            },
            IrError::DuplicateLabel {
                label: "loop".into(),
            },
            IrError::MalformedBinary {
                reason: "bad magic".into(),
            },
            IrError::UnknownSymbol {
                name: "main".into(),
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }
}
