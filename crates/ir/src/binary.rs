//! The JBin executable container.
//!
//! A [`JBinary`] plays the role of an ELF executable: it carries the encoded
//! `.text` section, initialised `.data`, a `.bss` size, a PLT describing the
//! external functions the program imports, and an optional symbol table that
//! can be stripped. The static analyser, the profiler and the dynamic binary
//! modifier all consume this container.

use crate::digest::fnv1a;
use crate::encode::INST_SIZE;
use crate::error::{IrError, Result};
use crate::layout::{DATA_BASE, TEXT_BASE};
use std::collections::BTreeMap;
use std::fmt;

const MAGIC: &[u8; 4] = b"JBIN";
const FORMAT_VERSION: u32 = 1;

/// Kinds of symbols in a [`JBinary`] symbol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// A function entry point in `.text`.
    Function,
    /// A data object in `.data`/`.bss`.
    Object,
}

/// A named symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Virtual address of the symbol.
    pub addr: u64,
    /// Size in bytes (0 when unknown).
    pub size: u64,
    /// Kind of symbol.
    pub kind: SymbolKind,
}

/// An entry in the procedure-linkage table describing an imported function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PltEntry {
    /// The imported function's name (e.g. `"pow"`).
    pub name: String,
}

/// A named section identifier used when inspecting a binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Executable code.
    Text,
    /// Initialised data.
    Data,
    /// Zero-initialised data.
    Bss,
}

/// A JVA executable image.
///
/// # Example
///
/// ```
/// use janus_ir::{AsmBuilder, Inst, JBinary};
/// let mut asm = AsmBuilder::new();
/// asm.label("main");
/// asm.push(Inst::Halt);
/// let bin = asm.finish_binary("main").unwrap();
/// let bytes = bin.to_bytes();
/// let reloaded = JBinary::from_bytes(&bytes).unwrap();
/// assert_eq!(reloaded.entry(), bin.entry());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JBinary {
    entry: u64,
    text_base: u64,
    text: Vec<u8>,
    data_base: u64,
    data: Vec<u8>,
    bss_size: u64,
    plt: Vec<PltEntry>,
    symbols: Vec<Symbol>,
    producer: String,
}

impl JBinary {
    /// Creates a new binary from raw sections.
    ///
    /// # Errors
    ///
    /// Returns an error if the text section is not a whole number of
    /// instructions or the entry point lies outside the text section.
    pub fn new(entry: u64, text: Vec<u8>, data: Vec<u8>, bss_size: u64) -> Result<JBinary> {
        JBinary::new_at(entry, TEXT_BASE, text, DATA_BASE, data, bss_size)
    }

    /// Creates a new binary with explicit section base addresses. Used for the
    /// shared system library image that lives in the high address range.
    ///
    /// # Errors
    ///
    /// Returns an error if the text section is not a whole number of
    /// instructions or the entry point lies outside the text section.
    pub fn new_at(
        entry: u64,
        text_base: u64,
        text: Vec<u8>,
        data_base: u64,
        data: Vec<u8>,
        bss_size: u64,
    ) -> Result<JBinary> {
        if text.len() % INST_SIZE != 0 {
            return Err(IrError::MalformedBinary {
                reason: format!(
                    "text size {} is not a multiple of the instruction size",
                    text.len()
                ),
            });
        }
        let bin = JBinary {
            entry,
            text_base,
            text,
            data_base,
            data,
            bss_size,
            plt: Vec::new(),
            symbols: Vec::new(),
            producer: String::new(),
        };
        if !bin.text_contains(entry) {
            return Err(IrError::MalformedBinary {
                reason: format!("entry point {entry:#x} lies outside the text section"),
            });
        }
        Ok(bin)
    }

    /// Program entry point address.
    #[must_use]
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// Base address of the text section.
    #[must_use]
    pub fn text_base(&self) -> u64 {
        self.text_base
    }

    /// Overrides the base addresses of the text and data sections. Used when
    /// building the shared system library image, which is loaded at a high
    /// address range.
    pub fn relocate(&mut self, text_base: u64, data_base: u64) {
        self.text_base = text_base;
        self.data_base = data_base;
    }

    /// Raw bytes of the text section.
    #[must_use]
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// Length of the text section in bytes.
    #[must_use]
    pub fn text_len(&self) -> u64 {
        self.text.len() as u64
    }

    /// End address (exclusive) of the text section.
    #[must_use]
    pub fn text_end(&self) -> u64 {
        self.text_base + self.text.len() as u64
    }

    /// Returns `true` when `addr` points into the text section.
    #[must_use]
    pub fn text_contains(&self, addr: u64) -> bool {
        addr >= self.text_base && addr < self.text_end()
    }

    /// Base address of the data section.
    #[must_use]
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// Raw bytes of the initialised data section.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Size of the zero-initialised (bss) region that follows `.data`.
    #[must_use]
    pub fn bss_size(&self) -> u64 {
        self.bss_size
    }

    /// The procedure-linkage table (imported external functions).
    #[must_use]
    pub fn plt(&self) -> &[PltEntry] {
        &self.plt
    }

    /// Appends a PLT entry and returns its index.
    pub fn add_plt_entry(&mut self, name: impl Into<String>) -> u32 {
        let name = name.into();
        if let Some(pos) = self.plt.iter().position(|e| e.name == name) {
            return pos as u32;
        }
        self.plt.push(PltEntry { name });
        (self.plt.len() - 1) as u32
    }

    /// Looks up a PLT entry name by index.
    #[must_use]
    pub fn plt_name(&self, index: u32) -> Option<&str> {
        self.plt.get(index as usize).map(|e| e.name.as_str())
    }

    /// The symbol table (may be empty for stripped binaries).
    #[must_use]
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Adds a symbol to the symbol table.
    pub fn add_symbol(&mut self, symbol: Symbol) {
        self.symbols.push(symbol);
    }

    /// Finds a symbol by name.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownSymbol`] if no symbol has this name.
    pub fn symbol(&self, name: &str) -> Result<&Symbol> {
        self.symbols
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| IrError::UnknownSymbol {
                name: name.to_string(),
            })
    }

    /// Removes all symbols, producing a stripped binary (the common case the
    /// paper targets).
    pub fn strip(&mut self) {
        self.symbols.clear();
    }

    /// Returns `true` when the binary carries no symbol information.
    #[must_use]
    pub fn is_stripped(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Identifier of the tool that produced the binary (e.g. `"jcc -O3"`).
    #[must_use]
    pub fn producer(&self) -> &str {
        &self.producer
    }

    /// Sets the producer string.
    pub fn set_producer(&mut self, producer: impl Into<String>) {
        self.producer = producer.into();
    }

    /// Number of instructions in the text section.
    #[must_use]
    pub fn num_instructions(&self) -> u64 {
        (self.text.len() / INST_SIZE) as u64
    }

    /// Total size of the serialised binary in bytes (used for the rewrite
    /// schedule size comparison in Figure 10).
    #[must_use]
    pub fn file_size(&self) -> u64 {
        self.to_bytes().len() as u64
    }

    /// Content digest of the binary: a 64-bit FNV-1a hash over the exact
    /// serialised image ([`JBinary::to_bytes`]). Byte-identical binaries
    /// always share a digest, so it is a stable content-addressed key for
    /// caches of derived artifacts (analyses, rewrite schedules) across
    /// processes and machines. FNV-1a is fast, not collision-resistant:
    /// distinct binaries colliding is vanishingly unlikely by accident but
    /// constructible on purpose, so digest-keyed caches assume their
    /// tenants are trusted (swap in a cryptographic hash at this one site
    /// to drop that assumption).
    #[must_use]
    pub fn content_digest(&self) -> u64 {
        fnv1a(&self.to_bytes())
    }

    /// Map from address to function symbol, for diagnostics.
    #[must_use]
    pub fn function_map(&self) -> BTreeMap<u64, &str> {
        self.symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::Function)
            .map(|s| (s.addr, s.name.as_str()))
            .collect()
    }

    /// Serialises the binary to its on-disk representation.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.text.len() + self.data.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.entry.to_le_bytes());
        out.extend_from_slice(&self.text_base.to_le_bytes());
        out.extend_from_slice(&self.data_base.to_le_bytes());
        out.extend_from_slice(&self.bss_size.to_le_bytes());
        write_bytes(&mut out, &self.text);
        write_bytes(&mut out, &self.data);
        out.extend_from_slice(&(self.plt.len() as u32).to_le_bytes());
        for e in &self.plt {
            write_str(&mut out, &e.name);
        }
        out.extend_from_slice(&(self.symbols.len() as u32).to_le_bytes());
        for s in &self.symbols {
            write_str(&mut out, &s.name);
            out.extend_from_slice(&s.addr.to_le_bytes());
            out.extend_from_slice(&s.size.to_le_bytes());
            out.push(match s.kind {
                SymbolKind::Function => 0,
                SymbolKind::Object => 1,
            });
        }
        write_str(&mut out, &self.producer);
        out
    }

    /// Deserialises a binary from its on-disk representation.
    ///
    /// # Errors
    ///
    /// Returns an error if the byte stream is not a valid JBin image.
    pub fn from_bytes(bytes: &[u8]) -> Result<JBinary> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(IrError::MalformedBinary {
                reason: "bad magic".to_string(),
            });
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(IrError::MalformedBinary {
                reason: format!("unsupported format version {version}"),
            });
        }
        let entry = r.u64()?;
        let text_base = r.u64()?;
        let data_base = r.u64()?;
        let bss_size = r.u64()?;
        let text = r.bytes()?.to_vec();
        let data = r.bytes()?.to_vec();
        let plt_len = r.u32()? as usize;
        let mut plt = Vec::with_capacity(plt_len);
        for _ in 0..plt_len {
            plt.push(PltEntry { name: r.string()? });
        }
        let sym_len = r.u32()? as usize;
        let mut symbols = Vec::with_capacity(sym_len);
        for _ in 0..sym_len {
            let name = r.string()?;
            let addr = r.u64()?;
            let size = r.u64()?;
            let kind = match r.u8()? {
                0 => SymbolKind::Function,
                1 => SymbolKind::Object,
                k => {
                    return Err(IrError::MalformedBinary {
                        reason: format!("invalid symbol kind {k}"),
                    })
                }
            };
            symbols.push(Symbol {
                name,
                addr,
                size,
                kind,
            });
        }
        let producer = r.string()?;
        if text.len() % INST_SIZE != 0 {
            return Err(IrError::MalformedBinary {
                reason: "text size is not a multiple of the instruction size".to_string(),
            });
        }
        Ok(JBinary {
            entry,
            text_base,
            text,
            data_base,
            data,
            bss_size,
            plt,
            symbols,
            producer,
        })
    }
}

impl fmt::Display for JBinary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JBinary {{ entry: {:#x}, text: {} insts, data: {} bytes, bss: {} bytes, plt: {}, symbols: {} }}",
            self.entry,
            self.num_instructions(),
            self.data.len(),
            self.bss_size,
            self.plt.len(),
            self.symbols.len()
        )
    }
}

fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(IrError::MalformedBinary {
                reason: "unexpected end of file".to_string(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u64()? as usize;
        self.take(len)
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| IrError::MalformedBinary {
            reason: "invalid UTF-8 in string".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::inst::Inst;

    fn simple_binary() -> JBinary {
        let text: Vec<u8> = [Inst::Nop, Inst::Nop, Inst::Halt]
            .iter()
            .flat_map(|i| encode(i).to_vec())
            .collect();
        let mut bin = JBinary::new(TEXT_BASE, text, vec![1, 2, 3, 4], 64).unwrap();
        bin.add_plt_entry("pow");
        bin.add_plt_entry("memcpy");
        bin.add_symbol(Symbol {
            name: "main".to_string(),
            addr: TEXT_BASE,
            size: 3 * INST_SIZE as u64,
            kind: SymbolKind::Function,
        });
        bin.add_symbol(Symbol {
            name: "table".to_string(),
            addr: DATA_BASE,
            size: 4,
            kind: SymbolKind::Object,
        });
        bin.set_producer("jcc -O3");
        bin
    }

    #[test]
    fn round_trip_serialisation() {
        let bin = simple_binary();
        let bytes = bin.to_bytes();
        let back = JBinary::from_bytes(&bytes).unwrap();
        assert_eq!(back, bin);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = simple_binary().to_bytes();
        bytes[0] = b'X';
        assert!(JBinary::from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let bytes = simple_binary().to_bytes();
        assert!(JBinary::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn rejects_misaligned_text() {
        let err = JBinary::new(TEXT_BASE, vec![0u8; INST_SIZE + 1], vec![], 0).unwrap_err();
        assert!(matches!(err, IrError::MalformedBinary { .. }));
    }

    #[test]
    fn rejects_entry_outside_text() {
        let err = JBinary::new(0x1234, vec![0u8; INST_SIZE], vec![], 0).unwrap_err();
        assert!(matches!(err, IrError::MalformedBinary { .. }));
    }

    #[test]
    fn plt_entries_are_deduplicated() {
        let mut bin = simple_binary();
        let idx = bin.add_plt_entry("pow");
        assert_eq!(idx, 0);
        assert_eq!(bin.plt().len(), 2);
        assert_eq!(bin.plt_name(1), Some("memcpy"));
        assert_eq!(bin.plt_name(9), None);
    }

    #[test]
    fn strip_removes_symbols() {
        let mut bin = simple_binary();
        assert!(!bin.is_stripped());
        assert!(bin.symbol("main").is_ok());
        bin.strip();
        assert!(bin.is_stripped());
        assert!(bin.symbol("main").is_err());
    }

    #[test]
    fn text_bounds() {
        let bin = simple_binary();
        assert!(bin.text_contains(TEXT_BASE));
        assert!(bin.text_contains(bin.text_end() - 1));
        assert!(!bin.text_contains(bin.text_end()));
        assert_eq!(bin.num_instructions(), 3);
    }

    #[test]
    fn function_map_only_contains_functions() {
        let bin = simple_binary();
        let map = bin.function_map();
        assert_eq!(map.len(), 1);
        assert_eq!(map[&TEXT_BASE], "main");
    }

    #[test]
    fn relocate_moves_bases() {
        let mut bin = simple_binary();
        bin.relocate(crate::layout::SYSLIB_BASE, crate::layout::SYSLIB_DATA_BASE);
        assert_eq!(bin.text_base(), crate::layout::SYSLIB_BASE);
        assert!(bin.text_contains(crate::layout::SYSLIB_BASE));
    }

    #[test]
    fn content_digest_tracks_byte_identity() {
        let a = simple_binary();
        let b = simple_binary();
        assert_eq!(a.content_digest(), b.content_digest());
        assert_eq!(
            a.content_digest(),
            JBinary::from_bytes(&a.to_bytes()).unwrap().content_digest(),
            "round-tripping must preserve the digest"
        );
        let mut c = simple_binary();
        c.set_producer("jcc -O2");
        assert_ne!(a.content_digest(), c.content_digest());
        let mut d = simple_binary();
        d.strip();
        assert_ne!(a.content_digest(), d.content_digest());
    }

    #[test]
    fn display_mentions_sections() {
        let s = simple_binary().to_string();
        assert!(s.contains("text"));
        assert!(s.contains("plt"));
    }
}
