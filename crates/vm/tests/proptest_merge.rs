//! Property-based equivalence of the page-aware overlay merge: for any
//! multi-chunk write pattern — word and byte writes, aligned and unaligned,
//! overlapping across chunks — [`merge_chunk_overlays`] must produce a
//! memory image bit-identical to replaying each chunk's sorted word writes
//! through [`CowMemory::apply_writes`] in chunk order.

use janus_vm::{merge_chunk_overlays, CowMemory, FlatMemory, GuestMemory};
use proptest::prelude::*;

/// One generated guest write: an address inside the exercised window, a
/// value, and whether it is a byte store (`true`) or a possibly-unaligned
/// 64-bit store (`false`).
type GenWrite = (u64, u64, bool);

fn apply(view: &mut CowMemory<'_>, writes: &[GenWrite]) {
    for &(addr, value, is_byte) in writes {
        if is_byte {
            view.write_u8(addr, value as u8);
        } else {
            view.write_u64(addr, value);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn page_merge_is_bit_identical_to_sequential_word_merge(
        // Pre-populated base words across the first few pages (some of which
        // no chunk will touch — those pages must be skipped, not disturbed).
        base_words in prop::collection::vec((0u64..4096, any::<u64>()), 0..24),
        // 1–4 chunks of mixed byte/word writes over a 6-page window.
        // Overlaps across chunks are likely and intended: chunk order wins.
        chunks in prop::collection::vec(
            prop::collection::vec((0u64..(6 * 4096 - 8), any::<u64>(), any::<bool>()), 0..48),
            1..4,
        ),
    ) {
        let mut base = FlatMemory::new();
        for &(slot, value) in &base_words {
            base.write_u64(slot * 8, value);
        }

        let overlays: Vec<_> = chunks
            .iter()
            .map(|writes| {
                let mut view = CowMemory::new(&base);
                apply(&mut view, writes);
                view.into_pages()
            })
            .collect();

        // Reference: the pre-PR merge semantics — each chunk's sorted
        // (word, value, dirty-mask) triples spliced in chunk order.
        let mut word_merged = base.clone();
        for overlay in &overlays {
            CowMemory::apply_writes(&mut word_merged, &overlay.to_writes());
        }

        // Page-aware merge, sequential and parallel paths.
        for threads in [1usize, 4] {
            let mut page_merged = base.clone();
            let stats = merge_chunk_overlays(&mut page_merged, &overlays, threads);
            prop_assert_eq!(
                page_merged.image_digest(),
                word_merged.image_digest(),
                "threads={}, stats={:?}",
                threads,
                stats
            );
        }
    }

    #[test]
    fn into_writes_and_into_pages_describe_the_same_overlay(
        writes in prop::collection::vec((0u64..(3 * 4096 - 8), any::<u64>(), any::<bool>()), 0..48),
    ) {
        let base = FlatMemory::new();
        let mut a = CowMemory::new(&base);
        apply(&mut a, &writes);
        let mut b = CowMemory::new(&base);
        apply(&mut b, &writes);
        prop_assert_eq!(a.written_words(), b.written_words());
        let from_words = a.into_writes();
        let from_pages = b.into_pages().to_writes();
        prop_assert_eq!(from_words, from_pages);
    }
}
