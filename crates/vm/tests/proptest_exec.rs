//! Property-based tests of the guest machine: memory round trips, flag
//! semantics against a reference model, and ALU execution against native
//! Rust arithmetic.

use janus_ir::{AluOp, Cond, Inst, Operand, Reg};
use janus_vm::{exec_inst, Cpu, FlatMemory, GuestMemory};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn memory_round_trips_arbitrary_words(addr in 0u64..0x7fff_0000, value in any::<u64>()) {
        let mut mem = FlatMemory::new();
        mem.write_u64(addr, value);
        prop_assert_eq!(mem.read_u64(addr), value);
        // Neighbouring, untouched words still read as zero.
        prop_assert_eq!(mem.read_u64(addr + 4096), 0);
    }

    #[test]
    fn byte_writes_compose_into_words(addr in 0u64..0x1000_0000, bytes in proptest::array::uniform8(any::<u8>())) {
        let mut mem = FlatMemory::new();
        for (i, b) in bytes.iter().enumerate() {
            mem.write_u8(addr + i as u64, *b);
        }
        prop_assert_eq!(mem.read_u64(addr), u64::from_le_bytes(bytes));
    }

    #[test]
    fn compare_and_branch_agree_with_native_comparison(a in any::<i64>(), b in any::<i64>()) {
        let mut cpu = Cpu::new();
        cpu.set_sp(0x7fff_0000);
        let mut mem = FlatMemory::new();
        cpu.write_gpr(Reg::R1, a);
        cpu.write_gpr(Reg::R2, b);
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::cmp(Operand::reg(Reg::R1), Operand::reg(Reg::R2)),
            0,
        )
        .unwrap();
        prop_assert_eq!(cpu.flags.eval(Cond::Eq), a == b);
        prop_assert_eq!(cpu.flags.eval(Cond::Ne), a != b);
        prop_assert_eq!(cpu.flags.eval(Cond::Lt), a < b);
        prop_assert_eq!(cpu.flags.eval(Cond::Le), a <= b);
        prop_assert_eq!(cpu.flags.eval(Cond::Gt), a > b);
        prop_assert_eq!(cpu.flags.eval(Cond::Ge), a >= b);
        prop_assert_eq!(cpu.flags.eval(Cond::Below), (a as u64) < (b as u64));
        prop_assert_eq!(cpu.flags.eval(Cond::AboveEq), (a as u64) >= (b as u64));
    }

    #[test]
    fn alu_execution_matches_reference_arithmetic(a in any::<i64>(), b in any::<i64>()) {
        let cases: Vec<(AluOp, Option<i64>)> = vec![
            (AluOp::Add, Some(a.wrapping_add(b))),
            (AluOp::Sub, Some(a.wrapping_sub(b))),
            (AluOp::Mul, Some(a.wrapping_mul(b))),
            (AluOp::And, Some(a & b)),
            (AluOp::Or, Some(a | b)),
            (AluOp::Xor, Some(a ^ b)),
            (AluOp::Div, (b != 0).then(|| a.wrapping_div(b))),
            (AluOp::Rem, (b != 0).then(|| a.wrapping_rem(b))),
        ];
        for (op, expected) in cases {
            let mut cpu = Cpu::new();
            cpu.set_sp(0x7fff_0000);
            let mut mem = FlatMemory::new();
            cpu.write_gpr(Reg::R1, a);
            cpu.write_gpr(Reg::R2, b);
            let result = exec_inst(
                &mut cpu,
                &mut mem,
                &Inst::alu(op, Operand::reg(Reg::R1), Operand::reg(Reg::R2)),
                0,
            );
            match expected {
                Some(v) => {
                    prop_assert!(result.is_ok());
                    prop_assert_eq!(cpu.read_gpr(Reg::R1), v);
                }
                None => prop_assert!(result.is_err(), "division by zero must error"),
            }
        }
    }

    #[test]
    fn push_pop_is_the_identity(values in proptest::collection::vec(any::<i64>(), 1..16)) {
        let mut cpu = Cpu::new();
        cpu.set_sp(0x7fff_0000);
        let mut mem = FlatMemory::new();
        for v in &values {
            cpu.write_gpr(Reg::R3, *v);
            exec_inst(&mut cpu, &mut mem, &Inst::Push { src: Operand::reg(Reg::R3) }, 0).unwrap();
        }
        for v in values.iter().rev() {
            exec_inst(&mut cpu, &mut mem, &Inst::Pop { dst: Operand::reg(Reg::R4) }, 0).unwrap();
            prop_assert_eq!(cpu.read_gpr(Reg::R4), *v);
        }
        prop_assert_eq!(cpu.sp(), 0x7fff_0000);
    }
}
