//! Guest memory: the flat virtual address space and the access trait used to
//! interpose on loads and stores.

use std::collections::HashMap;

pub(crate) const PAGE_SHIFT: u64 = 12;
pub(crate) const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// The interface through which executed instructions access guest memory.
///
/// The dynamic binary modifier interposes on this trait to implement memory
/// privatisation, main-stack redirection and software transactional memory:
/// translated code runs against a wrapper view instead of the raw
/// [`FlatMemory`].
pub trait GuestMemory {
    /// Reads one byte.
    fn read_u8(&mut self, addr: u64) -> u8;
    /// Writes one byte.
    fn write_u8(&mut self, addr: u64, value: u8);

    /// Reads a little-endian 64-bit value.
    fn read_u64(&mut self, addr: u64) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian 64-bit value.
    fn write_u64(&mut self, addr: u64, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads an `i64`.
    fn read_i64(&mut self, addr: u64) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Writes an `i64`.
    fn write_i64(&mut self, addr: u64, value: i64) {
        self.write_u64(addr, value as u64);
    }

    /// Reads an `f64`.
    fn read_f64(&mut self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Copies `data.len()` bytes into guest memory starting at `addr`.
    fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        for (i, b) in data.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    fn read_bytes(&mut self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }
}

/// Non-mutating guest-memory reads through a shared reference.
///
/// [`GuestMemory`] takes `&mut self` even for loads (views track read sets,
/// the flat memory counts accesses), which makes it unusable as the *shared
/// base* of concurrently executing views: worker threads all need to read the
/// same immutable image at once. This trait is that read-only face. It is
/// implemented by [`FlatMemory`] (reads bypass the load counters, exactly
/// like the inherent `peek_*` methods) and by [`crate::CowMemory`] (overlay
/// words shadow the base), and it is what `janus-spec`'s per-incarnation
/// views and the OS-thread execution backends build on.
pub trait PeekMemory {
    /// Reads one byte without mutating any state.
    fn peek_u8(&self, addr: u64) -> u8;

    /// Reads a little-endian 64-bit value without mutating any state.
    fn peek_u64(&self, addr: u64) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.peek_u8(addr + i as u64);
        }
        u64::from_le_bytes(bytes)
    }
}

impl PeekMemory for FlatMemory {
    fn peek_u8(&self, addr: u64) -> u8 {
        FlatMemory::peek_u8(self, addr)
    }

    fn peek_u64(&self, addr: u64) -> u64 {
        FlatMemory::peek_u64(self, addr)
    }
}

/// A sparse, page-granular flat address space. Unmapped memory reads as zero.
#[derive(Debug, Default, Clone)]
pub struct FlatMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    /// Number of load operations serviced (for statistics).
    pub loads: u64,
    /// Number of store operations serviced (for statistics).
    pub stores: u64,
}

impl FlatMemory {
    /// Creates an empty address space.
    #[must_use]
    pub fn new() -> FlatMemory {
        FlatMemory::default()
    }

    fn page_of(addr: u64) -> (u64, usize) {
        (addr >> PAGE_SHIFT, (addr & (PAGE_SIZE as u64 - 1)) as usize)
    }

    /// Number of pages currently mapped.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// The raw bytes of one mapped page, by page index (`addr >> PAGE_SHIFT`),
    /// or `None` for an unmapped page. Used by the page-aware overlay merge,
    /// which reads base pages from worker threads through a shared reference.
    pub(crate) fn page_ref(&self, page: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&page).map(Box::as_ref)
    }

    /// The bytes of one page, mapping it (zero-filled) if absent. Access
    /// statistics are not touched — this is a merge-path primitive, not a
    /// guest access.
    pub(crate) fn page_mut(&mut self, page: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Replaces (or maps) one page with fully merged bytes. The parallel
    /// overlay merge builds final page images off-thread and installs them
    /// here — a pointer move, so the single-threaded tail of the merge stays
    /// cheap.
    pub(crate) fn install_page(&mut self, page: u64, bytes: Box<[u8; PAGE_SIZE]>) {
        self.pages.insert(page, bytes);
    }

    /// Reads one byte without updating access statistics. Used by shared
    /// read-only views ([`crate::CowMemory`]) that layer private writes over
    /// an immutable base image.
    #[must_use]
    pub fn peek_u8(&self, addr: u64) -> u8 {
        let (page, off) = Self::page_of(addr);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Reads a little-endian 64-bit value without updating access statistics.
    #[must_use]
    pub fn peek_u64(&self, addr: u64) -> u64 {
        let (page, off) = Self::page_of(addr);
        if off + 8 <= PAGE_SIZE {
            let mut b = [0u8; 8];
            match self.pages.get(&page) {
                Some(p) => b.copy_from_slice(&p[off..off + 8]),
                None => return 0,
            }
            u64::from_le_bytes(b)
        } else {
            let mut bytes = [0u8; 8];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = self.peek_u8(addr + i as u64);
            }
            u64::from_le_bytes(bytes)
        }
    }

    /// A deterministic digest of the guest-visible memory image (FNV-1a over
    /// the mapped pages in address order). Pages holding only zero bytes are
    /// skipped, so an unwritten page and a page written with zeroes — which
    /// are indistinguishable to the guest — digest identically. Access
    /// statistics do not contribute. Used to assert that two execution
    /// backends left behind the same final memory image.
    #[must_use]
    pub fn image_digest(&self) -> u64 {
        use janus_ir::digest::{fnv1a_update, FNV1A_OFFSET};
        let mut pages: Vec<&u64> = self
            .pages
            .iter()
            .filter(|(_, p)| p.iter().any(|b| *b != 0))
            .map(|(n, _)| n)
            .collect();
        pages.sort_unstable();
        let mut h = FNV1A_OFFSET;
        for page in pages {
            h = fnv1a_update(h, &page.to_le_bytes());
            h = fnv1a_update(h, &self.pages[page][..]);
        }
        h
    }

    /// Fast aligned 64-bit read used internally when the access does not
    /// cross a page boundary.
    fn read_u64_fast(&mut self, addr: u64) -> Option<u64> {
        let (page, off) = Self::page_of(addr);
        if off + 8 <= PAGE_SIZE {
            let p = self.pages.get(&page)?;
            let mut b = [0u8; 8];
            b.copy_from_slice(&p[off..off + 8]);
            Some(u64::from_le_bytes(b))
        } else {
            None
        }
    }

    fn write_u64_fast(&mut self, addr: u64, value: u64) -> bool {
        let (page, off) = Self::page_of(addr);
        if off + 8 <= PAGE_SIZE {
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            p[off..off + 8].copy_from_slice(&value.to_le_bytes());
            true
        } else {
            false
        }
    }
}

impl GuestMemory for FlatMemory {
    fn read_u8(&mut self, addr: u64) -> u8 {
        self.loads += 1;
        let (page, off) = Self::page_of(addr);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    fn write_u8(&mut self, addr: u64, value: u8) {
        self.stores += 1;
        let (page, off) = Self::page_of(addr);
        let p = self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        p[off] = value;
    }

    fn read_u64(&mut self, addr: u64) -> u64 {
        self.loads += 1;
        if let Some(v) = self.read_u64_fast(addr) {
            return v;
        }
        let (page, _) = Self::page_of(addr);
        if !self.pages.contains_key(&page) && !self.pages.contains_key(&(page + 1)) {
            return 0;
        }
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            let (p, off) = Self::page_of(addr + i as u64);
            *b = self.pages.get(&p).map_or(0, |pg| pg[off]);
        }
        u64::from_le_bytes(bytes)
    }

    fn write_u64(&mut self, addr: u64, value: u64) {
        self.stores += 1;
        if self.write_u64_fast(addr, value) {
            return;
        }
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            let (page, off) = Self::page_of(addr + i as u64);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            p[off] = *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_memory_reads_zero() {
        let mut m = FlatMemory::new();
        assert_eq!(m.read_u8(0x12345), 0);
        assert_eq!(m.read_u64(0xdead_beef), 0);
        assert_eq!(m.mapped_pages(), 0, "reads do not allocate pages");
    }

    #[test]
    fn u64_round_trip_aligned_and_unaligned() {
        let mut m = FlatMemory::new();
        m.write_u64(0x1000, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(0x1000), 0x0123_4567_89ab_cdef);
        // Crosses a page boundary.
        let addr = 0x1ffc;
        m.write_u64(addr, 0xfeed_f00d_dead_beef);
        assert_eq!(m.read_u64(addr), 0xfeed_f00d_dead_beef);
    }

    #[test]
    fn f64_and_i64_round_trip() {
        let mut m = FlatMemory::new();
        m.write_f64(0x2000, -3.25);
        assert_eq!(m.read_f64(0x2000), -3.25);
        m.write_i64(0x2008, -99);
        assert_eq!(m.read_i64(0x2008), -99);
    }

    #[test]
    fn bytes_round_trip() {
        let mut m = FlatMemory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(0x0fff, &data); // crosses a page boundary
        assert_eq!(m.read_bytes(0x0fff, 256), data);
    }

    #[test]
    fn statistics_count_accesses() {
        let mut m = FlatMemory::new();
        m.write_u64(0x100, 1);
        let _ = m.read_u64(0x100);
        let _ = m.read_u8(0x100);
        assert_eq!(m.stores, 1);
        assert_eq!(m.loads, 2);
    }

    #[test]
    fn peek_matches_read_without_counting() {
        let mut m = FlatMemory::new();
        m.write_u64(0x1ffc, 0xfeed_f00d_dead_beef); // crosses a page boundary
        let loads = m.loads;
        assert_eq!(m.peek_u64(0x1ffc), 0xfeed_f00d_dead_beef);
        assert_eq!(m.peek_u8(0x1ffc), 0xef);
        assert_eq!(m.peek_u64(0x9_0000), 0, "unmapped memory peeks zero");
        assert_eq!(m.loads, loads, "peeks are not counted as loads");
    }

    #[test]
    fn image_digest_ignores_stats_and_zero_pages() {
        let mut a = FlatMemory::new();
        let mut b = FlatMemory::new();
        a.write_u64(0x4000, 77);
        b.write_u64(0x4000, 77);
        // Extra loads/stores and an all-zero page must not change the digest.
        let _ = b.read_u64(0x4000);
        b.write_u64(0x8000, 0);
        assert_eq!(a.image_digest(), b.image_digest());
        a.write_u64(0x4008, 1);
        assert_ne!(a.image_digest(), b.image_digest());
    }

    #[test]
    fn partial_overwrite_behaves_byte_wise() {
        let mut m = FlatMemory::new();
        m.write_u64(0x3000, u64::MAX);
        m.write_u8(0x3000, 0);
        assert_eq!(m.read_u64(0x3000), u64::MAX << 8);
    }
}
