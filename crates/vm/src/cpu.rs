//! Architectural machine state of one guest hardware context.

use crate::cost::CostModel;
use janus_ir::{Cond, Reg, RegClass, NUM_GPR, NUM_VREG};

/// Condition flags produced by compare, test and ALU instructions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag (unsigned borrow).
    pub cf: bool,
    /// Overflow flag (signed overflow).
    pub of: bool,
}

impl Flags {
    /// Sets the flags from an integer comparison `lhs - rhs`.
    pub fn set_cmp(&mut self, lhs: i64, rhs: i64) {
        let (res, of) = lhs.overflowing_sub(rhs);
        self.zf = res == 0;
        self.sf = res < 0;
        self.of = of;
        self.cf = (lhs as u64) < (rhs as u64);
    }

    /// Sets the flags from a floating-point comparison.
    pub fn set_fcmp(&mut self, lhs: f64, rhs: f64) {
        self.zf = lhs == rhs;
        self.sf = lhs < rhs;
        self.of = false;
        self.cf = lhs < rhs;
    }

    /// Sets the flags from the result of a logical/arithmetic operation.
    pub fn set_result(&mut self, result: i64) {
        self.zf = result == 0;
        self.sf = result < 0;
        self.of = false;
        self.cf = false;
    }

    /// Evaluates a branch condition against the current flags.
    #[must_use]
    pub fn eval(&self, cond: Cond) -> bool {
        match cond {
            Cond::Eq => self.zf,
            Cond::Ne => !self.zf,
            Cond::Lt => self.sf != self.of,
            Cond::Le => self.zf || (self.sf != self.of),
            Cond::Gt => !self.zf && (self.sf == self.of),
            Cond::Ge => self.sf == self.of,
            Cond::Below => self.cf,
            Cond::AboveEq => !self.cf,
        }
    }
}

/// One guest hardware context: integer registers, vector registers, flags,
/// program counter and an accumulated cycle counter.
#[derive(Debug, Clone, PartialEq)]
pub struct Cpu {
    /// Integer register file.
    pub gpr: [i64; NUM_GPR],
    /// Vector register file (four `f64` lanes each).
    pub vreg: [[f64; 4]; NUM_VREG],
    /// Condition flags.
    pub flags: Flags,
    /// Program counter.
    pub pc: u64,
    /// Cycles consumed so far (per the active [`CostModel`]).
    pub cycles: u64,
    /// Number of instructions retired.
    pub retired: u64,
    /// The cost model used to charge cycles.
    pub cost: CostModel,
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

impl Cpu {
    /// Creates a CPU with all registers zeroed and the default cost model.
    #[must_use]
    pub fn new() -> Cpu {
        Cpu {
            gpr: [0; NUM_GPR],
            vreg: [[0.0; 4]; NUM_VREG],
            flags: Flags::default(),
            pc: 0,
            cycles: 0,
            retired: 0,
            cost: CostModel::default(),
        }
    }

    /// Reads an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a general-purpose register.
    #[must_use]
    pub fn read_gpr(&self, reg: Reg) -> i64 {
        assert_eq!(reg.class(), RegClass::Gpr, "expected a GPR, got {reg}");
        self.gpr[reg.index() as usize]
    }

    /// Writes an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a general-purpose register.
    pub fn write_gpr(&mut self, reg: Reg, value: i64) {
        assert_eq!(reg.class(), RegClass::Gpr, "expected a GPR, got {reg}");
        self.gpr[reg.index() as usize] = value;
    }

    /// Reads lane 0 of a vector register as a scalar `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a vector register.
    #[must_use]
    pub fn read_f64(&self, reg: Reg) -> f64 {
        assert_eq!(reg.class(), RegClass::Vec, "expected a vector register");
        self.vreg[reg.index() as usize][0]
    }

    /// Writes lane 0 of a vector register.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a vector register.
    pub fn write_f64(&mut self, reg: Reg, value: f64) {
        assert_eq!(reg.class(), RegClass::Vec, "expected a vector register");
        self.vreg[reg.index() as usize][0] = value;
    }

    /// Reads a whole vector register.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a vector register.
    #[must_use]
    pub fn read_vec(&self, reg: Reg) -> [f64; 4] {
        assert_eq!(reg.class(), RegClass::Vec, "expected a vector register");
        self.vreg[reg.index() as usize]
    }

    /// Writes a whole vector register.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a vector register.
    pub fn write_vec(&mut self, reg: Reg, value: [f64; 4]) {
        assert_eq!(reg.class(), RegClass::Vec, "expected a vector register");
        self.vreg[reg.index() as usize] = value;
    }

    /// The stack pointer.
    #[must_use]
    pub fn sp(&self) -> u64 {
        self.read_gpr(Reg::SP) as u64
    }

    /// Sets the stack pointer.
    pub fn set_sp(&mut self, sp: u64) {
        self.write_gpr(Reg::SP, sp as i64);
    }

    /// Copies the full architectural state (registers and flags, not the
    /// counters) from another CPU. Used when forking thread contexts.
    pub fn copy_arch_state_from(&mut self, other: &Cpu) {
        self.gpr = other.gpr;
        self.vreg = other.vreg;
        self.flags = other.flags;
        self.pc = other.pc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_flag_semantics() {
        let mut f = Flags::default();
        f.set_cmp(5, 5);
        assert!(f.eval(Cond::Eq));
        assert!(f.eval(Cond::Le));
        assert!(f.eval(Cond::Ge));
        assert!(!f.eval(Cond::Lt));

        f.set_cmp(3, 7);
        assert!(f.eval(Cond::Lt));
        assert!(f.eval(Cond::Ne));
        assert!(!f.eval(Cond::Gt));

        f.set_cmp(-1, 1);
        assert!(f.eval(Cond::Lt));
        assert!(!f.eval(Cond::Below), "unsigned: -1 is huge");

        f.set_cmp(7, 3);
        assert!(f.eval(Cond::Gt));
        assert!(f.eval(Cond::AboveEq));
    }

    #[test]
    fn unsigned_conditions_use_carry() {
        let mut f = Flags::default();
        f.set_cmp(-1, 1); // as unsigned: u64::MAX vs 1
        assert!(!f.eval(Cond::Below));
        assert!(f.eval(Cond::AboveEq));
        f.set_cmp(1, -1);
        assert!(f.eval(Cond::Below));
    }

    #[test]
    fn fcmp_flag_semantics() {
        let mut f = Flags::default();
        f.set_fcmp(1.5, 1.5);
        assert!(f.eval(Cond::Eq));
        f.set_fcmp(1.0, 2.0);
        assert!(f.eval(Cond::Lt));
        assert!(f.eval(Cond::Below));
        f.set_fcmp(2.0, 1.0);
        assert!(f.eval(Cond::Gt));
    }

    #[test]
    fn register_accessors() {
        let mut cpu = Cpu::new();
        cpu.write_gpr(Reg::R3, -17);
        assert_eq!(cpu.read_gpr(Reg::R3), -17);
        cpu.write_f64(Reg::V2, 2.75);
        assert_eq!(cpu.read_f64(Reg::V2), 2.75);
        cpu.write_vec(Reg::V4, [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cpu.read_vec(Reg::V4), [1.0, 2.0, 3.0, 4.0]);
        cpu.set_sp(0x7fff_0000);
        assert_eq!(cpu.sp(), 0x7fff_0000);
    }

    #[test]
    #[should_panic(expected = "expected a GPR")]
    fn reading_vector_as_gpr_panics() {
        let cpu = Cpu::new();
        let _ = cpu.read_gpr(Reg::V0);
    }

    #[test]
    fn copy_arch_state_preserves_counters() {
        let mut a = Cpu::new();
        a.cycles = 100;
        let mut b = Cpu::new();
        b.write_gpr(Reg::R1, 9);
        b.pc = 0x400040;
        a.copy_arch_state_from(&b);
        assert_eq!(a.read_gpr(Reg::R1), 9);
        assert_eq!(a.pc, 0x400040);
        assert_eq!(a.cycles, 100, "cycle counter must not be copied");
    }
}
