//! # janus-vm — the JVA guest machine
//!
//! This crate provides the execution substrate that real hardware provides in
//! the original Janus system: a machine with registers, flags and a flat
//! virtual address space that runs JVA instructions. It is used in two ways:
//!
//! * **Native execution** ([`Vm`]): a whole process (main binary + shared
//!   system library) is loaded and interpreted directly, with a deterministic
//!   cycle cost model. This is the baseline every speedup in the evaluation
//!   is normalised against.
//! * **As the execution engine of the dynamic binary modifier**: the
//!   [`exec::exec_inst`] single-step interpreter is generic over the
//!   [`GuestMemory`] trait, which lets the DBM route memory accesses of
//!   translated (and possibly rewritten) instructions through privatised or
//!   transactional views.
//!
//! The [`syslib`] module contains a small math/string library written in JVA
//! assembly and loaded at a high address range; calls into it through the PLT
//! are the "dynamically discovered code" that forces Janus' speculation path.
//!
//! # Example
//!
//! ```
//! use janus_ir::{AsmBuilder, AluOp, Inst, Operand, Reg, SyscallNum};
//! use janus_vm::{Process, Vm};
//!
//! let mut asm = AsmBuilder::new();
//! asm.function("main");
//! asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(2)));
//! asm.push(Inst::alu(AluOp::Mul, Operand::reg(Reg::R0), Operand::imm(21)));
//! asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::reg(Reg::R0)));
//! asm.push(Inst::Syscall { num: SyscallNum::WriteInt.as_u32() });
//! asm.push(Inst::Halt);
//! let binary = asm.finish_binary("main").unwrap();
//!
//! let process = Process::load(&binary).unwrap();
//! let mut vm = Vm::new(process);
//! let result = vm.run().unwrap();
//! assert_eq!(vm.output_ints(), &[42]);
//! assert!(result.cycles > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod cpu;
pub mod exec;
pub mod memory;
pub mod overlay;
pub mod process;
pub mod syslib;
pub mod vm;

mod error;

pub use cost::CostModel;
pub use cpu::{Cpu, Flags};
pub use error::{Result, VmError};
pub use exec::{exec_inst, Effect};
pub use memory::{FlatMemory, GuestMemory, PeekMemory};
pub use overlay::{merge_chunk_overlays, ChunkOverlay, CowMemory, MergeStats, OverlayWrite};
pub use process::{Process, ResolvedPlt};
pub use syslib::build_syslib;
pub use vm::{RunResult, Vm, VmConfig};
