//! Deterministic cycle cost model.
//!
//! The evaluation host has a single CPU core, so wall-clock speedups on eight
//! threads cannot be measured directly. Instead every executed instruction is
//! charged a deterministic cycle cost and parallel-region time is the maximum
//! over the participating threads (see `janus-dbm`). The *relative* costs are
//! loosely calibrated to a Sandy-Bridge-class out-of-order core so that the
//! shapes of the paper's figures are preserved.

use janus_ir::{AluOp, Inst};

/// Per-instruction-class cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of simple register-to-register ALU operations and moves.
    pub alu: u64,
    /// Extra cost of integer multiplication.
    pub mul_extra: u64,
    /// Extra cost of integer division / remainder.
    pub div_extra: u64,
    /// Cost of a scalar floating-point operation.
    pub fpu: u64,
    /// Extra cost of floating-point division or square root.
    pub fdiv_extra: u64,
    /// Cost of a packed vector operation (amortised per instruction).
    pub vec: u64,
    /// Additional cost for every explicit memory access.
    pub mem_access: u64,
    /// Cost of a taken or not-taken direct branch.
    pub branch: u64,
    /// Additional cost of an indirect branch (branch-target lookup).
    pub indirect_extra: u64,
    /// Cost of a call or return.
    pub call: u64,
    /// Cost of a system call.
    pub syscall: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            mul_extra: 2,
            div_extra: 20,
            fpu: 2,
            fdiv_extra: 12,
            vec: 2,
            mem_access: 3,
            branch: 1,
            indirect_extra: 6,
            call: 2,
            syscall: 150,
        }
    }
}

impl CostModel {
    /// A cost model in which every instruction costs one cycle; useful in
    /// tests that only care about instruction counts.
    #[must_use]
    pub fn unit() -> CostModel {
        CostModel {
            alu: 1,
            mul_extra: 0,
            div_extra: 0,
            fpu: 1,
            fdiv_extra: 0,
            vec: 1,
            mem_access: 0,
            branch: 1,
            indirect_extra: 0,
            call: 1,
            syscall: 1,
        }
    }

    /// The cycle cost of executing `inst` once.
    #[must_use]
    pub fn cost(&self, inst: &Inst) -> u64 {
        let mem = if inst.touches_memory() {
            self.mem_access
        } else {
            0
        };
        let base = match inst {
            Inst::Nop | Inst::Halt => 1,
            Inst::Mov { .. } | Inst::Lea { .. } | Inst::CMov { .. } => self.alu,
            Inst::Alu { op, .. } => {
                self.alu
                    + match op {
                        AluOp::Mul => self.mul_extra,
                        AluOp::Div | AluOp::Rem => self.div_extra,
                        _ => 0,
                    }
            }
            Inst::FMov { .. } | Inst::CvtIntToFloat { .. } | Inst::CvtFloatToInt { .. } => self.fpu,
            Inst::Fpu { op, .. } => {
                self.fpu
                    + match op {
                        janus_ir::FpuOp::Div | janus_ir::FpuOp::Sqrt => self.fdiv_extra,
                        _ => 0,
                    }
            }
            Inst::VMov { .. } | Inst::Vec { .. } => self.vec,
            Inst::Cmp { .. } | Inst::FCmp { .. } | Inst::Test { .. } => self.alu,
            Inst::Jmp { .. } | Inst::Jcc { .. } => self.branch,
            Inst::JmpInd { .. } => self.branch + self.indirect_extra,
            Inst::Call { .. } | Inst::Ret => self.call,
            Inst::CallInd { .. } | Inst::CallExt { .. } => self.call + self.indirect_extra,
            Inst::Push { .. } | Inst::Pop { .. } => self.alu + self.mem_access,
            Inst::Syscall { .. } => self.syscall,
        };
        base + mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_ir::{MemRef, Operand, Reg};

    #[test]
    fn division_is_more_expensive_than_addition() {
        let m = CostModel::default();
        let add = Inst::alu(AluOp::Add, Operand::reg(Reg::R0), Operand::imm(1));
        let div = Inst::alu(AluOp::Div, Operand::reg(Reg::R0), Operand::reg(Reg::R1));
        assert!(m.cost(&div) > m.cost(&add));
    }

    #[test]
    fn memory_operands_add_cost() {
        let m = CostModel::default();
        let reg = Inst::mov(Operand::reg(Reg::R0), Operand::reg(Reg::R1));
        let mem = Inst::mov(Operand::reg(Reg::R0), Operand::mem(MemRef::base(Reg::R1)));
        assert!(m.cost(&mem) > m.cost(&reg));
    }

    #[test]
    fn indirect_branches_cost_more_than_direct() {
        let m = CostModel::default();
        let direct = Inst::Jmp { target: 0x400000 };
        let indirect = Inst::JmpInd {
            target: Operand::reg(Reg::R1),
        };
        assert!(m.cost(&indirect) > m.cost(&direct));
    }

    #[test]
    fn unit_model_charges_flat_rates() {
        let m = CostModel::unit();
        let add = Inst::alu(AluOp::Add, Operand::reg(Reg::R0), Operand::imm(1));
        let div = Inst::alu(AluOp::Div, Operand::reg(Reg::R0), Operand::reg(Reg::R1));
        assert_eq!(m.cost(&add), m.cost(&div));
    }

    #[test]
    fn every_instruction_costs_at_least_one_cycle() {
        let m = CostModel::default();
        assert!(m.cost(&Inst::Nop) >= 1);
        assert!(m.cost(&Inst::Halt) >= 1);
        assert!(m.cost(&Inst::Ret) >= 1);
    }
}
