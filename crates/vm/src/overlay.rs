//! Copy-on-write guest-memory views for OS-thread execution backends.
//!
//! A parallelised loop chunk running on a real worker thread cannot share a
//! `&mut FlatMemory` with its siblings. [`CowMemory`] gives each chunk a
//! `Send`-able view instead: reads fall through to a shared read-only base
//! image, writes land in a private page-structured overlay. After the
//! workers join, the coordinating thread merges each overlay back into the
//! base in chunk order, which reproduces the memory image a sequential
//! chunk-by-chunk execution would have produced.
//!
//! The overlay is organised as pages mirroring [`FlatMemory`]'s own layout:
//! on first touch of a page the base bytes are copied in, so subsequent
//! reads and writes are plain array indexing, and each page carries a
//! per-word dirty bitmap plus per-byte dirty masks. The bitmaps are what
//! make the merge page-aware — [`merge_chunk_overlays`] visits only touched
//! pages (untouched base pages are skipped entirely, never re-hashed or
//! re-scanned) and, when the touched set is large, builds the merged page
//! images on worker threads and installs them into the target as pointer
//! moves.

use crate::memory::{FlatMemory, GuestMemory, PeekMemory, PAGE_SHIFT, PAGE_SIZE};
use std::collections::HashMap;

/// 64-bit words per page.
const WORDS_PER_PAGE: usize = PAGE_SIZE / 8;
/// `u64` bitmap words needed to give each page word one dirty bit.
const BITMAP_WORDS: usize = WORDS_PER_PAGE / 64;
/// Below this many touched pages the merge stays on the calling thread —
/// spawning workers costs more than splicing a handful of pages.
const PARALLEL_MERGE_MIN_PAGES: usize = 32;

/// A pending overlay write: the aligned word address, the value, and the
/// mask of bytes (bit *i* ⇒ byte *i*) that were actually written.
pub type OverlayWrite = (u64, u64, u8);

/// One page of overlay state: a full copy of the base page's words (so
/// reads are array lookups), a per-word dirty-byte mask, and a one-bit-per-
/// word dirty bitmap for fast iteration over written words.
///
/// The byte masks are what make the merge byte-exact: two sibling chunks
/// may legally write *disjoint bytes* of the same 8-byte word (an unaligned
/// store straddling a chunk boundary, byte-granular stores), and merging
/// whole words would let the later chunk clobber the earlier one's bytes
/// with stale base data. Only dirty bytes are applied.
#[derive(Debug, Clone)]
struct PageOverlay {
    values: [u64; WORDS_PER_PAGE],
    masks: [u8; WORDS_PER_PAGE],
    dirty: [u64; BITMAP_WORDS],
}

impl PageOverlay {
    /// A fresh overlay page seeded from the base image (zero-filled when the
    /// base page is unmapped).
    fn from_base(base: &FlatMemory, page: u64) -> Box<PageOverlay> {
        let mut overlay = Box::new(PageOverlay {
            values: [0u64; WORDS_PER_PAGE],
            masks: [0u8; WORDS_PER_PAGE],
            dirty: [0u64; BITMAP_WORDS],
        });
        if let Some(bytes) = base.page_ref(page) {
            for (i, chunk) in bytes.chunks_exact(8).enumerate() {
                overlay.values[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
        }
        overlay
    }

    /// Number of dirty (written) words on this page.
    fn dirty_words(&self) -> usize {
        self.dirty.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Calls `f(word index, value, dirty-byte mask)` for every dirty word in
    /// ascending order.
    fn for_each_dirty(&self, mut f: impl FnMut(usize, u64, u8)) {
        for (bm, &bits) in self.dirty.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let idx = bm * 64 + bits.trailing_zeros() as usize;
                f(idx, self.values[idx], self.masks[idx]);
                bits &= bits - 1;
            }
        }
    }
}

/// Splices one overlay word's dirty bytes over the current bytes of a page
/// image. A fully dirty word is stored whole.
fn splice_word(bytes: &mut [u8; PAGE_SIZE], idx: usize, value: u64, mask: u8) {
    let off = idx * 8;
    let new = value.to_le_bytes();
    if mask == 0xff {
        bytes[off..off + 8].copy_from_slice(&new);
    } else {
        for i in 0..8 {
            if mask & (1 << i) != 0 {
                bytes[off + i] = new[i];
            }
        }
    }
}

/// A private, writable view over a shared read-only [`FlatMemory`] image.
///
/// Writes are buffered at aligned-64-bit-word granularity with a per-byte
/// dirty mask, inside page-sized overlay blocks mirroring the base layout;
/// byte and unaligned accesses are composed through the covering words. The
/// view borrows the base immutably, so any number of views can coexist —
/// one per worker thread.
#[derive(Debug)]
pub struct CowMemory<'a> {
    base: &'a FlatMemory,
    pages: HashMap<u64, Box<PageOverlay>>,
    written: usize,
}

impl<'a> CowMemory<'a> {
    /// A fresh view with an empty overlay.
    #[must_use]
    pub fn new(base: &'a FlatMemory) -> CowMemory<'a> {
        CowMemory {
            base,
            pages: HashMap::new(),
            written: 0,
        }
    }

    /// Number of distinct words the view has written (fully or partially).
    #[must_use]
    pub fn written_words(&self) -> usize {
        self.written
    }

    /// Number of distinct pages the view has touched with at least one write.
    #[must_use]
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }

    /// Consumes the view and returns its writes as
    /// `(word address, value, dirty-byte mask)` triples sorted by address.
    /// Apply them with [`CowMemory::apply_writes`].
    #[must_use]
    pub fn into_writes(self) -> Vec<OverlayWrite> {
        let mut writes: Vec<OverlayWrite> = Vec::with_capacity(self.written);
        let mut pages: Vec<(u64, Box<PageOverlay>)> = self.pages.into_iter().collect();
        pages.sort_unstable_by_key(|&(page, _)| page);
        for (page, overlay) in pages {
            let base_addr = page << PAGE_SHIFT;
            overlay.for_each_dirty(|idx, value, mask| {
                writes.push((base_addr + (idx as u64) * 8, value, mask));
            });
        }
        writes
    }

    /// Consumes the view and returns its dirty pages as a [`ChunkOverlay`],
    /// the unit [`merge_chunk_overlays`] consumes. Only pages with at least
    /// one dirty word are retained.
    #[must_use]
    pub fn into_pages(self) -> ChunkOverlay {
        let mut pages: Vec<(u64, Box<PageOverlay>)> = self
            .pages
            .into_iter()
            .filter(|(_, overlay)| overlay.dirty.iter().any(|&w| w != 0))
            .collect();
        pages.sort_unstable_by_key(|&(page, _)| page);
        ChunkOverlay { pages }
    }

    /// Merges overlay writes into `target`, honouring each write's dirty
    /// mask: fully-written words are stored directly, partially-written
    /// words splice only their dirty bytes over the target's current value.
    pub fn apply_writes(target: &mut FlatMemory, writes: &[OverlayWrite]) {
        for &(addr, value, dirty) in writes {
            if dirty == 0xff {
                target.write_u64(addr, value);
            } else {
                let mut bytes = target.peek_u64(addr).to_le_bytes();
                let new = value.to_le_bytes();
                for (i, b) in bytes.iter_mut().enumerate() {
                    if dirty & (1 << i) != 0 {
                        *b = new[i];
                    }
                }
                target.write_u64(addr, u64::from_le_bytes(bytes));
            }
        }
    }

    fn aligned(addr: u64) -> u64 {
        addr & !7
    }

    /// Splits an aligned word address into (page index, word-in-page index).
    fn split(word: u64) -> (u64, usize) {
        (
            word >> PAGE_SHIFT,
            ((word & (PAGE_SIZE as u64 - 1)) >> 3) as usize,
        )
    }

    fn word(&self, word: u64) -> u64 {
        let (page, idx) = Self::split(word);
        self.pages
            .get(&page)
            .map_or_else(|| self.base.peek_u64(word), |p| p.values[idx])
    }

    /// Mutates one overlay word in place, seeding the covering page from the
    /// base on first touch, and keeps the written-word counter exact.
    fn mutate_word(&mut self, word: u64, f: impl FnOnce(&mut u64, &mut u8)) {
        let (page, idx) = Self::split(word);
        let base = self.base;
        let overlay = self
            .pages
            .entry(page)
            .or_insert_with(|| PageOverlay::from_base(base, page));
        let newly_dirty = overlay.masks[idx] == 0;
        f(&mut overlay.values[idx], &mut overlay.masks[idx]);
        if newly_dirty && overlay.masks[idx] != 0 {
            overlay.dirty[idx / 64] |= 1 << (idx % 64);
            self.written += 1;
        }
    }
}

impl PeekMemory for CowMemory<'_> {
    fn peek_u8(&self, addr: u64) -> u8 {
        let word = Self::aligned(addr);
        self.word(word).to_le_bytes()[(addr - word) as usize]
    }

    fn peek_u64(&self, addr: u64) -> u64 {
        let word = Self::aligned(addr);
        if word == addr {
            self.word(word)
        } else {
            let lo = self.word(word);
            let hi = self.word(word + 8);
            let shift = (addr - word) * 8;
            (lo >> shift) | (hi << (64 - shift))
        }
    }
}

impl GuestMemory for CowMemory<'_> {
    fn read_u8(&mut self, addr: u64) -> u8 {
        self.peek_u8(addr)
    }

    fn write_u8(&mut self, addr: u64, value: u8) {
        let word = Self::aligned(addr);
        let byte = (addr - word) as usize;
        self.mutate_word(word, |w, mask| {
            let mut bytes = w.to_le_bytes();
            bytes[byte] = value;
            *w = u64::from_le_bytes(bytes);
            *mask |= 1 << byte;
        });
    }

    fn read_u64(&mut self, addr: u64) -> u64 {
        self.peek_u64(addr)
    }

    fn write_u64(&mut self, addr: u64, value: u64) {
        let word = Self::aligned(addr);
        if word == addr {
            self.mutate_word(word, |w, mask| {
                *w = value;
                *mask = 0xff;
            });
        } else {
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                self.write_u8(addr + i as u64, *b);
            }
        }
    }
}

/// The dirty pages of one finished chunk, detached from the view's borrow of
/// the base image so it can be sent back to the coordinator. Pages are
/// sorted by page index.
#[derive(Debug)]
pub struct ChunkOverlay {
    pages: Vec<(u64, Box<PageOverlay>)>,
}

impl ChunkOverlay {
    /// Number of dirty pages carried by this chunk.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total dirty words across all pages.
    #[must_use]
    pub fn dirty_words(&self) -> usize {
        self.pages.iter().map(|(_, p)| p.dirty_words()).sum()
    }

    /// The chunk's writes as sorted `(word address, value, mask)` triples —
    /// the word-granular form, for tests and compatibility paths.
    #[must_use]
    pub fn to_writes(&self) -> Vec<OverlayWrite> {
        let mut writes = Vec::new();
        for (page, overlay) in &self.pages {
            let base_addr = page << PAGE_SHIFT;
            overlay.for_each_dirty(|idx, value, mask| {
                writes.push((base_addr + (idx as u64) * 8, value, mask));
            });
        }
        writes
    }

    /// The overlay page for `page`, if this chunk touched it.
    fn get(&self, page: u64) -> Option<&PageOverlay> {
        self.pages
            .binary_search_by_key(&page, |&(p, _)| p)
            .ok()
            .map(|i| &*self.pages[i].1)
    }
}

/// What one [`merge_chunk_overlays`] call did — feeds the `merge.*`
/// observability counters and the adaptive bench report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Pages the merge actually visited (union of dirty pages across chunks).
    pub pages_merged: u64,
    /// Mapped base pages the merge never had to look at because no chunk
    /// dirtied them.
    pub pages_skipped: u64,
    /// Dirty words spliced into the target.
    pub words_applied: u64,
    /// Worker threads used to build page images (1 ⇒ sequential merge).
    pub merge_threads: u64,
}

/// Merges the overlays of all chunks into `target` in chunk order,
/// page-aware and (for large touched sets) in parallel.
///
/// The result is bit-identical to replaying every chunk's sorted word
/// writes through [`CowMemory::apply_writes`] chunk by chunk: writes to
/// different pages commute, and within a page each word is spliced in chunk
/// order with the same per-byte dirty-mask semantics. Pages no chunk wrote
/// are never visited. When the union of dirty pages is large enough,
/// `max_threads` workers build the merged page images from the pre-merge
/// base concurrently (page sets are disjoint, so this is race-free by
/// construction) and the coordinator installs each finished page as a
/// pointer move.
pub fn merge_chunk_overlays(
    target: &mut FlatMemory,
    chunks: &[ChunkOverlay],
    max_threads: usize,
) -> MergeStats {
    let mut pages: Vec<u64> = chunks
        .iter()
        .flat_map(|c| c.pages.iter().map(|&(p, _)| p))
        .collect();
    pages.sort_unstable();
    pages.dedup();

    let mapped_before = target.mapped_pages() as u64;
    let touched_mapped = pages
        .iter()
        .filter(|&&p| target.page_ref(p).is_some())
        .count() as u64;
    let mut stats = MergeStats {
        pages_merged: pages.len() as u64,
        pages_skipped: mapped_before.saturating_sub(touched_mapped),
        words_applied: 0,
        merge_threads: 1,
    };

    let workers = max_threads
        .max(1)
        .min(pages.len() / PARALLEL_MERGE_MIN_PAGES);
    if workers <= 1 {
        for &page in &pages {
            let bytes = target.page_mut(page);
            for chunk in chunks {
                if let Some(overlay) = chunk.get(page) {
                    overlay.for_each_dirty(|idx, value, mask| {
                        splice_word(bytes, idx, value, mask);
                        stats.words_applied += 1;
                    });
                }
            }
        }
        return stats;
    }

    stats.merge_threads = workers as u64;
    let per_worker = pages.len().div_ceil(workers);
    let base: &FlatMemory = target;
    /// A worker's output: the page number, its fully merged image, and the
    /// dirty words applied while building it.
    type BuiltPage = (u64, Box<[u8; PAGE_SIZE]>, u64);
    let built: Vec<Vec<BuiltPage>> = std::thread::scope(|scope| {
        let handles: Vec<_> = pages
            .chunks(per_worker)
            .map(|slice| {
                scope.spawn(move || {
                    slice
                        .iter()
                        .map(|&page| {
                            let mut bytes: Box<[u8; PAGE_SIZE]> = match base.page_ref(page) {
                                Some(existing) => Box::new(*existing),
                                None => Box::new([0u8; PAGE_SIZE]),
                            };
                            let mut words = 0u64;
                            for chunk in chunks {
                                if let Some(overlay) = chunk.get(page) {
                                    overlay.for_each_dirty(|idx, value, mask| {
                                        splice_word(&mut bytes, idx, value, mask);
                                        words += 1;
                                    });
                                }
                            }
                            (page, bytes, words)
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("merge worker panicked"))
            .collect()
    });
    for batch in built {
        for (page, bytes, words) in batch {
            stats.words_applied += words;
            target.install_page(page, bytes);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_fall_through_to_base_until_written() {
        let mut base = FlatMemory::new();
        base.write_u64(0x1000, 42);
        let mut view = CowMemory::new(&base);
        assert_eq!(view.read_u64(0x1000), 42);
        view.write_u64(0x1000, 43);
        assert_eq!(view.read_u64(0x1000), 43, "view sees its own write");
        assert_eq!(base.peek_u64(0x1000), 42, "base is untouched");
    }

    #[test]
    fn byte_and_unaligned_accesses_compose_through_words() {
        let mut base = FlatMemory::new();
        base.write_u64(0x2000, 0x1122_3344_5566_7788);
        base.write_u64(0x2008, 0x99aa_bbcc_ddee_ff00);
        let mut view = CowMemory::new(&base);
        assert_eq!(view.read_u8(0x2001), 0x77);
        view.write_u8(0x2001, 0xab);
        assert_eq!(view.read_u64(0x2000), 0x1122_3344_5566_ab88);
        // Unaligned read straddling the two words.
        let unaligned = view.read_u64(0x2004);
        assert_eq!(unaligned & 0xffff_ffff, 0x1122_3344);
        // Unaligned write round-trips.
        view.write_u64(0x2004, 0xdead_beef_cafe_f00d);
        assert_eq!(view.read_u64(0x2004), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn into_writes_is_sorted_and_merges_to_the_sequential_image() {
        let mut base = FlatMemory::new();
        let mut view = CowMemory::new(&base);
        view.write_u64(0x3008, 2);
        view.write_u64(0x3000, 1);
        assert_eq!(view.written_words(), 2);
        let writes = view.into_writes();
        assert_eq!(writes, vec![(0x3000, 1, 0xff), (0x3008, 2, 0xff)]);
        CowMemory::apply_writes(&mut base, &writes);
        assert_eq!(base.peek_u64(0x3000), 1);
        assert_eq!(base.peek_u64(0x3008), 2);
    }

    #[test]
    fn disjoint_byte_writes_to_one_word_merge_without_clobbering() {
        // Two sibling views write disjoint halves of the same 8-byte word —
        // e.g. an unaligned store straddling a chunk boundary. Merging in
        // chunk order must keep both halves, exactly as sequential execution
        // against shared memory would.
        let mut base = FlatMemory::new();
        base.write_u64(0x4000, u64::from_le_bytes([9; 8]));
        let mut shared = base.clone();

        let mut a = CowMemory::new(&base);
        for i in 0..4 {
            a.write_u8(0x4000 + i, 0xaa);
        }
        let mut b = CowMemory::new(&base);
        for i in 4..8 {
            b.write_u8(0x4000 + i, 0xbb);
        }
        let (wa, wb) = (a.into_writes(), b.into_writes());
        assert_eq!(wa[0].2, 0x0f, "low-half dirty mask");
        assert_eq!(wb[0].2, 0xf0, "high-half dirty mask");
        CowMemory::apply_writes(&mut shared, &wa);
        CowMemory::apply_writes(&mut shared, &wb);
        assert_eq!(
            shared.peek_u64(0x4000),
            u64::from_le_bytes([0xaa, 0xaa, 0xaa, 0xaa, 0xbb, 0xbb, 0xbb, 0xbb])
        );
    }

    #[test]
    fn views_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<CowMemory<'_>>();
        assert_send::<ChunkOverlay>();
    }

    #[test]
    fn page_merge_matches_word_merge_and_skips_untouched_pages() {
        let mut base = FlatMemory::new();
        // Several mapped pages; chunks will touch only two of them.
        for page in 0..6u64 {
            base.write_u64(page << 12, page + 100);
        }
        let mut word_merged = base.clone();

        let mut a = CowMemory::new(&base);
        a.write_u64(0x1000, 0xaaaa);
        a.write_u8(0x3004, 0xa5);
        let mut b = CowMemory::new(&base);
        b.write_u64(0x1008, 0xbbbb);
        b.write_u8(0x3005, 0x5b);

        let (pa, pb) = (a.into_pages(), b.into_pages());
        for chunk in [&pa, &pb] {
            CowMemory::apply_writes(&mut word_merged, &chunk.to_writes());
        }

        let mut page_merged = base.clone();
        let stats = merge_chunk_overlays(&mut page_merged, &[pa, pb], 4);
        assert_eq!(stats.pages_merged, 2, "only pages 1 and 3 were dirtied");
        assert_eq!(
            stats.pages_skipped, 4,
            "the other mapped pages were skipped"
        );
        assert_eq!(stats.words_applied, 4);
        assert_eq!(stats.merge_threads, 1, "small merges stay sequential");
        assert_eq!(page_merged.image_digest(), word_merged.image_digest());
    }

    #[test]
    fn parallel_merge_is_bit_identical_to_sequential() {
        let mut base = FlatMemory::new();
        for page in 0..128u64 {
            base.write_u64((page << 12) + 8, page * 31 + 7);
        }
        let mut word_merged = base.clone();

        // Two chunks with a deliberate overlap: chunk order must win.
        let mut a = CowMemory::new(&base);
        let mut b = CowMemory::new(&base);
        for page in 0..128u64 {
            let addr = (page << 12) + (page % 64) * 8;
            a.write_u64(addr, page ^ 0xdead);
            if page % 3 == 0 {
                b.write_u64(addr, page ^ 0xbeef);
            }
            if page % 5 == 0 {
                b.write_u8(addr + 2, 0x77);
            }
        }
        let (pa, pb) = (a.into_pages(), b.into_pages());
        for chunk in [&pa, &pb] {
            CowMemory::apply_writes(&mut word_merged, &chunk.to_writes());
        }

        let mut page_merged = base.clone();
        let stats = merge_chunk_overlays(&mut page_merged, &[pa, pb], 4);
        assert!(
            stats.merge_threads > 1,
            "128 pages should merge in parallel"
        );
        assert_eq!(page_merged.image_digest(), word_merged.image_digest());
    }
}
