//! Copy-on-write guest-memory views for OS-thread execution backends.
//!
//! A parallelised loop chunk running on a real worker thread cannot share a
//! `&mut FlatMemory` with its siblings. [`CowMemory`] gives each chunk a
//! `Send`-able view instead: reads fall through to a shared read-only base
//! image, writes land in a private word-granular overlay. After the workers
//! join, the coordinating thread merges each overlay back into the base in
//! chunk order, which reproduces the memory image a sequential chunk-by-chunk
//! execution would have produced.

use crate::memory::{FlatMemory, GuestMemory, PeekMemory};
use std::collections::HashMap;

/// One overlay word plus the mask of bytes the view actually wrote.
///
/// The mask is what makes the merge byte-exact: two sibling chunks may
/// legally write *disjoint bytes* of the same 8-byte word (an unaligned
/// store straddling a chunk boundary, byte-granular stores), and merging
/// whole words would let the later chunk clobber the earlier one's bytes
/// with stale base data. Only dirty bytes are applied.
#[derive(Debug, Clone, Copy)]
struct OverlayWord {
    value: u64,
    dirty: u8,
}

/// A pending overlay write: the aligned word address, the value, and the
/// mask of bytes (bit *i* ⇒ byte *i*) that were actually written.
pub type OverlayWrite = (u64, u64, u8);

/// A private, writable view over a shared read-only [`FlatMemory`] image.
///
/// Writes are buffered at aligned-64-bit-word granularity with a per-byte
/// dirty mask; byte and unaligned accesses are composed through the covering
/// words, mirroring the layout the base memory itself uses. The view borrows
/// the base immutably, so any number of views can coexist — one per worker
/// thread.
#[derive(Debug)]
pub struct CowMemory<'a> {
    base: &'a FlatMemory,
    words: HashMap<u64, OverlayWord>,
}

impl<'a> CowMemory<'a> {
    /// A fresh view with an empty overlay.
    #[must_use]
    pub fn new(base: &'a FlatMemory) -> CowMemory<'a> {
        CowMemory {
            base,
            words: HashMap::new(),
        }
    }

    /// Number of distinct words the view has written (fully or partially).
    #[must_use]
    pub fn written_words(&self) -> usize {
        self.words.len()
    }

    /// Consumes the view and returns its writes as
    /// `(word address, value, dirty-byte mask)` triples sorted by address.
    /// Apply them with [`CowMemory::apply_writes`].
    #[must_use]
    pub fn into_writes(self) -> Vec<OverlayWrite> {
        let mut writes: Vec<OverlayWrite> = self
            .words
            .into_iter()
            .map(|(addr, w)| (addr, w.value, w.dirty))
            .collect();
        writes.sort_unstable();
        writes
    }

    /// Merges overlay writes into `target`, honouring each write's dirty
    /// mask: fully-written words are stored directly, partially-written
    /// words splice only their dirty bytes over the target's current value.
    pub fn apply_writes(target: &mut FlatMemory, writes: &[OverlayWrite]) {
        for &(addr, value, dirty) in writes {
            if dirty == 0xff {
                target.write_u64(addr, value);
            } else {
                let mut bytes = target.peek_u64(addr).to_le_bytes();
                let new = value.to_le_bytes();
                for (i, b) in bytes.iter_mut().enumerate() {
                    if dirty & (1 << i) != 0 {
                        *b = new[i];
                    }
                }
                target.write_u64(addr, u64::from_le_bytes(bytes));
            }
        }
    }

    fn aligned(addr: u64) -> u64 {
        addr & !7
    }

    fn word(&self, word: u64) -> u64 {
        self.words
            .get(&word)
            .map_or_else(|| self.base.peek_u64(word), |w| w.value)
    }

    fn entry(&mut self, word: u64) -> &mut OverlayWord {
        let base = self.base;
        self.words.entry(word).or_insert_with(|| OverlayWord {
            value: base.peek_u64(word),
            dirty: 0,
        })
    }
}

impl PeekMemory for CowMemory<'_> {
    fn peek_u8(&self, addr: u64) -> u8 {
        let word = Self::aligned(addr);
        self.word(word).to_le_bytes()[(addr - word) as usize]
    }

    fn peek_u64(&self, addr: u64) -> u64 {
        let word = Self::aligned(addr);
        if word == addr {
            self.word(word)
        } else {
            let lo = self.word(word);
            let hi = self.word(word + 8);
            let shift = (addr - word) * 8;
            (lo >> shift) | (hi << (64 - shift))
        }
    }
}

impl GuestMemory for CowMemory<'_> {
    fn read_u8(&mut self, addr: u64) -> u8 {
        let word = Self::aligned(addr);
        self.word(word).to_le_bytes()[(addr - word) as usize]
    }

    fn write_u8(&mut self, addr: u64, value: u8) {
        let word = Self::aligned(addr);
        let byte = (addr - word) as usize;
        let w = self.entry(word);
        let mut bytes = w.value.to_le_bytes();
        bytes[byte] = value;
        w.value = u64::from_le_bytes(bytes);
        w.dirty |= 1 << byte;
    }

    fn read_u64(&mut self, addr: u64) -> u64 {
        let word = Self::aligned(addr);
        if word == addr {
            self.word(word)
        } else {
            let lo = self.word(word);
            let hi = self.word(word + 8);
            let shift = (addr - word) * 8;
            (lo >> shift) | (hi << (64 - shift))
        }
    }

    fn write_u64(&mut self, addr: u64, value: u64) {
        let word = Self::aligned(addr);
        if word == addr {
            let w = self.entry(word);
            w.value = value;
            w.dirty = 0xff;
        } else {
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                self.write_u8(addr + i as u64, *b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_fall_through_to_base_until_written() {
        let mut base = FlatMemory::new();
        base.write_u64(0x1000, 42);
        let mut view = CowMemory::new(&base);
        assert_eq!(view.read_u64(0x1000), 42);
        view.write_u64(0x1000, 43);
        assert_eq!(view.read_u64(0x1000), 43, "view sees its own write");
        assert_eq!(base.peek_u64(0x1000), 42, "base is untouched");
    }

    #[test]
    fn byte_and_unaligned_accesses_compose_through_words() {
        let mut base = FlatMemory::new();
        base.write_u64(0x2000, 0x1122_3344_5566_7788);
        base.write_u64(0x2008, 0x99aa_bbcc_ddee_ff00);
        let mut view = CowMemory::new(&base);
        assert_eq!(view.read_u8(0x2001), 0x77);
        view.write_u8(0x2001, 0xab);
        assert_eq!(view.read_u64(0x2000), 0x1122_3344_5566_ab88);
        // Unaligned read straddling the two words.
        let unaligned = view.read_u64(0x2004);
        assert_eq!(unaligned & 0xffff_ffff, 0x1122_3344);
        // Unaligned write round-trips.
        view.write_u64(0x2004, 0xdead_beef_cafe_f00d);
        assert_eq!(view.read_u64(0x2004), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn into_writes_is_sorted_and_merges_to_the_sequential_image() {
        let mut base = FlatMemory::new();
        let mut view = CowMemory::new(&base);
        view.write_u64(0x3008, 2);
        view.write_u64(0x3000, 1);
        assert_eq!(view.written_words(), 2);
        let writes = view.into_writes();
        assert_eq!(writes, vec![(0x3000, 1, 0xff), (0x3008, 2, 0xff)]);
        CowMemory::apply_writes(&mut base, &writes);
        assert_eq!(base.peek_u64(0x3000), 1);
        assert_eq!(base.peek_u64(0x3008), 2);
    }

    #[test]
    fn disjoint_byte_writes_to_one_word_merge_without_clobbering() {
        // Two sibling views write disjoint halves of the same 8-byte word —
        // e.g. an unaligned store straddling a chunk boundary. Merging in
        // chunk order must keep both halves, exactly as sequential execution
        // against shared memory would.
        let mut base = FlatMemory::new();
        base.write_u64(0x4000, u64::from_le_bytes([9; 8]));
        let mut shared = base.clone();

        let mut a = CowMemory::new(&base);
        for i in 0..4 {
            a.write_u8(0x4000 + i, 0xaa);
        }
        let mut b = CowMemory::new(&base);
        for i in 4..8 {
            b.write_u8(0x4000 + i, 0xbb);
        }
        let (wa, wb) = (a.into_writes(), b.into_writes());
        assert_eq!(wa[0].2, 0x0f, "low-half dirty mask");
        assert_eq!(wb[0].2, 0xf0, "high-half dirty mask");
        CowMemory::apply_writes(&mut shared, &wa);
        CowMemory::apply_writes(&mut shared, &wb);
        assert_eq!(
            shared.peek_u64(0x4000),
            u64::from_le_bytes([0xaa, 0xaa, 0xaa, 0xaa, 0xbb, 0xbb, 0xbb, 0xbb])
        );
    }

    #[test]
    fn views_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<CowMemory<'_>>();
    }
}
