//! Single-step execution of JVA instructions.
//!
//! [`exec_inst`] executes exactly one instruction against a CPU context and a
//! [`GuestMemory`] implementation and reports how control flow should
//! continue. Both the plain VM and the dynamic binary modifier drive this
//! function; the DBM additionally substitutes its own memory views so that
//! rewritten instructions can be redirected to private storage or a software
//! transaction.

use crate::cpu::Cpu;
use crate::error::{Result, VmError};
use crate::memory::GuestMemory;
use janus_ir::{AluOp, FpuOp, Inst, MemRef, Operand, RegClass};

/// The control-flow outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Execution continues at the next sequential instruction.
    Continue,
    /// Execution continues at the given address.
    Jump(u64),
    /// A call through the PLT; the return address has already been pushed.
    External {
        /// Index into the binary's PLT.
        plt: u32,
    },
    /// A system call must be serviced by the host.
    Syscall {
        /// The system call number.
        num: u32,
    },
    /// The program has terminated.
    Halt,
}

/// Computes the effective address of a memory reference.
#[must_use]
pub fn effective_addr(cpu: &Cpu, m: &MemRef) -> u64 {
    let mut addr = m.disp;
    if let Some(b) = m.base {
        addr = addr.wrapping_add(cpu.read_gpr(b));
    }
    if let Some(i) = m.index {
        addr = addr.wrapping_add(cpu.read_gpr(i).wrapping_mul(i64::from(m.scale)));
    }
    addr as u64
}

fn read_int<M: GuestMemory>(cpu: &Cpu, mem: &mut M, op: &Operand) -> i64 {
    match op {
        Operand::Reg(r) => match r.class() {
            RegClass::Gpr => cpu.read_gpr(*r),
            RegClass::Vec => cpu.read_f64(*r) as i64,
        },
        Operand::Imm(v) => *v,
        Operand::Mem(m) => mem.read_i64(effective_addr(cpu, m)),
    }
}

fn write_int<M: GuestMemory>(cpu: &mut Cpu, mem: &mut M, op: &Operand, value: i64) {
    match op {
        Operand::Reg(r) => cpu.write_gpr(*r, value),
        Operand::Mem(m) => {
            let addr = effective_addr(cpu, m);
            mem.write_i64(addr, value);
        }
        Operand::Imm(_) => panic!("cannot write to an immediate operand"),
    }
}

fn read_float<M: GuestMemory>(cpu: &Cpu, mem: &mut M, op: &Operand) -> f64 {
    match op {
        Operand::Reg(r) => match r.class() {
            RegClass::Vec => cpu.read_f64(*r),
            RegClass::Gpr => cpu.read_gpr(*r) as f64,
        },
        Operand::Imm(v) => f64::from_bits(*v as u64),
        Operand::Mem(m) => mem.read_f64(effective_addr(cpu, m)),
    }
}

fn write_float<M: GuestMemory>(cpu: &mut Cpu, mem: &mut M, op: &Operand, value: f64) {
    match op {
        Operand::Reg(r) => cpu.write_f64(*r, value),
        Operand::Mem(m) => {
            let addr = effective_addr(cpu, m);
            mem.write_f64(addr, value);
        }
        Operand::Imm(_) => panic!("cannot write to an immediate operand"),
    }
}

fn read_lanes<M: GuestMemory>(cpu: &Cpu, mem: &mut M, op: &Operand, lanes: u8) -> [f64; 4] {
    match op {
        Operand::Reg(r) => cpu.read_vec(*r),
        Operand::Mem(m) => {
            let base = effective_addr(cpu, m);
            let mut out = [0.0; 4];
            for (i, o) in out.iter_mut().enumerate().take(lanes as usize) {
                *o = mem.read_f64(base + (i as u64) * 8);
            }
            out
        }
        Operand::Imm(v) => [f64::from_bits(*v as u64); 4],
    }
}

fn write_lanes<M: GuestMemory>(
    cpu: &mut Cpu,
    mem: &mut M,
    op: &Operand,
    value: [f64; 4],
    lanes: u8,
) {
    match op {
        Operand::Reg(r) => {
            let mut cur = cpu.read_vec(*r);
            cur[..lanes as usize].copy_from_slice(&value[..lanes as usize]);
            cpu.write_vec(*r, cur);
        }
        Operand::Mem(m) => {
            let base = effective_addr(cpu, m);
            for (i, v) in value.iter().enumerate().take(lanes as usize) {
                mem.write_f64(base + (i as u64) * 8, *v);
            }
        }
        Operand::Imm(_) => panic!("cannot write to an immediate operand"),
    }
}

fn alu_apply(pc: u64, op: AluOp, a: i64, b: i64) -> Result<i64> {
    Ok(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                return Err(VmError::DivisionByZero { pc });
            }
            a.wrapping_div(b)
        }
        AluOp::Rem => {
            if b == 0 {
                return Err(VmError::DivisionByZero { pc });
            }
            a.wrapping_rem(b)
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((b & 63) as u32),
        AluOp::Shr => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
        AluOp::Sar => a.wrapping_shr((b & 63) as u32),
    })
}

fn fpu_apply(op: FpuOp, a: f64, b: f64) -> f64 {
    match op {
        FpuOp::Add => a + b,
        FpuOp::Sub => a - b,
        FpuOp::Mul => a * b,
        FpuOp::Div => a / b,
        FpuOp::Min => a.min(b),
        FpuOp::Max => a.max(b),
        FpuOp::Sqrt => b.sqrt(),
    }
}

/// Executes one instruction.
///
/// `next_pc` is the address of the instruction that sequentially follows
/// `inst` in the *original* program (used as the return address of calls);
/// the caller decides where the instruction physically lives (e.g. in a DBM
/// code cache).
///
/// Cycle and retirement counters on `cpu` are updated according to its cost
/// model.
///
/// # Errors
///
/// Returns an error on division by zero.
pub fn exec_inst<M: GuestMemory>(
    cpu: &mut Cpu,
    mem: &mut M,
    inst: &Inst,
    next_pc: u64,
) -> Result<Effect> {
    cpu.cycles += cpu.cost.cost(inst);
    cpu.retired += 1;
    let pc = cpu.pc;
    let effect = match inst {
        Inst::Nop => Effect::Continue,
        Inst::Halt => Effect::Halt,
        Inst::Mov { dst, src } => {
            // Integer move unless both sides involve vector registers.
            let value = read_int(cpu, mem, src);
            write_int(cpu, mem, dst, value);
            Effect::Continue
        }
        Inst::Lea { dst, mem: m } => {
            let addr = effective_addr(cpu, m);
            cpu.write_gpr(*dst, addr as i64);
            Effect::Continue
        }
        Inst::Alu { op, dst, src } => {
            let a = read_int(cpu, mem, dst);
            let b = read_int(cpu, mem, src);
            let r = alu_apply(pc, *op, a, b)?;
            cpu.flags.set_result(r);
            write_int(cpu, mem, dst, r);
            Effect::Continue
        }
        Inst::FMov { dst, src } => {
            let v = read_float(cpu, mem, src);
            write_float(cpu, mem, dst, v);
            Effect::Continue
        }
        Inst::Fpu { op, dst, src } => {
            let a = read_float(cpu, mem, dst);
            let b = read_float(cpu, mem, src);
            let r = fpu_apply(*op, a, b);
            write_float(cpu, mem, dst, r);
            Effect::Continue
        }
        Inst::VMov { dst, src, lanes } => {
            let v = read_lanes(cpu, mem, src, *lanes);
            write_lanes(cpu, mem, dst, v, *lanes);
            Effect::Continue
        }
        Inst::Vec {
            op,
            dst,
            src,
            lanes,
        } => {
            let a = cpu.read_vec(*dst);
            let b = read_lanes(cpu, mem, src, *lanes);
            let mut r = a;
            for i in 0..(*lanes as usize) {
                r[i] = fpu_apply(*op, a[i], b[i]);
            }
            cpu.write_vec(*dst, r);
            Effect::Continue
        }
        Inst::CvtIntToFloat { dst, src } => {
            let v = read_int(cpu, mem, src);
            cpu.write_f64(*dst, v as f64);
            Effect::Continue
        }
        Inst::CvtFloatToInt { dst, src } => {
            let v = read_float(cpu, mem, src);
            cpu.write_gpr(*dst, v as i64);
            Effect::Continue
        }
        Inst::Cmp { lhs, rhs } => {
            let a = read_int(cpu, mem, lhs);
            let b = read_int(cpu, mem, rhs);
            cpu.flags.set_cmp(a, b);
            Effect::Continue
        }
        Inst::FCmp { lhs, rhs } => {
            let a = read_float(cpu, mem, lhs);
            let b = read_float(cpu, mem, rhs);
            cpu.flags.set_fcmp(a, b);
            Effect::Continue
        }
        Inst::Test { lhs, rhs } => {
            let a = read_int(cpu, mem, lhs);
            let b = read_int(cpu, mem, rhs);
            cpu.flags.set_result(a & b);
            Effect::Continue
        }
        Inst::CMov { cond, dst, src } => {
            if cpu.flags.eval(*cond) {
                let v = read_int(cpu, mem, src);
                cpu.write_gpr(*dst, v);
            }
            Effect::Continue
        }
        Inst::Jmp { target } => Effect::Jump(*target),
        Inst::Jcc { cond, target } => {
            if cpu.flags.eval(*cond) {
                Effect::Jump(*target)
            } else {
                Effect::Continue
            }
        }
        Inst::JmpInd { target } => {
            let t = read_int(cpu, mem, target) as u64;
            Effect::Jump(t)
        }
        Inst::Call { target } => {
            push_value(cpu, mem, next_pc as i64);
            Effect::Jump(*target)
        }
        Inst::CallInd { target } => {
            let t = read_int(cpu, mem, target) as u64;
            push_value(cpu, mem, next_pc as i64);
            Effect::Jump(t)
        }
        Inst::CallExt { plt } => {
            push_value(cpu, mem, next_pc as i64);
            Effect::External { plt: *plt }
        }
        Inst::Ret => {
            let addr = pop_value(cpu, mem) as u64;
            Effect::Jump(addr)
        }
        Inst::Push { src } => {
            let v = read_int(cpu, mem, src);
            push_value(cpu, mem, v);
            Effect::Continue
        }
        Inst::Pop { dst } => {
            let v = pop_value(cpu, mem);
            write_int(cpu, mem, dst, v);
            Effect::Continue
        }
        Inst::Syscall { num } => Effect::Syscall { num: *num },
    };
    Ok(effect)
}

/// Pushes a 64-bit value onto the guest stack.
pub fn push_value<M: GuestMemory>(cpu: &mut Cpu, mem: &mut M, value: i64) {
    let sp = cpu.sp().wrapping_sub(8);
    cpu.set_sp(sp);
    mem.write_i64(sp, value);
}

/// Pops a 64-bit value from the guest stack.
pub fn pop_value<M: GuestMemory>(cpu: &mut Cpu, mem: &mut M) -> i64 {
    let sp = cpu.sp();
    let v = mem.read_i64(sp);
    cpu.set_sp(sp.wrapping_add(8));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::FlatMemory;
    use janus_ir::{Cond, Reg};

    fn ctx() -> (Cpu, FlatMemory) {
        let mut cpu = Cpu::new();
        cpu.set_sp(0x7fff_0000);
        (cpu, FlatMemory::new())
    }

    #[test]
    fn mov_and_alu_register_forms() {
        let (mut cpu, mut mem) = ctx();
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::mov(Operand::reg(Reg::R1), Operand::imm(5)),
            0,
        )
        .unwrap();
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::alu(AluOp::Mul, Operand::reg(Reg::R1), Operand::imm(7)),
            0,
        )
        .unwrap();
        assert_eq!(cpu.read_gpr(Reg::R1), 35);
        assert_eq!(cpu.retired, 2);
        assert!(cpu.cycles >= 2);
    }

    #[test]
    fn memory_operand_read_modify_write() {
        let (mut cpu, mut mem) = ctx();
        mem.write_i64(0x600020, 10);
        cpu.write_gpr(Reg::R2, 0x600000);
        let inst = Inst::alu(
            AluOp::Add,
            Operand::mem(MemRef::base_disp(Reg::R2, 0x20)),
            Operand::imm(32),
        );
        exec_inst(&mut cpu, &mut mem, &inst, 0).unwrap();
        assert_eq!(mem.read_i64(0x600020), 42);
    }

    #[test]
    fn lea_computes_address_without_memory_access() {
        let (mut cpu, mut mem) = ctx();
        cpu.write_gpr(Reg::R3, 0x1000);
        cpu.write_gpr(Reg::R4, 5);
        let loads_before = mem.loads;
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::Lea {
                dst: Reg::R5,
                mem: MemRef::base_index(Reg::R3, Reg::R4, 8).with_disp(16),
            },
            0,
        )
        .unwrap();
        assert_eq!(cpu.read_gpr(Reg::R5), 0x1000 + 40 + 16);
        assert_eq!(mem.loads, loads_before);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let (mut cpu, mut mem) = ctx();
        let err = exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::alu(AluOp::Div, Operand::reg(Reg::R0), Operand::imm(0)),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, VmError::DivisionByZero { .. }));
    }

    #[test]
    fn conditional_jump_follows_flags() {
        let (mut cpu, mut mem) = ctx();
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::cmp(Operand::imm(3), Operand::imm(4)),
            0,
        )
        .unwrap();
        let taken = exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::Jcc {
                cond: Cond::Lt,
                target: 0x400100,
            },
            0,
        )
        .unwrap();
        assert_eq!(taken, Effect::Jump(0x400100));
        let not_taken = exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::Jcc {
                cond: Cond::Gt,
                target: 0x400100,
            },
            0,
        )
        .unwrap();
        assert_eq!(not_taken, Effect::Continue);
    }

    #[test]
    fn call_and_ret_use_the_stack() {
        let (mut cpu, mut mem) = ctx();
        let sp0 = cpu.sp();
        let eff = exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::Call { target: 0x401000 },
            0x400040,
        )
        .unwrap();
        assert_eq!(eff, Effect::Jump(0x401000));
        assert_eq!(cpu.sp(), sp0 - 8);
        assert_eq!(mem.read_u64(cpu.sp()), 0x400040);
        let eff = exec_inst(&mut cpu, &mut mem, &Inst::Ret, 0).unwrap();
        assert_eq!(eff, Effect::Jump(0x400040));
        assert_eq!(cpu.sp(), sp0);
    }

    #[test]
    fn external_call_pushes_return_address() {
        let (mut cpu, mut mem) = ctx();
        let eff = exec_inst(&mut cpu, &mut mem, &Inst::CallExt { plt: 2 }, 0x400080).unwrap();
        assert_eq!(eff, Effect::External { plt: 2 });
        assert_eq!(mem.read_u64(cpu.sp()), 0x400080);
    }

    #[test]
    fn indirect_jump_reads_target_from_register_or_memory() {
        let (mut cpu, mut mem) = ctx();
        cpu.write_gpr(Reg::R9, 0x400200);
        let eff = exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::JmpInd {
                target: Operand::reg(Reg::R9),
            },
            0,
        )
        .unwrap();
        assert_eq!(eff, Effect::Jump(0x400200));

        mem.write_u64(0x600100, 0x400300);
        let eff = exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::CallInd {
                target: Operand::mem(MemRef::absolute(0x600100)),
            },
            0x400084,
        )
        .unwrap();
        assert_eq!(eff, Effect::Jump(0x400300));
    }

    #[test]
    fn float_and_vector_operations() {
        let (mut cpu, mut mem) = ctx();
        cpu.write_f64(Reg::V0, 2.0);
        cpu.write_f64(Reg::V1, 8.0);
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::fpu(FpuOp::Mul, Operand::reg(Reg::V0), Operand::reg(Reg::V1)),
            0,
        )
        .unwrap();
        assert_eq!(cpu.read_f64(Reg::V0), 16.0);

        // sqrt uses the source operand.
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::fpu(FpuOp::Sqrt, Operand::reg(Reg::V0), Operand::reg(Reg::V0)),
            0,
        )
        .unwrap();
        assert_eq!(cpu.read_f64(Reg::V0), 4.0);

        // Packed: load 4 lanes from memory, add, store back.
        for i in 0..4 {
            mem.write_f64(0x600000 + i * 8, i as f64);
        }
        cpu.write_gpr(Reg::R2, 0x600000);
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::VMov {
                dst: Operand::reg(Reg::V2),
                src: Operand::mem(MemRef::base(Reg::R2)),
                lanes: 4,
            },
            0,
        )
        .unwrap();
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::Vec {
                op: FpuOp::Add,
                dst: Reg::V2,
                src: Operand::reg(Reg::V2),
                lanes: 4,
            },
            0,
        )
        .unwrap();
        assert_eq!(cpu.read_vec(Reg::V2), [0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn conversions_between_int_and_float() {
        let (mut cpu, mut mem) = ctx();
        cpu.write_gpr(Reg::R1, 7);
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::CvtIntToFloat {
                dst: Reg::V3,
                src: Operand::reg(Reg::R1),
            },
            0,
        )
        .unwrap();
        assert_eq!(cpu.read_f64(Reg::V3), 7.0);
        cpu.write_f64(Reg::V4, -2.9);
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::CvtFloatToInt {
                dst: Reg::R2,
                src: Operand::reg(Reg::V4),
            },
            0,
        )
        .unwrap();
        assert_eq!(cpu.read_gpr(Reg::R2), -2);
    }

    #[test]
    fn cmov_only_moves_when_condition_holds() {
        let (mut cpu, mut mem) = ctx();
        cpu.write_gpr(Reg::R1, 1);
        cpu.write_gpr(Reg::R2, 99);
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::cmp(Operand::imm(1), Operand::imm(2)),
            0,
        )
        .unwrap();
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::CMov {
                cond: Cond::Gt,
                dst: Reg::R1,
                src: Operand::reg(Reg::R2),
            },
            0,
        )
        .unwrap();
        assert_eq!(cpu.read_gpr(Reg::R1), 1, "condition false: no move");
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::CMov {
                cond: Cond::Lt,
                dst: Reg::R1,
                src: Operand::reg(Reg::R2),
            },
            0,
        )
        .unwrap();
        assert_eq!(cpu.read_gpr(Reg::R1), 99);
    }

    #[test]
    fn push_pop_round_trip() {
        let (mut cpu, mut mem) = ctx();
        cpu.write_gpr(Reg::R1, 1234);
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::Push {
                src: Operand::reg(Reg::R1),
            },
            0,
        )
        .unwrap();
        exec_inst(
            &mut cpu,
            &mut mem,
            &Inst::Pop {
                dst: Operand::reg(Reg::R2),
            },
            0,
        )
        .unwrap();
        assert_eq!(cpu.read_gpr(Reg::R2), 1234);
    }

    #[test]
    fn syscall_and_halt_effects() {
        let (mut cpu, mut mem) = ctx();
        assert_eq!(
            exec_inst(&mut cpu, &mut mem, &Inst::Syscall { num: 1 }, 0).unwrap(),
            Effect::Syscall { num: 1 }
        );
        assert_eq!(
            exec_inst(&mut cpu, &mut mem, &Inst::Halt, 0).unwrap(),
            Effect::Halt
        );
    }
}
