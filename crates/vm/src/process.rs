//! Process images: a loaded main binary plus the shared system library.

use crate::error::{Result, VmError};
use crate::memory::{FlatMemory, GuestMemory};
use crate::syslib::build_syslib;
use janus_ir::{disassemble, Inst, JBinary, HEAP_BASE, INST_SIZE, STACK_BASE};

/// Resolution of one PLT entry performed by the loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolvedPlt {
    /// The import resolves to guest code in the shared system library.
    Guest {
        /// Entry address of the function.
        addr: u64,
        /// The imported name.
        name: String,
    },
    /// The import resolves to a native runtime service (e.g. the
    /// compiler-parallelisation runtime used for Figure 11 baselines).
    Native {
        /// The imported name.
        name: String,
    },
}

/// Names serviced natively by the VM rather than by system-library code.
pub const NATIVE_EXTERNALS: &[&str] = &["par_for", "print_i64", "print_f64"];

/// A loaded process: the main executable, the shared system library and the
/// pre-decoded instruction streams for both.
#[derive(Debug, Clone)]
pub struct Process {
    binary: JBinary,
    syslib: JBinary,
    main_insts: Vec<Inst>,
    syslib_insts: Vec<Inst>,
    plt: Vec<ResolvedPlt>,
}

impl Process {
    /// Loads a main binary together with the standard system library.
    ///
    /// # Errors
    ///
    /// Returns an error if the binary fails to decode or imports a function
    /// that neither the system library nor the native runtime provides.
    pub fn load(binary: &JBinary) -> Result<Process> {
        Process::load_with_syslib(binary, build_syslib())
    }

    /// Loads a main binary with a caller-provided library image.
    ///
    /// # Errors
    ///
    /// See [`Process::load`].
    pub fn load_with_syslib(binary: &JBinary, syslib: JBinary) -> Result<Process> {
        let main_insts = disassemble(binary)
            .map_err(|e| VmError::Load {
                reason: format!("main binary: {e}"),
            })?
            .into_iter()
            .map(|d| d.inst)
            .collect();
        let syslib_insts = disassemble(&syslib)
            .map_err(|e| VmError::Load {
                reason: format!("system library: {e}"),
            })?
            .into_iter()
            .map(|d| d.inst)
            .collect();
        let mut plt = Vec::with_capacity(binary.plt().len());
        for entry in binary.plt() {
            let name = entry.name.clone();
            if let Ok(sym) = syslib.symbol(&name) {
                plt.push(ResolvedPlt::Guest {
                    addr: sym.addr,
                    name,
                });
            } else if NATIVE_EXTERNALS.contains(&name.as_str()) {
                plt.push(ResolvedPlt::Native { name });
            } else {
                return Err(VmError::UnknownExternal { name });
            }
        }
        Ok(Process {
            binary: binary.clone(),
            syslib,
            main_insts,
            syslib_insts,
            plt,
        })
    }

    /// The main executable.
    #[must_use]
    pub fn binary(&self) -> &JBinary {
        &self.binary
    }

    /// The shared system library image.
    #[must_use]
    pub fn syslib(&self) -> &JBinary {
        &self.syslib
    }

    /// PLT resolutions, indexed by PLT entry number.
    #[must_use]
    pub fn plt(&self) -> &[ResolvedPlt] {
        &self.plt
    }

    /// Resolves a PLT index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is out of range.
    pub fn resolve_plt(&self, index: u32) -> Result<&ResolvedPlt> {
        self.plt
            .get(index as usize)
            .ok_or(VmError::UnresolvedPlt { plt: index })
    }

    /// Returns `true` if `addr` lies in either text section.
    #[must_use]
    pub fn is_code(&self, addr: u64) -> bool {
        self.binary.text_contains(addr) || self.syslib.text_contains(addr)
    }

    /// Returns `true` if `addr` lies in the shared system library (code that
    /// the static analyser never saw).
    #[must_use]
    pub fn is_syslib_code(&self, addr: u64) -> bool {
        self.syslib.text_contains(addr)
    }

    /// The decoded instruction at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadPc`] if `addr` is not a valid instruction
    /// address in either text section.
    pub fn inst_at(&self, addr: u64) -> Result<&Inst> {
        let (base, insts) = if self.binary.text_contains(addr) {
            (self.binary.text_base(), &self.main_insts)
        } else if self.syslib.text_contains(addr) {
            (self.syslib.text_base(), &self.syslib_insts)
        } else {
            return Err(VmError::BadPc { pc: addr });
        };
        let off = addr - base;
        if off % INST_SIZE as u64 != 0 {
            return Err(VmError::BadPc { pc: addr });
        }
        Ok(&insts[(off / INST_SIZE as u64) as usize])
    }

    /// Builds the initial memory image: `.data` sections of the main binary
    /// and the system library are copied in; `.bss`, heap and stack read as
    /// zero until written.
    #[must_use]
    pub fn initial_memory(&self) -> FlatMemory {
        let mut mem = FlatMemory::new();
        mem.write_bytes(self.binary.data_base(), self.binary.data());
        mem.write_bytes(self.syslib.data_base(), self.syslib.data());
        // Loader statistics should not count towards program behaviour.
        mem.loads = 0;
        mem.stores = 0;
        mem
    }

    /// Initial program counter (the binary's entry point).
    #[must_use]
    pub fn entry(&self) -> u64 {
        self.binary.entry()
    }

    /// Initial stack pointer for the main thread.
    #[must_use]
    pub fn initial_sp(&self) -> u64 {
        STACK_BASE
    }

    /// Start of the heap (`sbrk`) region.
    #[must_use]
    pub fn heap_base(&self) -> u64 {
        HEAP_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_ir::{AsmBuilder, Operand, Reg};

    fn tiny_binary(with_plt: &[&str]) -> JBinary {
        let mut asm = AsmBuilder::new();
        asm.function("main");
        for name in with_plt {
            asm.push_call_ext(*name);
        }
        asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(0)));
        asm.push(Inst::Halt);
        asm.finish_binary("main").unwrap()
    }

    #[test]
    fn loads_and_resolves_syslib_imports() {
        let bin = tiny_binary(&["pow", "memcpy"]);
        let p = Process::load(&bin).unwrap();
        assert_eq!(p.plt().len(), 2);
        match p.resolve_plt(0).unwrap() {
            ResolvedPlt::Guest { name, addr } => {
                assert_eq!(name, "pow");
                assert!(p.is_syslib_code(*addr));
            }
            other => panic!("expected guest resolution, got {other:?}"),
        }
    }

    #[test]
    fn resolves_native_imports() {
        let bin = tiny_binary(&["par_for"]);
        let p = Process::load(&bin).unwrap();
        assert_eq!(
            p.resolve_plt(0).unwrap(),
            &ResolvedPlt::Native {
                name: "par_for".to_string()
            }
        );
    }

    #[test]
    fn unknown_import_is_an_error() {
        let bin = tiny_binary(&["frobnicate"]);
        let err = Process::load(&bin).unwrap_err();
        assert!(matches!(err, VmError::UnknownExternal { .. }));
    }

    #[test]
    fn inst_at_decodes_both_sections() {
        let bin = tiny_binary(&["pow"]);
        let p = Process::load(&bin).unwrap();
        assert!(p.inst_at(bin.entry()).is_ok());
        let pow_addr = p.syslib().symbol("pow").unwrap().addr;
        assert!(p.inst_at(pow_addr).is_ok());
        assert!(p.inst_at(0x1234).is_err());
        assert!(p.inst_at(bin.entry() + 1).is_err(), "misaligned address");
    }

    #[test]
    fn out_of_range_plt_is_an_error() {
        let bin = tiny_binary(&[]);
        let p = Process::load(&bin).unwrap();
        assert!(matches!(
            p.resolve_plt(7),
            Err(VmError::UnresolvedPlt { plt: 7 })
        ));
    }

    #[test]
    fn initial_memory_contains_data_sections() {
        let mut asm = AsmBuilder::new();
        let addr = asm.i64_array("values", 4, &[11, 22, 33, 44]);
        asm.function("main");
        asm.push(Inst::Halt);
        let bin = asm.finish_binary("main").unwrap();
        let p = Process::load(&bin).unwrap();
        let mut mem = p.initial_memory();
        assert_eq!(mem.read_i64(addr), 11);
        assert_eq!(mem.read_i64(addr + 24), 44);
    }
}
