//! The shared system library.
//!
//! A small math/string library written directly in JVA assembly and loaded at
//! [`SYSLIB_BASE`]. The main executable imports these functions through its
//! PLT, which means their code is **not** part of the binary the static
//! analyser sees: the dynamic binary modifier only discovers it at runtime,
//! exactly like shared-library code (`libm`'s `pow` in the paper's bwaves
//! example). All functions follow a simple calling convention:
//!
//! * integer arguments in `r0`–`r3`, integer results in `r0`;
//! * floating-point arguments in `v0`–`v3`, floating-point results in `v0`;
//! * all other registers are caller-saved.
//!
//! The math routines are table-driven polynomial approximations: they perform
//! a realistic number of instructions and data-section reads per call (the
//! paper reports ~49 instructions and 11 heap reads per `pow` call) while
//! remaining fully deterministic. Their numerical accuracy is irrelevant to
//! the reproduction because the native baseline executes exactly the same
//! code.

use janus_ir::{
    AluOp, AsmBuilder, Cond, FpuOp, Inst, JBinary, MemRef, Operand, Reg, SYSLIB_BASE,
    SYSLIB_DATA_BASE,
};

/// Names of every function exported by the system library.
pub const SYSLIB_EXPORTS: &[&str] = &[
    "pow", "exp", "log", "sin", "sqrt", "fabs", "memcpy", "memset", "isum",
];

/// Builds the system library image.
///
/// The returned binary has its text at [`SYSLIB_BASE`] and data at
/// [`SYSLIB_DATA_BASE`]; every exported function is present in the symbol
/// table.
#[must_use]
pub fn build_syslib() -> JBinary {
    let mut asm = AsmBuilder::with_bases(SYSLIB_BASE, SYSLIB_DATA_BASE);
    asm.set_producer("jlibm 1.0");

    // Coefficient tables used by the polynomial approximations.
    let pow_coeffs = asm.f64_array(
        "pow_coeffs",
        8,
        &[
            0.9931, 0.0084, 0.4997, 0.1664, 0.0419, 0.0083, 0.0014, 0.0002,
        ],
    );
    let exp_coeffs = asm.f64_array(
        "exp_coeffs",
        6,
        &[1.0, 1.0, 0.5, 0.166_666_7, 0.041_666_7, 0.008_333_3],
    );
    let log_coeffs = asm.f64_array("log_coeffs", 6, &[0.0, 1.0, -0.5, 0.333_333_3, -0.25, 0.2]);
    let sin_coeffs = asm.f64_array(
        "sin_coeffs",
        5,
        &[1.0, -0.166_666_7, 0.008_333_3, -0.000_198_4, 0.000_002_8],
    );

    build_pow(&mut asm, pow_coeffs);
    build_poly_fn(&mut asm, "exp", exp_coeffs, 6);
    build_poly_fn(&mut asm, "log", log_coeffs, 6);
    build_poly_fn(&mut asm, "sin", sin_coeffs, 5);
    build_sqrt(&mut asm);
    build_fabs(&mut asm);
    build_memcpy(&mut asm);
    build_memset(&mut asm);
    build_isum(&mut asm);

    asm.finish_binary("pow").expect("system library assembles")
}

/// `pow(x = v0, y = v1) -> v0`
///
/// Computes a smooth, strictly positive function of `(x, y)` via a
/// table-driven product expansion. Reads the coefficient table (8 reads) plus
/// a handful of stack slots, performs no heap writes, and retires roughly 50
/// instructions per call — matching the dynamic profile the paper reports for
/// the `pow` call in bwaves' hot loop.
fn build_pow(asm: &mut AsmBuilder, coeffs: u64) {
    asm.function("pow");
    // r1 = loop counter, r2 = table cursor; v2 = accumulator, v3 = term.
    asm.push(Inst::Push {
        src: Operand::reg(Reg::R1),
    });
    asm.push(Inst::Push {
        src: Operand::reg(Reg::R2),
    });
    // acc = 1.0
    asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::imm(1)));
    asm.push(Inst::CvtIntToFloat {
        dst: Reg::V2,
        src: Operand::reg(Reg::R1),
    });
    // v4 = x - 1.0
    asm.push(Inst::FMov {
        dst: Operand::reg(Reg::V4),
        src: Operand::reg(Reg::V0),
    });
    asm.push(Inst::Fpu {
        op: FpuOp::Sub,
        dst: Operand::reg(Reg::V4),
        src: Operand::reg(Reg::V2),
    });
    // v5 = y scaled by 1/8
    asm.push(Inst::FMov {
        dst: Operand::reg(Reg::V5),
        src: Operand::reg(Reg::V1),
    });
    asm.push(Inst::mov(Operand::reg(Reg::R2), Operand::imm(8)));
    asm.push(Inst::CvtIntToFloat {
        dst: Reg::V6,
        src: Operand::reg(Reg::R2),
    });
    asm.push(Inst::Fpu {
        op: FpuOp::Div,
        dst: Operand::reg(Reg::V5),
        src: Operand::reg(Reg::V6),
    });
    // i = 0
    asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::imm(0)));
    asm.label("pow_loop");
    // v3 = coeffs[i]
    asm.push(Inst::FMov {
        dst: Operand::reg(Reg::V3),
        src: Operand::mem(MemRef {
            base: None,
            index: Some(Reg::R1),
            scale: 8,
            disp: coeffs as i64,
        }),
    });
    // term = 1 + (x-1) * coeff * y/8
    asm.push(Inst::Fpu {
        op: FpuOp::Mul,
        dst: Operand::reg(Reg::V3),
        src: Operand::reg(Reg::V4),
    });
    asm.push(Inst::Fpu {
        op: FpuOp::Mul,
        dst: Operand::reg(Reg::V3),
        src: Operand::reg(Reg::V5),
    });
    asm.push(Inst::mov(Operand::reg(Reg::R2), Operand::imm(1)));
    asm.push(Inst::CvtIntToFloat {
        dst: Reg::V7,
        src: Operand::reg(Reg::R2),
    });
    asm.push(Inst::Fpu {
        op: FpuOp::Add,
        dst: Operand::reg(Reg::V3),
        src: Operand::reg(Reg::V7),
    });
    // acc *= term
    asm.push(Inst::Fpu {
        op: FpuOp::Mul,
        dst: Operand::reg(Reg::V2),
        src: Operand::reg(Reg::V3),
    });
    // i += 1; loop while i < 8
    asm.push(Inst::alu(
        AluOp::Add,
        Operand::reg(Reg::R1),
        Operand::imm(1),
    ));
    asm.push(Inst::cmp(Operand::reg(Reg::R1), Operand::imm(8)));
    asm.push_branch(Cond::Lt, "pow_loop");
    // result
    asm.push(Inst::FMov {
        dst: Operand::reg(Reg::V0),
        src: Operand::reg(Reg::V2),
    });
    asm.push(Inst::Pop {
        dst: Operand::reg(Reg::R2),
    });
    asm.push(Inst::Pop {
        dst: Operand::reg(Reg::R1),
    });
    asm.push(Inst::Ret);
}

/// Builds a generic table-driven polynomial function `name(v0) -> v0` with
/// `terms` coefficients evaluated by Horner's scheme.
fn build_poly_fn(asm: &mut AsmBuilder, name: &str, coeffs: u64, terms: i64) {
    asm.function(name);
    let loop_label = format!("{name}_loop");
    // v2 = acc (starts at highest coefficient), r1 = index from terms-1 down to 0.
    asm.push(Inst::Push {
        src: Operand::reg(Reg::R1),
    });
    asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::imm(terms - 1)));
    asm.push(Inst::FMov {
        dst: Operand::reg(Reg::V2),
        src: Operand::mem(MemRef {
            base: None,
            index: Some(Reg::R1),
            scale: 8,
            disp: coeffs as i64,
        }),
    });
    asm.push(Inst::alu(
        AluOp::Sub,
        Operand::reg(Reg::R1),
        Operand::imm(1),
    ));
    asm.label(loop_label.clone());
    // acc = acc * x + coeffs[i]
    asm.push(Inst::Fpu {
        op: FpuOp::Mul,
        dst: Operand::reg(Reg::V2),
        src: Operand::reg(Reg::V0),
    });
    asm.push(Inst::FMov {
        dst: Operand::reg(Reg::V3),
        src: Operand::mem(MemRef {
            base: None,
            index: Some(Reg::R1),
            scale: 8,
            disp: coeffs as i64,
        }),
    });
    asm.push(Inst::Fpu {
        op: FpuOp::Add,
        dst: Operand::reg(Reg::V2),
        src: Operand::reg(Reg::V3),
    });
    asm.push(Inst::alu(
        AluOp::Sub,
        Operand::reg(Reg::R1),
        Operand::imm(1),
    ));
    asm.push(Inst::cmp(Operand::reg(Reg::R1), Operand::imm(0)));
    asm.push_branch(Cond::Ge, loop_label);
    asm.push(Inst::FMov {
        dst: Operand::reg(Reg::V0),
        src: Operand::reg(Reg::V2),
    });
    asm.push(Inst::Pop {
        dst: Operand::reg(Reg::R1),
    });
    asm.push(Inst::Ret);
}

/// `sqrt(v0) -> v0`
fn build_sqrt(asm: &mut AsmBuilder) {
    asm.function("sqrt");
    asm.push(Inst::Fpu {
        op: FpuOp::Sqrt,
        dst: Operand::reg(Reg::V0),
        src: Operand::reg(Reg::V0),
    });
    asm.push(Inst::Ret);
}

/// `fabs(v0) -> v0`
fn build_fabs(asm: &mut AsmBuilder) {
    asm.function("fabs");
    // v1 = -v0 ; v0 = max(v0, v1)
    asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::imm(0)));
    asm.push(Inst::CvtIntToFloat {
        dst: Reg::V1,
        src: Operand::reg(Reg::R1),
    });
    asm.push(Inst::Fpu {
        op: FpuOp::Sub,
        dst: Operand::reg(Reg::V1),
        src: Operand::reg(Reg::V0),
    });
    asm.push(Inst::Fpu {
        op: FpuOp::Max,
        dst: Operand::reg(Reg::V0),
        src: Operand::reg(Reg::V1),
    });
    asm.push(Inst::Ret);
}

/// `memcpy(dst = r0, src = r1, bytes = r2) -> r0`
///
/// Copies eight bytes at a time (the compiler always passes multiples of 8).
fn build_memcpy(asm: &mut AsmBuilder) {
    asm.function("memcpy");
    asm.push(Inst::Push {
        src: Operand::reg(Reg::R3),
    });
    asm.push(Inst::Push {
        src: Operand::reg(Reg::R4),
    });
    asm.push(Inst::mov(Operand::reg(Reg::R3), Operand::imm(0)));
    asm.label("memcpy_loop");
    asm.push(Inst::cmp(Operand::reg(Reg::R3), Operand::reg(Reg::R2)));
    asm.push_branch(Cond::Ge, "memcpy_done");
    asm.push(Inst::mov(
        Operand::reg(Reg::R4),
        Operand::mem(MemRef::base_index(Reg::R1, Reg::R3, 1)),
    ));
    asm.push(Inst::mov(
        Operand::mem(MemRef::base_index(Reg::R0, Reg::R3, 1)),
        Operand::reg(Reg::R4),
    ));
    asm.push(Inst::alu(
        AluOp::Add,
        Operand::reg(Reg::R3),
        Operand::imm(8),
    ));
    asm.push_jmp("memcpy_loop");
    asm.label("memcpy_done");
    asm.push(Inst::Pop {
        dst: Operand::reg(Reg::R4),
    });
    asm.push(Inst::Pop {
        dst: Operand::reg(Reg::R3),
    });
    asm.push(Inst::Ret);
}

/// `memset(dst = r0, value = r1, bytes = r2) -> r0`
fn build_memset(asm: &mut AsmBuilder) {
    asm.function("memset");
    asm.push(Inst::Push {
        src: Operand::reg(Reg::R3),
    });
    asm.push(Inst::mov(Operand::reg(Reg::R3), Operand::imm(0)));
    asm.label("memset_loop");
    asm.push(Inst::cmp(Operand::reg(Reg::R3), Operand::reg(Reg::R2)));
    asm.push_branch(Cond::Ge, "memset_done");
    asm.push(Inst::mov(
        Operand::mem(MemRef::base_index(Reg::R0, Reg::R3, 1)),
        Operand::reg(Reg::R1),
    ));
    asm.push(Inst::alu(
        AluOp::Add,
        Operand::reg(Reg::R3),
        Operand::imm(8),
    ));
    asm.push_jmp("memset_loop");
    asm.label("memset_done");
    asm.push(Inst::Pop {
        dst: Operand::reg(Reg::R3),
    });
    asm.push(Inst::Ret);
}

/// `isum(ptr = r0, count = r1) -> r0`: sums `count` 64-bit integers.
fn build_isum(asm: &mut AsmBuilder) {
    asm.function("isum");
    asm.push(Inst::Push {
        src: Operand::reg(Reg::R2),
    });
    asm.push(Inst::Push {
        src: Operand::reg(Reg::R3),
    });
    asm.push(Inst::mov(Operand::reg(Reg::R2), Operand::imm(0)));
    asm.push(Inst::mov(Operand::reg(Reg::R3), Operand::imm(0)));
    asm.label("isum_loop");
    asm.push(Inst::cmp(Operand::reg(Reg::R3), Operand::reg(Reg::R1)));
    asm.push_branch(Cond::Ge, "isum_done");
    asm.push(Inst::alu(
        AluOp::Add,
        Operand::reg(Reg::R2),
        Operand::mem(MemRef::base_index(Reg::R0, Reg::R3, 8)),
    ));
    asm.push(Inst::alu(
        AluOp::Add,
        Operand::reg(Reg::R3),
        Operand::imm(1),
    ));
    asm.push_jmp("isum_loop");
    asm.label("isum_done");
    asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::reg(Reg::R2)));
    asm.push(Inst::Pop {
        dst: Operand::reg(Reg::R3),
    });
    asm.push(Inst::Pop {
        dst: Operand::reg(Reg::R2),
    });
    asm.push(Inst::Ret);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syslib_builds_and_exports_everything() {
        let lib = build_syslib();
        assert_eq!(lib.text_base(), SYSLIB_BASE);
        for name in SYSLIB_EXPORTS {
            assert!(lib.symbol(name).is_ok(), "missing export {name}");
        }
        assert!(lib.num_instructions() > 50);
    }

    #[test]
    fn syslib_text_decodes_cleanly() {
        let lib = build_syslib();
        let insts = janus_ir::disassemble(&lib).unwrap();
        assert_eq!(insts.len() as u64, lib.num_instructions());
    }

    #[test]
    fn exports_are_within_the_text_section() {
        let lib = build_syslib();
        for name in SYSLIB_EXPORTS {
            let sym = lib.symbol(name).unwrap();
            assert!(lib.text_contains(sym.addr), "{name} outside text");
        }
    }
}
