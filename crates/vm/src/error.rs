//! Error type for guest execution.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, VmError>;

/// Errors raised while executing guest code.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VmError {
    /// The program counter left every mapped text section.
    BadPc {
        /// The faulting program counter.
        pc: u64,
    },
    /// An instruction failed to decode.
    Decode {
        /// The underlying IR error, formatted.
        reason: String,
    },
    /// Integer division by zero.
    DivisionByZero {
        /// Address of the faulting instruction.
        pc: u64,
    },
    /// A PLT index had no resolution.
    UnresolvedPlt {
        /// The PLT index.
        plt: u32,
    },
    /// An unknown external function name was called.
    UnknownExternal {
        /// The function name.
        name: String,
    },
    /// An unknown system call number was used.
    UnknownSyscall {
        /// The syscall number.
        num: u32,
    },
    /// The cycle budget was exhausted (runaway program guard).
    CycleLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// The guest stack over- or under-flowed its reserved region.
    StackOverflow {
        /// The faulting stack pointer value.
        sp: u64,
    },
    /// The binary could not be loaded.
    Load {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::BadPc { pc } => write!(f, "program counter {pc:#x} is not mapped"),
            VmError::Decode { reason } => write!(f, "instruction decode failed: {reason}"),
            VmError::DivisionByZero { pc } => write!(f, "integer division by zero at {pc:#x}"),
            VmError::UnresolvedPlt { plt } => write!(f, "unresolved plt entry {plt}"),
            VmError::UnknownExternal { name } => write!(f, "unknown external function `{name}`"),
            VmError::UnknownSyscall { num } => write!(f, "unknown system call {num}"),
            VmError::CycleLimitExceeded { limit } => {
                write!(f, "cycle limit of {limit} exceeded")
            }
            VmError::StackOverflow { sp } => write!(f, "stack overflow (sp = {sp:#x})"),
            VmError::Load { reason } => write!(f, "failed to load process: {reason}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<janus_ir::IrError> for VmError {
    fn from(e: janus_ir::IrError) -> Self {
        VmError::Decode {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(VmError::BadPc { pc: 0x1234 }.to_string().contains("0x1234"));
        assert!(VmError::UnknownExternal {
            name: "zap".to_string()
        }
        .to_string()
        .contains("zap"));
    }

    #[test]
    fn converts_from_ir_error() {
        let ir = janus_ir::IrError::InvalidRegister { index: 99 };
        let vm: VmError = ir.into();
        assert!(matches!(vm, VmError::Decode { .. }));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VmError>();
    }
}
