//! The native-execution virtual machine.
//!
//! [`Vm`] interprets a loaded [`Process`] directly, without any binary
//! modification. It is the "native single-threaded execution" baseline that
//! all Janus speedups in the evaluation are normalised against, and it also
//! provides the runtime services (system calls and native externals) shared
//! with the dynamic binary modifier.

use crate::cpu::Cpu;
use crate::error::{Result, VmError};
use crate::exec::{exec_inst, pop_value, Effect};
use crate::memory::FlatMemory;
#[cfg(test)]
use crate::memory::GuestMemory as _;
use crate::process::{Process, ResolvedPlt};
use janus_ir::{Reg, SyscallNum, INST_SIZE};
use std::collections::VecDeque;

/// Sentinel return address used when the VM calls a guest function on behalf
/// of a native service.
const RETURN_SENTINEL: u64 = 0xffff_ffff_ffff_0000;

/// Configuration of a VM run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmConfig {
    /// Abort execution after this many cycles (guards against runaway
    /// programs in tests).
    pub cycle_limit: u64,
    /// Modelled per-thread spawn/join overhead, in cycles, charged by the
    /// native `par_for` runtime used by compiler-parallelised binaries.
    pub spawn_overhead: u64,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            cycle_limit: 20_000_000_000,
            spawn_overhead: 3_000,
        }
    }
}

/// Result of running a program to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Total cycles consumed (virtual time).
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Guest exit code.
    pub exit_code: i64,
}

/// The virtual machine driving native execution of one process.
#[derive(Debug)]
pub struct Vm {
    process: Process,
    /// The guest CPU context.
    pub cpu: Cpu,
    /// The guest address space.
    pub mem: FlatMemory,
    config: VmConfig,
    heap_brk: u64,
    output_ints: Vec<i64>,
    output_floats: Vec<f64>,
    input: VecDeque<i64>,
    exit_code: i64,
}

impl Vm {
    /// Creates a VM for `process` with the default configuration.
    #[must_use]
    pub fn new(process: Process) -> Vm {
        Vm::with_config(process, VmConfig::default())
    }

    /// Creates a VM with an explicit configuration.
    #[must_use]
    pub fn with_config(process: Process, config: VmConfig) -> Vm {
        let mut cpu = Cpu::new();
        cpu.pc = process.entry();
        cpu.set_sp(process.initial_sp());
        let mem = process.initial_memory();
        let heap_brk = process.heap_base();
        Vm {
            process,
            cpu,
            mem,
            config,
            heap_brk,
            output_ints: Vec::new(),
            output_floats: Vec::new(),
            input: VecDeque::new(),
            exit_code: 0,
        }
    }

    /// Provides simulated standard input values consumed by the
    /// [`SyscallNum::ReadInt`] system call.
    pub fn set_input(&mut self, input: &[i64]) {
        self.input = input.iter().copied().collect();
    }

    /// Integers written by the guest through [`SyscallNum::WriteInt`].
    #[must_use]
    pub fn output_ints(&self) -> &[i64] {
        &self.output_ints
    }

    /// Floats written by the guest through [`SyscallNum::WriteFloat`].
    #[must_use]
    pub fn output_floats(&self) -> &[f64] {
        &self.output_floats
    }

    /// The loaded process.
    #[must_use]
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Runs the program until it halts.
    ///
    /// # Errors
    ///
    /// Returns an error if execution faults (bad PC, division by zero,
    /// unknown import) or exceeds the configured cycle limit.
    pub fn run(&mut self) -> Result<RunResult> {
        loop {
            if self.cpu.cycles > self.config.cycle_limit {
                return Err(VmError::CycleLimitExceeded {
                    limit: self.config.cycle_limit,
                });
            }
            let pc = self.cpu.pc;
            let inst = self.process.inst_at(pc)?.clone();
            let next_pc = pc + INST_SIZE as u64;
            let effect = exec_inst(&mut self.cpu, &mut self.mem, &inst, next_pc)?;
            match effect {
                Effect::Continue => self.cpu.pc = next_pc,
                Effect::Jump(target) => self.cpu.pc = target,
                Effect::Halt => break,
                Effect::External { plt } => self.handle_external(plt)?,
                Effect::Syscall { num } => {
                    if self.handle_syscall(num)? {
                        break;
                    }
                    self.cpu.pc = next_pc;
                }
            }
        }
        Ok(RunResult {
            cycles: self.cpu.cycles,
            retired: self.cpu.retired,
            exit_code: self.exit_code,
        })
    }

    fn handle_external(&mut self, plt: u32) -> Result<()> {
        match self.process.resolve_plt(plt)?.clone() {
            ResolvedPlt::Guest { addr, .. } => {
                // Jump straight to the library code; its `ret` will pop the
                // return address that the call pushed.
                self.cpu.pc = addr;
                Ok(())
            }
            ResolvedPlt::Native { name } => {
                self.run_native(&name)?;
                // Return to the caller by popping the pushed return address.
                let ret = pop_value(&mut self.cpu, &mut self.mem) as u64;
                self.cpu.pc = ret;
                Ok(())
            }
        }
    }

    fn run_native(&mut self, name: &str) -> Result<()> {
        match name {
            "print_i64" => {
                let v = self.cpu.read_gpr(Reg::R0);
                self.output_ints.push(v);
                Ok(())
            }
            "print_f64" => {
                let v = self.cpu.read_f64(Reg::V0);
                self.output_floats.push(v);
                Ok(())
            }
            "par_for" => self.native_par_for(),
            other => Err(VmError::UnknownExternal {
                name: other.to_string(),
            }),
        }
    }

    /// The `par_for(fn = r0, start = r1, end = r2, threads = r3)` native.
    ///
    /// This is the runtime library behind compiler auto-parallelisation
    /// (`-parallelize`): the outlined loop body `fn(start, end)` is executed
    /// for `threads` contiguous chunks and the virtual time charged is the
    /// maximum chunk time plus a spawn/join overhead per thread, modelling an
    /// OpenMP-style static schedule on a multicore machine.
    fn native_par_for(&mut self) -> Result<()> {
        let func = self.cpu.read_gpr(Reg::R0) as u64;
        let start = self.cpu.read_gpr(Reg::R1);
        let end = self.cpu.read_gpr(Reg::R2);
        let threads = self.cpu.read_gpr(Reg::R3).max(1);
        let total = (end - start).max(0);
        let chunk = (total + threads - 1) / threads;
        let cycles_before = self.cpu.cycles;
        let mut max_chunk_cycles = 0u64;
        let mut chunk_start = start;
        while chunk_start < end {
            let chunk_end = (chunk_start + chunk).min(end);
            let before = self.cpu.cycles;
            self.call_guest_function(func, &[chunk_start, chunk_end])?;
            max_chunk_cycles = max_chunk_cycles.max(self.cpu.cycles - before);
            chunk_start = chunk_end;
        }
        // Replace the serial sum of chunk times by the parallel maximum plus
        // the spawn/join overhead.
        let serial = self.cpu.cycles - cycles_before;
        self.cpu.cycles =
            cycles_before + max_chunk_cycles + self.config.spawn_overhead * threads as u64;
        let _ = serial;
        Ok(())
    }

    /// Calls a guest function with up to four integer arguments and runs it to
    /// completion, returning when the function returns.
    ///
    /// # Errors
    ///
    /// Propagates any execution error from the callee.
    pub fn call_guest_function(&mut self, addr: u64, args: &[i64]) -> Result<i64> {
        assert!(args.len() <= 4, "at most four integer arguments supported");
        let saved_pc = self.cpu.pc;
        for (i, a) in args.iter().enumerate() {
            self.cpu.write_gpr(Reg::gpr(i as u8), *a);
        }
        crate::exec::push_value(&mut self.cpu, &mut self.mem, RETURN_SENTINEL as i64);
        self.cpu.pc = addr;
        loop {
            if self.cpu.cycles > self.config.cycle_limit {
                return Err(VmError::CycleLimitExceeded {
                    limit: self.config.cycle_limit,
                });
            }
            let pc = self.cpu.pc;
            if pc == RETURN_SENTINEL {
                break;
            }
            let inst = self.process.inst_at(pc)?.clone();
            let next_pc = pc + INST_SIZE as u64;
            let effect = exec_inst(&mut self.cpu, &mut self.mem, &inst, next_pc)?;
            match effect {
                Effect::Continue => self.cpu.pc = next_pc,
                Effect::Jump(target) => self.cpu.pc = target,
                Effect::Halt => break,
                Effect::External { plt } => self.handle_external(plt)?,
                Effect::Syscall { num } => {
                    if self.handle_syscall(num)? {
                        break;
                    }
                    self.cpu.pc = next_pc;
                }
            }
        }
        self.cpu.pc = saved_pc;
        Ok(self.cpu.read_gpr(Reg::R0))
    }

    /// Handles a system call. Returns `true` if the program should halt.
    fn handle_syscall(&mut self, num: u32) -> Result<bool> {
        let call = SyscallNum::from_u32(num).ok_or(VmError::UnknownSyscall { num })?;
        match call {
            SyscallNum::Exit => {
                self.exit_code = self.cpu.read_gpr(Reg::R0);
                Ok(true)
            }
            SyscallNum::WriteInt => {
                let v = self.cpu.read_gpr(Reg::R1);
                self.output_ints.push(v);
                Ok(false)
            }
            SyscallNum::WriteFloat => {
                let v = self.cpu.read_f64(Reg::V0);
                self.output_floats.push(v);
                Ok(false)
            }
            SyscallNum::Sbrk => {
                let size = self.cpu.read_gpr(Reg::R1).max(0) as u64;
                let old = self.heap_brk;
                self.heap_brk += (size + 7) & !7;
                self.cpu.write_gpr(Reg::R0, old as i64);
                Ok(false)
            }
            SyscallNum::Clock => {
                let c = self.cpu.cycles;
                self.cpu.write_gpr(Reg::R0, c as i64);
                Ok(false)
            }
            SyscallNum::ReadInt => {
                let v = self.input.pop_front().unwrap_or(0);
                self.cpu.write_gpr(Reg::R0, v);
                Ok(false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_ir::{AluOp, AsmBuilder, Cond, Inst, MemRef, Operand};

    fn run_asm(build: impl FnOnce(&mut AsmBuilder)) -> (Vm, RunResult) {
        let mut asm = AsmBuilder::new();
        build(&mut asm);
        let bin = asm.finish_binary("main").unwrap();
        let process = Process::load(&bin).unwrap();
        let mut vm = Vm::new(process);
        let result = vm.run().unwrap();
        (vm, result)
    }

    #[test]
    fn runs_a_counting_loop() {
        let (vm, result) = run_asm(|asm| {
            asm.function("main");
            asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(0)));
            asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::imm(1000)));
            asm.label("loop");
            asm.push(Inst::alu(
                AluOp::Add,
                Operand::reg(Reg::R0),
                Operand::imm(1),
            ));
            asm.push(Inst::cmp(Operand::reg(Reg::R0), Operand::reg(Reg::R1)));
            asm.push_branch(Cond::Lt, "loop");
            asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::reg(Reg::R0)));
            asm.push(Inst::Syscall {
                num: SyscallNum::WriteInt.as_u32(),
            });
            asm.push(Inst::Halt);
        });
        assert_eq!(vm.output_ints(), &[1000]);
        assert!(result.retired > 3000, "loop body retired 3 insts * 1000");
        assert!(result.cycles >= result.retired);
    }

    #[test]
    fn exit_syscall_sets_exit_code() {
        let (_, result) = run_asm(|asm| {
            asm.function("main");
            asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(17)));
            asm.push(Inst::Syscall {
                num: SyscallNum::Exit.as_u32(),
            });
        });
        assert_eq!(result.exit_code, 17);
    }

    #[test]
    fn calls_into_the_system_library() {
        let (vm, _) = run_asm(|asm| {
            asm.function("main");
            // v0 = 2.0, v1 = 3.0; call pow; print result.
            asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(2)));
            asm.push(Inst::CvtIntToFloat {
                dst: Reg::V0,
                src: Operand::reg(Reg::R0),
            });
            asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(3)));
            asm.push(Inst::CvtIntToFloat {
                dst: Reg::V1,
                src: Operand::reg(Reg::R0),
            });
            asm.push_call_ext("pow");
            asm.push(Inst::Syscall {
                num: SyscallNum::WriteFloat.as_u32(),
            });
            asm.push(Inst::Halt);
        });
        assert_eq!(vm.output_floats().len(), 1);
        let v = vm.output_floats()[0];
        assert!(v > 1.0, "pow-like function grows for x>1, y>0, got {v}");
    }

    #[test]
    fn sqrt_from_syslib_is_exact() {
        let (vm, _) = run_asm(|asm| {
            asm.function("main");
            asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(144)));
            asm.push(Inst::CvtIntToFloat {
                dst: Reg::V0,
                src: Operand::reg(Reg::R0),
            });
            asm.push_call_ext("sqrt");
            asm.push(Inst::Syscall {
                num: SyscallNum::WriteFloat.as_u32(),
            });
            asm.push(Inst::Halt);
        });
        assert_eq!(vm.output_floats(), &[12.0]);
    }

    #[test]
    fn memcpy_copies_arrays() {
        let mut asm = AsmBuilder::new();
        let src = asm.i64_array("src", 4, &[1, 2, 3, 4]);
        let dst = asm.i64_array("dst", 4, &[]);
        asm.function("main");
        asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(dst as i64)));
        asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::imm(src as i64)));
        asm.push(Inst::mov(Operand::reg(Reg::R2), Operand::imm(32)));
        asm.push_call_ext("memcpy");
        asm.push(Inst::Halt);
        let bin = asm.finish_binary("main").unwrap();
        let mut vm = Vm::new(Process::load(&bin).unwrap());
        vm.run().unwrap();
        for i in 0..4 {
            assert_eq!(vm.mem.read_i64(dst + i * 8), (i + 1) as i64);
        }
    }

    #[test]
    fn sbrk_allocates_monotonically() {
        let (vm, _) = run_asm(|asm| {
            asm.function("main");
            asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::imm(64)));
            asm.push(Inst::Syscall {
                num: SyscallNum::Sbrk.as_u32(),
            });
            asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::reg(Reg::R0)));
            asm.push(Inst::Syscall {
                num: SyscallNum::WriteInt.as_u32(),
            });
            asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::imm(64)));
            asm.push(Inst::Syscall {
                num: SyscallNum::Sbrk.as_u32(),
            });
            asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::reg(Reg::R0)));
            asm.push(Inst::Syscall {
                num: SyscallNum::WriteInt.as_u32(),
            });
            asm.push(Inst::Halt);
        });
        let outs = vm.output_ints();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[1] - outs[0], 64);
    }

    #[test]
    fn read_int_consumes_provided_input() {
        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.push(Inst::Syscall {
            num: SyscallNum::ReadInt.as_u32(),
        });
        asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::reg(Reg::R0)));
        asm.push(Inst::Syscall {
            num: SyscallNum::WriteInt.as_u32(),
        });
        asm.push(Inst::Halt);
        let bin = asm.finish_binary("main").unwrap();
        let mut vm = Vm::new(Process::load(&bin).unwrap());
        vm.set_input(&[55]);
        vm.run().unwrap();
        assert_eq!(vm.output_ints(), &[55]);
    }

    #[test]
    fn cycle_limit_catches_infinite_loops() {
        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.label("spin");
        asm.push_jmp("spin");
        let bin = asm.finish_binary("main").unwrap();
        let mut vm = Vm::with_config(
            Process::load(&bin).unwrap(),
            VmConfig {
                cycle_limit: 10_000,
                ..VmConfig::default()
            },
        );
        assert!(matches!(vm.run(), Err(VmError::CycleLimitExceeded { .. })));
    }

    #[test]
    fn par_for_native_runs_all_chunks_and_charges_max() {
        // Loop body writes arr[i] = i for i in [start, end).
        let mut asm = AsmBuilder::new();
        let arr = asm.i64_array("arr", 64, &[]);
        asm.function("main");
        // par_for(body, 0, 64, 4 threads)
        asm.push(Inst::Lea {
            dst: Reg::R0,
            mem: MemRef::absolute(0),
        });
        // Patch in the function address via a label-load below instead.
        asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::imm(0)));
        asm.push(Inst::mov(Operand::reg(Reg::R2), Operand::imm(64)));
        asm.push(Inst::mov(Operand::reg(Reg::R3), Operand::imm(4)));
        asm.push_call_ext("par_for");
        asm.push(Inst::Halt);
        asm.function("body");
        // for i in r0..r1 { arr[i] = i }
        asm.label("body_loop");
        asm.push(Inst::cmp(Operand::reg(Reg::R0), Operand::reg(Reg::R1)));
        asm.push_branch(Cond::Ge, "body_done");
        asm.push(Inst::mov(
            Operand::mem(MemRef {
                base: None,
                index: Some(Reg::R0),
                scale: 8,
                disp: arr as i64,
            }),
            Operand::reg(Reg::R0),
        ));
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R0),
            Operand::imm(1),
        ));
        asm.push_jmp("body_loop");
        asm.label("body_done");
        asm.push(Inst::Ret);
        // Fix up: load the body address into r0 before the call.
        let body_addr = asm.label_addr("body").unwrap();
        let bin = {
            let mut bin_asm = asm;
            // Rebuild the first instruction to carry the correct address: we
            // simply re-emit main with the known address. Easier: overwrite by
            // using the finished binary is complex, so instead assert the Lea
            // trick: absolute(0) + body_addr as displacement is what we want.
            // To keep the test simple we re-assemble from scratch.
            let _ = &mut bin_asm;
            let mut asm2 = AsmBuilder::new();
            let arr2 = asm2.i64_array("arr", 64, &[]);
            assert_eq!(arr2, arr);
            asm2.function("main");
            asm2.push(Inst::mov(
                Operand::reg(Reg::R0),
                Operand::imm(body_addr as i64),
            ));
            asm2.push(Inst::mov(Operand::reg(Reg::R1), Operand::imm(0)));
            asm2.push(Inst::mov(Operand::reg(Reg::R2), Operand::imm(64)));
            asm2.push(Inst::mov(Operand::reg(Reg::R3), Operand::imm(4)));
            asm2.push_call_ext("par_for");
            asm2.push(Inst::Halt);
            asm2.function("body");
            asm2.label("body_loop");
            asm2.push(Inst::cmp(Operand::reg(Reg::R0), Operand::reg(Reg::R1)));
            asm2.push_branch(Cond::Ge, "body_done");
            asm2.push(Inst::mov(
                Operand::mem(MemRef {
                    base: None,
                    index: Some(Reg::R0),
                    scale: 8,
                    disp: arr as i64,
                }),
                Operand::reg(Reg::R0),
            ));
            asm2.push(Inst::alu(
                AluOp::Add,
                Operand::reg(Reg::R0),
                Operand::imm(1),
            ));
            asm2.push_jmp("body_loop");
            asm2.label("body_done");
            asm2.push(Inst::Ret);
            assert_eq!(asm2.label_addr("body").unwrap(), body_addr);
            asm2.finish_binary("main").unwrap()
        };
        let mut vm = Vm::new(Process::load(&bin).unwrap());
        vm.run().unwrap();
        for i in 0..64 {
            assert_eq!(vm.mem.read_i64(arr + i * 8), i as i64, "arr[{i}]");
        }
    }
}
