//! AST-level loop transformations performed at `-O3`: inner-loop unrolling
//! with a scalar remainder ("peeled") loop.
//!
//! These transformations are what make compiler-optimised binaries hard for a
//! binary-level paralleliser: the unrolled body contains several offset copies
//! of each memory access and the remainder loop duplicates the loop body under
//! a different bound, exactly the patterns section II-D of the paper calls
//! out.

use crate::ast::{Expr, LValue, Program, Stmt};
use crate::options::{CompileOptions, Vectorize};

/// Applies inner-loop unrolling to every function of a program.
#[must_use]
pub fn unroll_program(program: &Program, options: &CompileOptions) -> Program {
    let factor = options.unroll_factor();
    if factor <= 1 {
        return program.clone();
    }
    let mut out = program.clone();
    for f in &mut out.functions {
        let body = std::mem::take(&mut f.body);
        f.body = unroll_block(&body, factor, options);
    }
    out
}

fn unroll_block(block: &[Stmt], factor: usize, options: &CompileOptions) -> Vec<Stmt> {
    block
        .iter()
        .map(|s| unroll_stmt(s, factor, options))
        .collect()
}

fn unroll_stmt(stmt: &Stmt, factor: usize, options: &CompileOptions) -> Stmt {
    match stmt {
        Stmt::For {
            var,
            start,
            end,
            step,
            body,
        } => {
            let inner = unroll_block(body, factor, options);
            // Leave vectorisable loops to the vectoriser, and only unroll
            // innermost loops with simple bodies.
            let vectorise_later =
                options.vectorize != Vectorize::None && body.len() == 1 && *step == 1;
            if !vectorise_later && is_unrollable(var, &inner) {
                unroll_for(var, start, end, *step, &inner, factor)
            } else {
                Stmt::For {
                    var: var.clone(),
                    start: start.clone(),
                    end: end.clone(),
                    step: *step,
                    body: inner,
                }
            }
        }
        Stmt::While { cond, body } => Stmt::While {
            cond: cond.clone(),
            body: unroll_block(body, factor, options),
        },
        Stmt::If { cond, then, els } => Stmt::If {
            cond: cond.clone(),
            then: unroll_block(then, factor, options),
            els: unroll_block(els, factor, options),
        },
        other => other.clone(),
    }
}

/// A loop can be unrolled when its body is straight-line assignments that do
/// not redefine the induction variable and contain no control flow, calls or
/// IO.
fn is_unrollable(var: &str, body: &[Stmt]) -> bool {
    body.iter().all(|s| match s {
        Stmt::Assign { dst, .. } => !matches!(dst, LValue::Var(n) if n == var),
        _ => false,
    })
}

/// Builds the unrolled main loop plus the remainder loop.
fn unroll_for(
    var: &str,
    start: &Expr,
    end: &Expr,
    step: i64,
    body: &[Stmt],
    factor: usize,
) -> Stmt {
    let mut unrolled_body = Vec::with_capacity(body.len() * factor);
    for k in 0..factor {
        let offset = (k as i64) * step;
        for s in body {
            unrolled_body.push(offset_stmt(s, var, offset));
        }
    }
    // Main loop bound: end - (factor - 1) * step so that every unrolled copy
    // stays in range; the remainder loop finishes the leftover iterations.
    let adjustment = (factor as i64 - 1) * step;
    let main_end = Expr::sub(end.clone(), Expr::const_i(adjustment));
    let main_loop = Stmt::For {
        var: var.to_string(),
        start: start.clone(),
        end: main_end,
        step: step * factor as i64,
        body: unrolled_body,
    };
    let remainder = Stmt::For {
        var: var.to_string(),
        start: Expr::Var(var.to_string()),
        end: end.clone(),
        step,
        body: body.to_vec(),
    };
    // Wrap both in a block expressed as an `if 0 == 0` so a single statement
    // is returned (keeps the statement arity of the surrounding block).
    Stmt::If {
        cond: crate::ast::Cond::new(Expr::const_i(0), crate::ast::CmpOp::Eq, Expr::const_i(0)),
        then: vec![main_loop, remainder],
        els: vec![],
    }
}

/// Replaces every use of the induction variable `var` by `var + offset` in a
/// statement.
fn offset_stmt(stmt: &Stmt, var: &str, offset: i64) -> Stmt {
    if offset == 0 {
        return stmt.clone();
    }
    match stmt {
        Stmt::Assign { dst, value } => Stmt::Assign {
            dst: offset_lvalue(dst, var, offset),
            value: offset_expr(value, var, offset),
        },
        other => other.clone(),
    }
}

fn offset_lvalue(lv: &LValue, var: &str, offset: i64) -> LValue {
    match lv {
        LValue::Var(n) => LValue::Var(n.clone()),
        LValue::Store { array, index } => LValue::Store {
            array: array.clone(),
            index: offset_expr(index, var, offset),
        },
        LValue::StorePtr { ptr, index } => LValue::StorePtr {
            ptr: ptr.clone(),
            index: offset_expr(index, var, offset),
        },
    }
}

fn offset_expr(expr: &Expr, var: &str, offset: i64) -> Expr {
    match expr {
        Expr::Var(n) if n == var => Expr::add(Expr::Var(n.clone()), Expr::const_i(offset)),
        Expr::Load { array, index } => Expr::Load {
            array: array.clone(),
            index: Box::new(offset_expr(index, var, offset)),
        },
        Expr::LoadPtr { ptr, index } => Expr::LoadPtr {
            ptr: ptr.clone(),
            index: Box::new(offset_expr(index, var, offset)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(offset_expr(lhs, var, offset)),
            rhs: Box::new(offset_expr(rhs, var, offset)),
        },
        Expr::Cast { to, expr } => Expr::Cast {
            to: *to,
            expr: Box::new(offset_expr(expr, var, offset)),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Function, Ty};
    use crate::options::{OptLevel, Personality};

    fn copy_loop_program() -> Program {
        Program::builder("p")
            .global_i64("a", 64)
            .global_i64("b", 64)
            .function(
                Function::new("main")
                    .local("i", Ty::I64)
                    .body(vec![Stmt::simple_for(
                        "i",
                        Expr::const_i(0),
                        Expr::const_i(64),
                        vec![Stmt::assign(
                            LValue::store("b", Expr::var("i")),
                            Expr::load("a", Expr::var("i")),
                        )],
                    )]),
            )
            .build()
    }

    #[test]
    fn gcc_o3_unrolls_by_two_and_icc_by_four() {
        let gcc = unroll_program(&copy_loop_program(), &CompileOptions::gcc_o3());
        let count_assigns = |p: &Program| {
            fn walk(block: &[Stmt], out: &mut usize) {
                for s in block {
                    match s {
                        Stmt::Assign { .. } => *out += 1,
                        Stmt::For { body, .. } | Stmt::While { body, .. } => walk(body, out),
                        Stmt::If { then, els, .. } => {
                            walk(then, out);
                            walk(els, out);
                        }
                        _ => {}
                    }
                }
            }
            let mut n = 0;
            walk(&p.function("main").unwrap().body, &mut n);
            n
        };
        // Original: 1 assignment. gcc: 2 (main) + 1 (remainder). icc with SSE
        // vectorisation defers to the vectoriser, so force scalar icc here.
        assert_eq!(count_assigns(&gcc), 3);
        let mut icc_opts = CompileOptions::icc_o3();
        icc_opts.vectorize = Vectorize::None;
        let icc = unroll_program(&copy_loop_program(), &icc_opts);
        assert_eq!(count_assigns(&icc), 5);
        let _ = icc;
    }

    #[test]
    fn o2_does_not_unroll() {
        let p = copy_loop_program();
        let out = unroll_program(&p, &CompileOptions::opt(OptLevel::O2));
        assert_eq!(out, p);
    }

    #[test]
    fn loops_with_calls_are_not_unrolled() {
        let p = Program::builder("p")
            .global_f64("a", 8)
            .function(
                Function::new("main")
                    .local("i", Ty::I64)
                    .local("x", Ty::F64)
                    .body(vec![Stmt::simple_for(
                        "i",
                        Expr::const_i(0),
                        Expr::const_i(8),
                        vec![
                            Stmt::call_ext(
                                "sqrt",
                                vec![Expr::load("a", Expr::var("i"))],
                                Some(LValue::var("x")),
                            ),
                            Stmt::assign(LValue::store("a", Expr::var("i")), Expr::var("x")),
                        ],
                    )]),
            )
            .build();
        let mut opts = CompileOptions {
            personality: Personality::Icc,
            ..CompileOptions::default()
        };
        opts.vectorize = Vectorize::None;
        let out = unroll_program(&p, &opts);
        assert_eq!(out, p, "bodies containing calls must not be duplicated");
    }

    #[test]
    fn offset_expr_rewrites_only_the_induction_variable() {
        let e = Expr::add(Expr::var("i"), Expr::var("j"));
        let out = offset_expr(&e, "i", 2);
        match out {
            Expr::Binary { lhs, rhs, .. } => {
                assert_eq!(
                    *lhs,
                    Expr::add(Expr::var("i"), Expr::const_i(2)),
                    "induction use is offset"
                );
                assert_eq!(*rhs, Expr::var("j"), "other variables untouched");
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }
}
