//! Lowering of the source AST to JVA machine code.

use crate::ast::{
    BinOp, CmpOp, Cond, Expr, Function, GlobalArray, Init, LValue, Program, Stmt, Ty,
};
use crate::error::{CompileError, Result};
use crate::options::{CompileOptions, OptLevel, Vectorize};
use crate::parallelize;
use crate::transform;
use janus_ir::{AluOp, AsmBuilder, FpuOp, Inst, JBinary, MemRef, Operand, Reg};
use std::collections::HashMap;

/// Integer registers available as variable homes (argument registers R0–R3,
/// the stack/frame pointers and the scratch pool are excluded).
const INT_HOMES: [Reg; 6] = [Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R9];
/// Floating-point registers available as variable homes.
const FLT_HOMES: [Reg; 6] = [Reg::V4, Reg::V5, Reg::V6, Reg::V7, Reg::V8, Reg::V9];
/// Integer scratch registers used for expression evaluation.
const INT_SCRATCH: [Reg; 4] = [Reg::R10, Reg::R11, Reg::R12, Reg::R13];
/// Floating-point scratch registers used for expression evaluation.
const FLT_SCRATCH: [Reg; 6] = [Reg::V10, Reg::V11, Reg::V12, Reg::V13, Reg::V14, Reg::V15];

/// Where a scalar variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// In an integer register.
    Gpr(Reg),
    /// In a vector register (scalar f64 in lane 0).
    VReg(Reg),
    /// On the stack at `[fp + offset]` (offset is negative).
    Stack(i64),
}

/// Information about a lowered global array.
#[derive(Debug, Clone, Copy)]
struct GlobalInfo {
    addr: u64,
    ty: Ty,
    /// Element count; retained for diagnostics and future bounds folding.
    #[allow(dead_code)]
    len: usize,
}

/// The mini compiler: lowers a [`Program`] to a [`JBinary`].
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Default, Clone)]
pub struct Compiler {
    options: CompileOptions,
}

impl Compiler {
    /// A compiler with the default (gcc `-O3`) options.
    #[must_use]
    pub fn new() -> Compiler {
        Compiler::default()
    }

    /// A compiler with explicit options.
    #[must_use]
    pub fn with_options(options: CompileOptions) -> Compiler {
        Compiler { options }
    }

    /// The active options.
    #[must_use]
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Compiles a program into an executable binary.
    ///
    /// # Errors
    ///
    /// Returns an error if the program references undefined names, mixes
    /// types, or exceeds the code generator's expression-depth limit.
    pub fn compile(&self, program: &Program) -> Result<JBinary> {
        // Optimisation pipeline (AST to AST).
        let mut program = program.clone();
        if self.options.parallelize {
            program = parallelize::parallelize(&program, &self.options);
        }
        if self.options.unroll_factor() > 1 {
            program = transform::unroll_program(&program, &self.options);
        }

        let mut asm = AsmBuilder::new();
        asm.set_producer(format!("{} [{}]", self.options.describe(), program.name));

        // Lay out globals.
        let mut globals = HashMap::new();
        for g in &program.globals {
            let addr = emit_global(&mut asm, g);
            globals.insert(
                g.name.clone(),
                GlobalInfo {
                    addr,
                    ty: g.ty,
                    len: g.len,
                },
            );
        }

        // Emit main first so the entry point is the first function, then the
        // remaining functions in declaration order.
        let mut order: Vec<&Function> = Vec::new();
        if let Some(main) = program.function("main") {
            order.push(main);
        }
        for f in &program.functions {
            if f.name != "main" {
                order.push(f);
            }
        }
        for f in &order {
            let mut ctx = FnCtx::new(f, &program, &globals, &self.options);
            ctx.emit_function(&mut asm)?;
        }
        let mut bin = asm.finish_binary("main")?;
        bin.set_producer(format!("{} [{}]", self.options.describe(), program.name));
        Ok(bin)
    }
}

/// Emits a global array's initial data and returns its address.
fn emit_global(asm: &mut AsmBuilder, g: &GlobalArray) -> u64 {
    let mut bytes = Vec::with_capacity(g.len * 8);
    match (&g.init, g.ty) {
        (Init::Zero, _) => bytes.resize(g.len * 8, 0),
        (Init::Iota, Ty::I64 | Ty::Ptr) => {
            for i in 0..g.len {
                bytes.extend_from_slice(&(i as i64).to_le_bytes());
            }
        }
        (Init::Iota, Ty::F64) => {
            for i in 0..g.len {
                bytes.extend_from_slice(&(i as f64).to_bits().to_le_bytes());
            }
        }
        (Init::Pattern { mul, add, modulus }, ty) => {
            let modulus = (*modulus).max(1);
            for i in 0..g.len {
                let v = ((i as i64).wrapping_mul(*mul).wrapping_add(*add)).rem_euclid(modulus);
                match ty {
                    Ty::F64 => bytes.extend_from_slice(
                        &((v as f64) / (modulus as f64)).to_bits().to_le_bytes(),
                    ),
                    _ => bytes.extend_from_slice(&v.to_le_bytes()),
                }
            }
        }
        (Init::ValuesI(vs), _) => {
            for i in 0..g.len {
                bytes.extend_from_slice(&vs.get(i).copied().unwrap_or(0).to_le_bytes());
            }
        }
        (Init::ValuesF(vs), _) => {
            for i in 0..g.len {
                bytes.extend_from_slice(&vs.get(i).copied().unwrap_or(0.0).to_bits().to_le_bytes());
            }
        }
    }
    asm.data_object(g.name.clone(), &bytes)
}

struct FnCtx<'a> {
    func: &'a Function,
    program: &'a Program,
    globals: &'a HashMap<String, GlobalInfo>,
    options: &'a CompileOptions,
    locs: HashMap<String, Loc>,
    used_int_homes: Vec<Reg>,
    used_flt_homes: Vec<Reg>,
    frame_size: i64,
    label_counter: usize,
    break_labels: Vec<String>,
    epilogue_label: String,
    is_main: bool,
}

impl<'a> FnCtx<'a> {
    fn new(
        func: &'a Function,
        program: &'a Program,
        globals: &'a HashMap<String, GlobalInfo>,
        options: &'a CompileOptions,
    ) -> FnCtx<'a> {
        FnCtx {
            func,
            program,
            globals,
            options,
            locs: HashMap::new(),
            used_int_homes: Vec::new(),
            used_flt_homes: Vec::new(),
            frame_size: 0,
            label_counter: 0,
            break_labels: Vec::new(),
            epilogue_label: format!("{}__epilogue", func.name),
            is_main: func.name == "main",
        }
    }

    fn fresh_label(&mut self, kind: &str) -> String {
        self.label_counter += 1;
        format!("{}__{}_{}", self.func.name, kind, self.label_counter)
    }

    fn alloc_stack_slot(&mut self) -> i64 {
        self.frame_size += 8;
        -self.frame_size
    }

    /// Assigns a home to every parameter and local.
    fn allocate_variables(&mut self) {
        let reg_alloc = self.options.register_allocate();
        let mut next_int = 0usize;
        let mut next_flt = 0usize;
        let vars: Vec<(String, Ty)> = self
            .func
            .params
            .iter()
            .chain(self.func.locals.iter())
            .cloned()
            .collect();
        for (name, ty) in vars {
            let loc = if ty.is_float() {
                if reg_alloc && next_flt < FLT_HOMES.len() {
                    let r = FLT_HOMES[next_flt];
                    next_flt += 1;
                    self.used_flt_homes.push(r);
                    Loc::VReg(r)
                } else {
                    Loc::Stack(self.alloc_stack_slot())
                }
            } else if reg_alloc && next_int < INT_HOMES.len() {
                let r = INT_HOMES[next_int];
                next_int += 1;
                self.used_int_homes.push(r);
                Loc::Gpr(r)
            } else {
                Loc::Stack(self.alloc_stack_slot())
            };
            self.locs.insert(name, loc);
        }
    }

    fn loc(&self, name: &str) -> Result<Loc> {
        self.locs
            .get(name)
            .copied()
            .ok_or_else(|| CompileError::UndefinedVariable {
                name: name.to_string(),
                function: self.func.name.clone(),
            })
    }

    fn global(&self, name: &str) -> Result<GlobalInfo> {
        self.globals
            .get(name)
            .copied()
            .ok_or_else(|| CompileError::UndefinedArray {
                name: name.to_string(),
            })
    }

    fn var_type(&self, name: &str) -> Result<Ty> {
        self.func
            .var_type(name)
            .ok_or_else(|| CompileError::UndefinedVariable {
                name: name.to_string(),
                function: self.func.name.clone(),
            })
    }

    /// The scalar type an expression evaluates to.
    fn expr_type(&self, expr: &Expr) -> Result<Ty> {
        Ok(match expr {
            Expr::ConstI(_) | Expr::AddrOfArray(_) | Expr::AddrOfFn(_) => Ty::I64,
            Expr::ConstF(_) => Ty::F64,
            Expr::Var(n) => match self.var_type(n)? {
                Ty::F64 => Ty::F64,
                _ => Ty::I64,
            },
            Expr::Load { array, .. } => {
                if self.global(array)?.ty.is_float() {
                    Ty::F64
                } else {
                    Ty::I64
                }
            }
            // Pointer parameters always point to f64 elements (see the
            // crate-level documentation of the source language).
            Expr::LoadPtr { .. } => Ty::F64,
            Expr::Binary { lhs, .. } => self.expr_type(lhs)?,
            Expr::Cast { to, .. } => *to,
        })
    }

    // ----- operand helpers --------------------------------------------------

    fn int_operand_of_loc(loc: Loc) -> Operand {
        match loc {
            Loc::Gpr(r) => Operand::Reg(r),
            Loc::Stack(off) => Operand::Mem(MemRef::base_disp(Reg::FP, off)),
            Loc::VReg(r) => Operand::Reg(r),
        }
    }

    // ----- expression evaluation --------------------------------------------

    /// Evaluates an integer expression into the integer scratch register with
    /// index `depth`. Returns the register.
    fn eval_int(&mut self, asm: &mut AsmBuilder, expr: &Expr, depth: usize) -> Result<Reg> {
        if depth >= INT_SCRATCH.len() {
            return Err(CompileError::ExpressionTooDeep {
                function: self.func.name.clone(),
            });
        }
        let dst = INT_SCRATCH[depth];
        match expr {
            Expr::ConstI(v) => {
                asm.push(Inst::mov(Operand::reg(dst), Operand::imm(*v)));
            }
            Expr::ConstF(_) => {
                return Err(CompileError::TypeMismatch {
                    context: format!("float constant in integer context in `{}`", self.func.name),
                })
            }
            Expr::Var(n) => {
                let loc = self.loc(n)?;
                match loc {
                    Loc::Gpr(r) => {
                        asm.push(Inst::mov(Operand::reg(dst), Operand::reg(r)));
                    }
                    Loc::Stack(off) => {
                        asm.push(Inst::mov(
                            Operand::reg(dst),
                            Operand::mem(MemRef::base_disp(Reg::FP, off)),
                        ));
                    }
                    Loc::VReg(_) => {
                        return Err(CompileError::TypeMismatch {
                            context: format!("float variable `{n}` used as integer"),
                        })
                    }
                }
            }
            Expr::Load { array, index } => {
                let g = self.global(array)?;
                if g.ty.is_float() {
                    return Err(CompileError::TypeMismatch {
                        context: format!("float array `{array}` loaded as integer"),
                    });
                }
                let mem = self.array_ref(asm, g, index, depth)?;
                asm.push(Inst::mov(Operand::reg(dst), Operand::mem(mem)));
            }
            Expr::LoadPtr { ptr, .. } => {
                return Err(CompileError::TypeMismatch {
                    context: format!("pointer load through `{ptr}` used as integer"),
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                self.eval_int(asm, lhs, depth)?;
                let rhs_operand = self.simple_int_operand(rhs)?;
                let alu = int_binop(*op, &self.func.name)?;
                match rhs_operand {
                    Some(operand) => {
                        asm.push(Inst::alu(alu, Operand::reg(dst), operand));
                    }
                    None => {
                        let rhs_reg = self.eval_int(asm, rhs, depth + 1)?;
                        asm.push(Inst::alu(alu, Operand::reg(dst), Operand::reg(rhs_reg)));
                    }
                }
            }
            Expr::AddrOfArray(name) => {
                let g = self.global(name)?;
                asm.push(Inst::mov(Operand::reg(dst), Operand::imm(g.addr as i64)));
            }
            Expr::AddrOfFn(name) => {
                if self.program.function(name).is_none() {
                    return Err(CompileError::UndefinedFunction { name: name.clone() });
                }
                asm.push_load_label_addr(dst, name.clone());
            }
            Expr::Cast { to: Ty::I64, expr } => {
                let v = self.eval_float(asm, expr, 0)?;
                asm.push(Inst::CvtFloatToInt {
                    dst,
                    src: Operand::reg(v),
                });
            }
            Expr::Cast { to, expr } => {
                let _ = (to, expr);
                return Err(CompileError::TypeMismatch {
                    context: format!("unsupported cast in `{}`", self.func.name),
                });
            }
        }
        Ok(dst)
    }

    /// Returns an operand for simple integer expressions (constants and
    /// register-resident variables) that can be folded directly into the
    /// consuming instruction — this is what produces the compact
    /// `add r10, r4` / `cmp r10, 10000` shapes the analyser expects from
    /// optimised code.
    fn simple_int_operand(&self, expr: &Expr) -> Result<Option<Operand>> {
        if let Some(v) = const_eval_int(expr) {
            return Ok(Some(Operand::imm(v)));
        }
        Ok(match expr {
            Expr::ConstI(v) => Some(Operand::imm(*v)),
            Expr::Var(n) => match self.loc(n)? {
                Loc::Gpr(r) => Some(Operand::reg(r)),
                Loc::Stack(off) => Some(Operand::mem(MemRef::base_disp(Reg::FP, off))),
                Loc::VReg(_) => None,
            },
            _ => None,
        })
    }

    /// Evaluates a floating-point expression into the float scratch register
    /// with index `depth`.
    fn eval_float(&mut self, asm: &mut AsmBuilder, expr: &Expr, depth: usize) -> Result<Reg> {
        if depth >= FLT_SCRATCH.len() {
            return Err(CompileError::ExpressionTooDeep {
                function: self.func.name.clone(),
            });
        }
        let dst = FLT_SCRATCH[depth];
        match expr {
            Expr::ConstF(v) => {
                // Materialise the bit pattern through an integer scratch
                // register, as a real compiler would via a constant pool.
                asm.push(Inst::mov(
                    Operand::reg(INT_SCRATCH[3]),
                    Operand::imm(v.to_bits() as i64),
                ));
                asm.push(Inst::Push {
                    src: Operand::reg(INT_SCRATCH[3]),
                });
                asm.push(Inst::FMov {
                    dst: Operand::reg(dst),
                    src: Operand::mem(MemRef::base(Reg::SP)),
                });
                asm.push(Inst::Pop {
                    dst: Operand::reg(INT_SCRATCH[3]),
                });
            }
            Expr::ConstI(v) => {
                asm.push(Inst::mov(Operand::reg(INT_SCRATCH[3]), Operand::imm(*v)));
                asm.push(Inst::CvtIntToFloat {
                    dst,
                    src: Operand::reg(INT_SCRATCH[3]),
                });
            }
            Expr::Var(n) => match self.loc(n)? {
                Loc::VReg(r) => {
                    asm.push(Inst::FMov {
                        dst: Operand::reg(dst),
                        src: Operand::reg(r),
                    });
                }
                Loc::Stack(off) => {
                    asm.push(Inst::FMov {
                        dst: Operand::reg(dst),
                        src: Operand::mem(MemRef::base_disp(Reg::FP, off)),
                    });
                }
                Loc::Gpr(r) => {
                    asm.push(Inst::CvtIntToFloat {
                        dst,
                        src: Operand::reg(r),
                    });
                }
            },
            Expr::Load { array, index } => {
                let g = self.global(array)?;
                let mem = self.array_ref(asm, g, index, 0)?;
                asm.push(Inst::FMov {
                    dst: Operand::reg(dst),
                    src: Operand::mem(mem),
                });
            }
            Expr::LoadPtr { ptr, index } => {
                let mem = self.ptr_ref(asm, ptr, index, 0)?;
                asm.push(Inst::FMov {
                    dst: Operand::reg(dst),
                    src: Operand::mem(mem),
                });
            }
            Expr::Binary { op, lhs, rhs } => {
                self.eval_float(asm, lhs, depth)?;
                let rhs_reg = self.eval_float(asm, rhs, depth + 1)?;
                let fop = float_binop(*op, &self.func.name)?;
                asm.push(Inst::Fpu {
                    op: fop,
                    dst: Operand::reg(dst),
                    src: Operand::reg(rhs_reg),
                });
            }
            Expr::Cast { to: Ty::F64, expr } => {
                let r = self.eval_int(asm, expr, 0)?;
                asm.push(Inst::CvtIntToFloat {
                    dst,
                    src: Operand::reg(r),
                });
            }
            Expr::Cast { .. } | Expr::AddrOfArray(_) | Expr::AddrOfFn(_) => {
                return Err(CompileError::TypeMismatch {
                    context: format!(
                        "address expression in float context in `{}`",
                        self.func.name
                    ),
                })
            }
        }
        Ok(dst)
    }

    /// Builds a memory reference for `array[index]`, evaluating the index if
    /// it is not a simple variable or constant.
    fn array_ref(
        &mut self,
        asm: &mut AsmBuilder,
        g: GlobalInfo,
        index: &Expr,
        depth: usize,
    ) -> Result<MemRef> {
        match index {
            Expr::ConstI(v) => Ok(MemRef::absolute(g.addr).with_disp(g.addr as i64 + v * 8)),
            Expr::Var(n) => match self.loc(n)? {
                Loc::Gpr(r) => Ok(MemRef {
                    base: None,
                    index: Some(r),
                    scale: 8,
                    disp: g.addr as i64,
                }),
                _ => {
                    let idx = self.eval_int(asm, index, depth)?;
                    Ok(MemRef {
                        base: None,
                        index: Some(idx),
                        scale: 8,
                        disp: g.addr as i64,
                    })
                }
            },
            _ => {
                let idx = self.eval_int(asm, index, depth)?;
                Ok(MemRef {
                    base: None,
                    index: Some(idx),
                    scale: 8,
                    disp: g.addr as i64,
                })
            }
        }
    }

    /// Builds a memory reference for `ptr[index]` where `ptr` is a pointer
    /// variable (base register + scaled index, like compiled C).
    fn ptr_ref(
        &mut self,
        asm: &mut AsmBuilder,
        ptr: &str,
        index: &Expr,
        depth: usize,
    ) -> Result<MemRef> {
        let base_reg = match self.loc(ptr)? {
            Loc::Gpr(r) => r,
            Loc::Stack(off) => {
                // Load the pointer into the last integer scratch register.
                let r = INT_SCRATCH[INT_SCRATCH.len() - 1 - depth.min(1)];
                asm.push(Inst::mov(
                    Operand::reg(r),
                    Operand::mem(MemRef::base_disp(Reg::FP, off)),
                ));
                r
            }
            Loc::VReg(_) => {
                return Err(CompileError::TypeMismatch {
                    context: format!("`{ptr}` is not a pointer"),
                })
            }
        };
        match index {
            Expr::ConstI(v) => Ok(MemRef::base_disp(base_reg, v * 8)),
            Expr::Var(n) => match self.loc(n)? {
                Loc::Gpr(r) => Ok(MemRef::base_index(base_reg, r, 8)),
                _ => {
                    let idx = self.eval_int(asm, index, depth)?;
                    Ok(MemRef::base_index(base_reg, idx, 8))
                }
            },
            _ => {
                let idx = self.eval_int(asm, index, depth)?;
                Ok(MemRef::base_index(base_reg, idx, 8))
            }
        }
    }

    // ----- statements -------------------------------------------------------

    fn emit_function(&mut self, asm: &mut AsmBuilder) -> Result<()> {
        self.allocate_variables();
        asm.function(self.func.name.clone());

        // Prologue.
        if !self.is_main {
            asm.push(Inst::Push {
                src: Operand::reg(Reg::FP),
            });
        }
        asm.push(Inst::mov(Operand::reg(Reg::FP), Operand::reg(Reg::SP)));
        // Reserve the variable frame plus head-room for loop-bound temporaries
        // allocated while the body is being emitted.
        let frame_reserved = self.frame_size + 256;
        asm.push(Inst::alu(
            AluOp::Sub,
            Operand::reg(Reg::SP),
            Operand::imm(frame_reserved),
        ));
        // Save the callee-saved homes we are about to overwrite.
        let saved: Vec<Reg> = self
            .used_int_homes
            .iter()
            .copied()
            .filter(|_| !self.is_main)
            .collect();
        for r in &saved {
            asm.push(Inst::Push {
                src: Operand::reg(*r),
            });
        }
        // Move incoming arguments to their homes.
        let mut int_arg = 0u8;
        let mut flt_arg = 0u8;
        for (name, ty) in self.func.params.clone() {
            let loc = self.loc(&name)?;
            if ty.is_float() {
                let src = Reg::vreg(flt_arg);
                flt_arg += 1;
                match loc {
                    Loc::VReg(r) => {
                        asm.push(Inst::FMov {
                            dst: Operand::reg(r),
                            src: Operand::reg(src),
                        });
                    }
                    Loc::Stack(off) => {
                        asm.push(Inst::FMov {
                            dst: Operand::mem(MemRef::base_disp(Reg::FP, off)),
                            src: Operand::reg(src),
                        });
                    }
                    Loc::Gpr(_) => unreachable!("float parameter in integer register"),
                }
            } else {
                let src = Reg::gpr(int_arg);
                int_arg += 1;
                match loc {
                    Loc::Gpr(r) => {
                        asm.push(Inst::mov(Operand::reg(r), Operand::reg(src)));
                    }
                    Loc::Stack(off) => {
                        asm.push(Inst::mov(
                            Operand::mem(MemRef::base_disp(Reg::FP, off)),
                            Operand::reg(src),
                        ));
                    }
                    Loc::VReg(_) => unreachable!("integer parameter in float register"),
                }
            }
        }

        // Body.
        let body = self.func.body.clone();
        self.emit_block(asm, &body)?;

        // Epilogue.
        asm.label(self.epilogue_label.clone());
        for r in saved.iter().rev() {
            asm.push(Inst::Pop {
                dst: Operand::reg(*r),
            });
        }
        asm.push(Inst::mov(Operand::reg(Reg::SP), Operand::reg(Reg::FP)));
        if self.is_main {
            asm.push(Inst::Halt);
        } else {
            asm.push(Inst::Pop {
                dst: Operand::reg(Reg::FP),
            });
            asm.push(Inst::Ret);
        }
        Ok(())
    }

    fn emit_block(&mut self, asm: &mut AsmBuilder, block: &[Stmt]) -> Result<()> {
        for stmt in block {
            self.emit_stmt(asm, stmt)?;
        }
        Ok(())
    }

    fn emit_stmt(&mut self, asm: &mut AsmBuilder, stmt: &Stmt) -> Result<()> {
        match stmt {
            Stmt::Assign { dst, value } => self.emit_assign(asm, dst, value),
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => self.emit_for(asm, var, start, end, *step, body),
            Stmt::While { cond, body } => self.emit_while(asm, cond, body),
            Stmt::If { cond, then, els } => self.emit_if(asm, cond, then, els),
            Stmt::Call { name, args, ret } => self.emit_call(asm, name, args, ret.as_ref(), false),
            Stmt::CallExt { name, args, ret } => {
                self.emit_call(asm, name, args, ret.as_ref(), true)
            }
            Stmt::CallIndirect { table, index } => self.emit_call_indirect(asm, table, index),
            Stmt::Return(value) => self.emit_return(asm, value.as_ref()),
            Stmt::Print(value) => self.emit_print(asm, value),
            Stmt::Break => {
                let label = self
                    .break_labels
                    .last()
                    .cloned()
                    .expect("break outside of a loop");
                asm.push_jmp(label);
                Ok(())
            }
        }
    }

    fn emit_assign(&mut self, asm: &mut AsmBuilder, dst: &LValue, value: &Expr) -> Result<()> {
        // Accumulation peephole: `x = x op e` is emitted as a single
        // read-modify-write on x's home (`add r4, ...` / `fadd [fp-8], ...`),
        // the shape optimising compilers produce for reductions.
        if let (LValue::Var(name), Expr::Binary { op, lhs, rhs }) = (dst, value) {
            if **lhs == Expr::Var(name.clone()) {
                if let Ok(loc) = self.loc(name) {
                    let is_float = self.var_type(name)?.is_float();
                    let dst_operand = match (loc, is_float) {
                        (Loc::Gpr(r), false) => Some(Operand::reg(r)),
                        (Loc::VReg(r), true) => Some(Operand::reg(r)),
                        (Loc::Stack(off), _) => Some(Operand::mem(MemRef::base_disp(Reg::FP, off))),
                        _ => None,
                    };
                    if let Some(dst_operand) = dst_operand {
                        if is_float {
                            if let Ok(fop) = float_binop(*op, &self.func.name) {
                                let r = self.eval_float(asm, rhs, 0)?;
                                asm.push(Inst::Fpu {
                                    op: fop,
                                    dst: dst_operand,
                                    src: Operand::reg(r),
                                });
                                return Ok(());
                            }
                        } else if let Ok(alu) = int_binop(*op, &self.func.name) {
                            let src = match self.simple_int_operand(rhs)? {
                                Some(op) => op,
                                None => Operand::reg(self.eval_int(asm, rhs, 0)?),
                            };
                            asm.push(Inst::Alu {
                                op: alu,
                                dst: dst_operand,
                                src,
                            });
                            return Ok(());
                        }
                    }
                }
            }
        }
        let value_ty = self.expr_type(value)?;
        if value_ty.is_float() {
            let v = self.eval_float(asm, value, 0)?;
            match dst {
                LValue::Var(n) => match self.loc(n)? {
                    Loc::VReg(r) => {
                        asm.push(Inst::FMov {
                            dst: Operand::reg(r),
                            src: Operand::reg(v),
                        });
                    }
                    Loc::Stack(off) => {
                        asm.push(Inst::FMov {
                            dst: Operand::mem(MemRef::base_disp(Reg::FP, off)),
                            src: Operand::reg(v),
                        });
                    }
                    Loc::Gpr(r) => {
                        asm.push(Inst::CvtFloatToInt {
                            dst: r,
                            src: Operand::reg(v),
                        });
                    }
                },
                LValue::Store { array, index } => {
                    let g = self.global(array)?;
                    let mem = self.array_ref(asm, g, index, 0)?;
                    asm.push(Inst::FMov {
                        dst: Operand::mem(mem),
                        src: Operand::reg(v),
                    });
                }
                LValue::StorePtr { ptr, index } => {
                    let mem = self.ptr_ref(asm, ptr, index, 0)?;
                    asm.push(Inst::FMov {
                        dst: Operand::mem(mem),
                        src: Operand::reg(v),
                    });
                }
            }
        } else {
            let v = self.eval_int(asm, value, 0)?;
            match dst {
                LValue::Var(n) => match self.loc(n)? {
                    Loc::Gpr(r) => {
                        asm.push(Inst::mov(Operand::reg(r), Operand::reg(v)));
                    }
                    Loc::Stack(off) => {
                        asm.push(Inst::mov(
                            Operand::mem(MemRef::base_disp(Reg::FP, off)),
                            Operand::reg(v),
                        ));
                    }
                    Loc::VReg(r) => {
                        asm.push(Inst::CvtIntToFloat {
                            dst: r,
                            src: Operand::reg(v),
                        });
                    }
                },
                LValue::Store { array, index } => {
                    let g = self.global(array)?;
                    let mem = self.array_ref(asm, g, index, 1)?;
                    asm.push(Inst::mov(Operand::mem(mem), Operand::reg(v)));
                }
                LValue::StorePtr { ptr, index } => {
                    let mem = self.ptr_ref(asm, ptr, index, 1)?;
                    asm.push(Inst::mov(Operand::mem(mem), Operand::reg(v)));
                }
            }
        }
        Ok(())
    }

    /// Emits a comparison followed by a conditional branch to `target` taken
    /// when the condition is *false* (the usual compiled-code shape).
    fn emit_cond_branch_false(
        &mut self,
        asm: &mut AsmBuilder,
        cond: &Cond,
        target: &str,
    ) -> Result<()> {
        let float = self.expr_type(&cond.lhs)?.is_float() || self.expr_type(&cond.rhs)?.is_float();
        if float {
            let l = self.eval_float(asm, &cond.lhs, 0)?;
            let r = self.eval_float(asm, &cond.rhs, 1)?;
            asm.push(Inst::FCmp {
                lhs: Operand::reg(l),
                rhs: Operand::reg(r),
            });
        } else {
            let l = self.eval_int(asm, &cond.lhs, 0)?;
            let rhs_operand = self.simple_int_operand(&cond.rhs)?;
            let rhs = match rhs_operand {
                Some(op) => op,
                None => Operand::reg(self.eval_int(asm, &cond.rhs, 1)?),
            };
            asm.push(Inst::cmp(Operand::reg(l), rhs));
        }
        asm.push_branch(cmp_to_cond(cond.op).negate(), target);
        Ok(())
    }

    fn emit_for(
        &mut self,
        asm: &mut AsmBuilder,
        var: &str,
        start: &Expr,
        end: &Expr,
        step: i64,
        body: &[Stmt],
    ) -> Result<()> {
        // Vectorisation of eligible inner loops at -O3 with a vector width.
        if self.options.opt_level == OptLevel::O3
            && self.options.vectorize != Vectorize::None
            && step == 1
        {
            if let Some(plan) = self.vector_plan(var, body) {
                return self.emit_vector_for(asm, var, start, end, body, plan);
            }
        }

        let loop_label = self.fresh_label("loop");
        let done_label = self.fresh_label("loop_done");

        // var = start
        self.emit_assign(asm, &LValue::Var(var.to_string()), start)?;

        // Keep the bound in a well-defined place: a constant or variable is
        // used directly; anything else is evaluated once into a stack slot.
        let bound = match self.simple_int_operand(end)? {
            Some(op) => op,
            None => {
                let v = self.eval_int(asm, end, 0)?;
                let slot = self.alloc_stack_slot();
                asm.push(Inst::mov(
                    Operand::mem(MemRef::base_disp(Reg::FP, slot)),
                    Operand::reg(v),
                ));
                Operand::mem(MemRef::base_disp(Reg::FP, slot))
            }
        };

        let var_loc = self.loc(var)?;
        let var_operand = Self::int_operand_of_loc(var_loc);
        let (guard_cond, back_cond) = if step >= 0 {
            (janus_ir::Cond::Ge, janus_ir::Cond::Lt)
        } else {
            (janus_ir::Cond::Le, janus_ir::Cond::Gt)
        };

        // Guard: skip the loop entirely when it runs zero iterations.
        asm.push(Inst::Cmp {
            lhs: var_operand,
            rhs: bound,
        });
        asm.push_branch(guard_cond, done_label.clone());

        asm.label(loop_label.clone());
        self.break_labels.push(done_label.clone());
        self.emit_block(asm, body)?;
        self.break_labels.pop();

        // Induction update + bottom test.
        asm.push(Inst::Alu {
            op: AluOp::Add,
            dst: var_operand,
            src: Operand::imm(step),
        });
        asm.push(Inst::Cmp {
            lhs: var_operand,
            rhs: bound,
        });
        asm.push_branch(back_cond, loop_label);
        asm.label(done_label);
        Ok(())
    }

    /// Describes a vectorisable loop body: a single float store whose value is
    /// an expression over same-index loads and constants.
    fn vector_plan(&self, var: &str, body: &[Stmt]) -> Option<VectorPlan> {
        if body.len() != 1 {
            return None;
        }
        let Stmt::Assign { dst, value } = &body[0] else {
            return None;
        };
        let dst = match dst {
            LValue::Store { array, index } if *index == Expr::Var(var.to_string()) => {
                VecTarget::Global(array.clone())
            }
            LValue::StorePtr { ptr, index } if *index == Expr::Var(var.to_string()) => {
                VecTarget::Ptr(ptr.clone())
            }
            _ => return None,
        };
        if !self.expr_vectorisable(var, value) {
            return None;
        }
        if self.expr_type(value).ok()? != Ty::F64 {
            return None;
        }
        Some(VectorPlan {
            dst,
            value: value.clone(),
            lanes: self.options.vectorize.lanes(),
        })
    }

    fn expr_vectorisable(&self, var: &str, expr: &Expr) -> bool {
        match expr {
            Expr::ConstF(_) => true,
            Expr::Load { array, index } => {
                *index.as_ref() == Expr::Var(var.to_string())
                    && self.global(array).map(|g| g.ty.is_float()).unwrap_or(false)
            }
            Expr::LoadPtr { index, .. } => *index.as_ref() == Expr::Var(var.to_string()),
            Expr::Binary { op, lhs, rhs } => {
                matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
                    && self.expr_vectorisable(var, lhs)
                    && self.expr_vectorisable(var, rhs)
            }
            _ => false,
        }
    }

    /// Emits the vectorised form: an optional alignment peel loop, a packed
    /// main loop and a scalar remainder loop.
    fn emit_vector_for(
        &mut self,
        asm: &mut AsmBuilder,
        var: &str,
        start: &Expr,
        end: &Expr,
        scalar_body: &[Stmt],
        plan: VectorPlan,
    ) -> Result<()> {
        let lanes = plan.lanes;
        let main_label = self.fresh_label("vloop");
        let main_done = self.fresh_label("vloop_done");
        let peel_label = self.fresh_label("vpeel");
        let peel_done = self.fresh_label("vpeel_done");
        let rem_label = self.fresh_label("vrem");
        let rem_done = self.fresh_label("vrem_done");

        // var = start
        self.emit_assign(asm, &LValue::Var(var.to_string()), start)?;
        // bound in a stack slot (re-used by every sub-loop).
        let bound_slot = self.alloc_stack_slot();
        let bound = Operand::Mem(MemRef::base_disp(Reg::FP, bound_slot));
        let v = self.eval_int(asm, end, 0)?;
        asm.push(Inst::mov(bound, Operand::reg(v)));

        let var_loc = self.loc(var)?;
        let var_operand = Self::int_operand_of_loc(var_loc);

        // Alignment peel (AVX only): run scalar iterations until the index is
        // a multiple of the vector width.
        if matches!(self.options.vectorize, Vectorize::Avx) {
            asm.label(peel_label.clone());
            asm.push(Inst::Cmp {
                lhs: var_operand,
                rhs: bound,
            });
            asm.push_branch(janus_ir::Cond::Ge, peel_done.clone());
            let r = self.eval_int(asm, &Expr::Var(var.to_string()), 0)?;
            asm.push(Inst::alu(
                AluOp::And,
                Operand::reg(r),
                Operand::imm(i64::from(lanes) - 1),
            ));
            asm.push(Inst::Test {
                lhs: Operand::reg(r),
                rhs: Operand::reg(r),
            });
            asm.push_branch(janus_ir::Cond::Eq, peel_done.clone());
            self.break_labels.push(peel_done.clone());
            self.emit_block(asm, scalar_body)?;
            self.break_labels.pop();
            asm.push(Inst::Alu {
                op: AluOp::Add,
                dst: var_operand,
                src: Operand::imm(1),
            });
            asm.push_jmp(peel_label);
            asm.label(peel_done);
        }

        // Main packed loop: while var <= bound - lanes.
        let limit_slot = self.alloc_stack_slot();
        let limit = Operand::Mem(MemRef::base_disp(Reg::FP, limit_slot));
        let r = self.eval_int(asm, end, 0)?;
        asm.push(Inst::alu(
            AluOp::Sub,
            Operand::reg(r),
            Operand::imm(i64::from(lanes) - 1),
        ));
        asm.push(Inst::mov(limit, Operand::reg(r)));

        asm.label(main_label.clone());
        asm.push(Inst::Cmp {
            lhs: var_operand,
            rhs: limit,
        });
        asm.push_branch(janus_ir::Cond::Ge, main_done.clone());
        // Body: evaluate the packed expression into V10 and store it.
        let idx_reg = match var_loc {
            Loc::Gpr(r) => r,
            _ => {
                let r = INT_SCRATCH[0];
                asm.push(Inst::mov(Operand::reg(r), var_operand));
                r
            }
        };
        let result = self.eval_vector(asm, &plan.value, idx_reg, lanes, 0)?;
        let dst_mem = match &plan.dst {
            VecTarget::Global(array) => {
                let g = self.global(array)?;
                MemRef {
                    base: None,
                    index: Some(idx_reg),
                    scale: 8,
                    disp: g.addr as i64,
                }
            }
            VecTarget::Ptr(ptr) => self.ptr_ref(asm, ptr, &Expr::Var(var.to_string()), 1)?,
        };
        asm.push(Inst::VMov {
            dst: Operand::mem(dst_mem),
            src: Operand::reg(result),
            lanes,
        });
        asm.push(Inst::Alu {
            op: AluOp::Add,
            dst: var_operand,
            src: Operand::imm(i64::from(lanes)),
        });
        asm.push_jmp(main_label);
        asm.label(main_done);

        // Scalar remainder loop.
        asm.label(rem_label.clone());
        asm.push(Inst::Cmp {
            lhs: var_operand,
            rhs: bound,
        });
        asm.push_branch(janus_ir::Cond::Ge, rem_done.clone());
        self.break_labels.push(rem_done.clone());
        self.emit_block(asm, scalar_body)?;
        self.break_labels.pop();
        asm.push(Inst::Alu {
            op: AluOp::Add,
            dst: var_operand,
            src: Operand::imm(1),
        });
        asm.push_jmp(rem_label);
        asm.label(rem_done);
        Ok(())
    }

    /// Evaluates a vectorisable expression over `lanes` consecutive elements
    /// starting at index `idx_reg` into a vector scratch register.
    fn eval_vector(
        &mut self,
        asm: &mut AsmBuilder,
        expr: &Expr,
        idx_reg: Reg,
        lanes: u8,
        depth: usize,
    ) -> Result<Reg> {
        if depth + 10 >= 16 {
            return Err(CompileError::ExpressionTooDeep {
                function: self.func.name.clone(),
            });
        }
        let dst = Reg::vreg(10 + depth as u8);
        match expr {
            Expr::ConstF(v) => {
                // Broadcast through memory: push the constant `lanes` times.
                asm.push(Inst::mov(
                    Operand::reg(INT_SCRATCH[3]),
                    Operand::imm(v.to_bits() as i64),
                ));
                for _ in 0..lanes {
                    asm.push(Inst::Push {
                        src: Operand::reg(INT_SCRATCH[3]),
                    });
                }
                asm.push(Inst::VMov {
                    dst: Operand::reg(dst),
                    src: Operand::mem(MemRef::base(Reg::SP)),
                    lanes,
                });
                asm.push(Inst::alu(
                    AluOp::Add,
                    Operand::reg(Reg::SP),
                    Operand::imm(i64::from(lanes) * 8),
                ));
            }
            Expr::Load { array, .. } => {
                let g = self.global(array)?;
                asm.push(Inst::VMov {
                    dst: Operand::reg(dst),
                    src: Operand::mem(MemRef {
                        base: None,
                        index: Some(idx_reg),
                        scale: 8,
                        disp: g.addr as i64,
                    }),
                    lanes,
                });
            }
            Expr::LoadPtr { ptr, .. } => {
                let base = match self.loc(ptr)? {
                    Loc::Gpr(r) => r,
                    _ => {
                        return Err(CompileError::TypeMismatch {
                            context: format!("pointer `{ptr}` must be register resident"),
                        })
                    }
                };
                asm.push(Inst::VMov {
                    dst: Operand::reg(dst),
                    src: Operand::mem(MemRef::base_index(base, idx_reg, 8)),
                    lanes,
                });
            }
            Expr::Binary { op, lhs, rhs } => {
                self.eval_vector(asm, lhs, idx_reg, lanes, depth)?;
                let rhs_reg = self.eval_vector(asm, rhs, idx_reg, lanes, depth + 1)?;
                let fop = float_binop(*op, &self.func.name)?;
                asm.push(Inst::Vec {
                    op: fop,
                    dst,
                    src: Operand::reg(rhs_reg),
                    lanes,
                });
            }
            _ => {
                return Err(CompileError::TypeMismatch {
                    context: "expression is not vectorisable".to_string(),
                })
            }
        }
        Ok(dst)
    }

    fn emit_while(&mut self, asm: &mut AsmBuilder, cond: &Cond, body: &[Stmt]) -> Result<()> {
        let head = self.fresh_label("while");
        let done = self.fresh_label("while_done");
        asm.label(head.clone());
        self.emit_cond_branch_false(asm, cond, &done)?;
        self.break_labels.push(done.clone());
        self.emit_block(asm, body)?;
        self.break_labels.pop();
        asm.push_jmp(head);
        asm.label(done);
        Ok(())
    }

    fn emit_if(
        &mut self,
        asm: &mut AsmBuilder,
        cond: &Cond,
        then: &[Stmt],
        els: &[Stmt],
    ) -> Result<()> {
        let else_label = self.fresh_label("else");
        let end_label = self.fresh_label("endif");
        self.emit_cond_branch_false(asm, cond, &else_label)?;
        self.emit_block(asm, then)?;
        asm.push_jmp(end_label.clone());
        asm.label(else_label);
        self.emit_block(asm, els)?;
        asm.label(end_label);
        Ok(())
    }

    fn emit_call(
        &mut self,
        asm: &mut AsmBuilder,
        name: &str,
        args: &[Expr],
        ret: Option<&LValue>,
        external: bool,
    ) -> Result<()> {
        if !external && self.program.function(name).is_none() {
            return Err(CompileError::UndefinedFunction {
                name: name.to_string(),
            });
        }
        // Evaluate arguments and stage them on the stack, then pop into the
        // argument registers (this avoids clobbering scratch registers while
        // later arguments are evaluated).
        let mut classes = Vec::with_capacity(args.len());
        for arg in args {
            let ty = self.expr_type(arg)?;
            if ty.is_float() {
                let r = self.eval_float(asm, arg, 0)?;
                asm.push(Inst::alu(
                    AluOp::Sub,
                    Operand::reg(Reg::SP),
                    Operand::imm(8),
                ));
                asm.push(Inst::FMov {
                    dst: Operand::mem(MemRef::base(Reg::SP)),
                    src: Operand::reg(r),
                });
            } else {
                let r = self.eval_int(asm, arg, 0)?;
                asm.push(Inst::Push {
                    src: Operand::reg(r),
                });
            }
            classes.push(ty.is_float());
        }
        let int_count = classes.iter().filter(|f| !**f).count();
        let flt_count = classes.len() - int_count;
        if int_count > 4 || flt_count > 4 {
            return Err(CompileError::TooManyArguments {
                function: name.to_string(),
            });
        }
        // Pop in reverse into the correct argument registers.
        let mut int_idx = int_count;
        let mut flt_idx = flt_count;
        for is_float in classes.iter().rev() {
            if *is_float {
                flt_idx -= 1;
                asm.push(Inst::FMov {
                    dst: Operand::reg(Reg::vreg(flt_idx as u8)),
                    src: Operand::mem(MemRef::base(Reg::SP)),
                });
                asm.push(Inst::alu(
                    AluOp::Add,
                    Operand::reg(Reg::SP),
                    Operand::imm(8),
                ));
            } else {
                int_idx -= 1;
                asm.push(Inst::Pop {
                    dst: Operand::reg(Reg::gpr(int_idx as u8)),
                });
            }
        }
        if external {
            asm.push_call_ext(name.to_string());
        } else {
            asm.push_call(name.to_string());
        }
        if let Some(lv) = ret {
            // Results arrive in r0 (integer) or v0 (float).
            let is_float = match lv {
                LValue::Var(n) => self.var_type(n)?.is_float(),
                LValue::Store { array, .. } => self.global(array)?.ty.is_float(),
                LValue::StorePtr { .. } => true,
            };
            if is_float {
                self.store_float_result(asm, lv, Reg::V0)?;
            } else {
                self.store_int_result(asm, lv, Reg::R0)?;
            }
        }
        Ok(())
    }

    fn store_int_result(&mut self, asm: &mut AsmBuilder, lv: &LValue, src: Reg) -> Result<()> {
        match lv {
            LValue::Var(n) => match self.loc(n)? {
                Loc::Gpr(r) => {
                    asm.push(Inst::mov(Operand::reg(r), Operand::reg(src)));
                }
                Loc::Stack(off) => {
                    asm.push(Inst::mov(
                        Operand::mem(MemRef::base_disp(Reg::FP, off)),
                        Operand::reg(src),
                    ));
                }
                Loc::VReg(r) => {
                    asm.push(Inst::CvtIntToFloat {
                        dst: r,
                        src: Operand::reg(src),
                    });
                }
            },
            LValue::Store { array, index } => {
                let g = self.global(array)?;
                let index = index.clone();
                let mem = self.array_ref(asm, g, &index, 1)?;
                asm.push(Inst::mov(Operand::mem(mem), Operand::reg(src)));
            }
            LValue::StorePtr { ptr, index } => {
                let ptr = ptr.clone();
                let index = index.clone();
                let mem = self.ptr_ref(asm, &ptr, &index, 1)?;
                asm.push(Inst::mov(Operand::mem(mem), Operand::reg(src)));
            }
        }
        Ok(())
    }

    fn store_float_result(&mut self, asm: &mut AsmBuilder, lv: &LValue, src: Reg) -> Result<()> {
        match lv {
            LValue::Var(n) => match self.loc(n)? {
                Loc::VReg(r) => {
                    asm.push(Inst::FMov {
                        dst: Operand::reg(r),
                        src: Operand::reg(src),
                    });
                }
                Loc::Stack(off) => {
                    asm.push(Inst::FMov {
                        dst: Operand::mem(MemRef::base_disp(Reg::FP, off)),
                        src: Operand::reg(src),
                    });
                }
                Loc::Gpr(r) => {
                    asm.push(Inst::CvtFloatToInt {
                        dst: r,
                        src: Operand::reg(src),
                    });
                }
            },
            LValue::Store { array, index } => {
                let g = self.global(array)?;
                let index = index.clone();
                let mem = self.array_ref(asm, g, &index, 0)?;
                asm.push(Inst::FMov {
                    dst: Operand::mem(mem),
                    src: Operand::reg(src),
                });
            }
            LValue::StorePtr { ptr, index } => {
                let ptr = ptr.clone();
                let index = index.clone();
                let mem = self.ptr_ref(asm, &ptr, &index, 0)?;
                asm.push(Inst::FMov {
                    dst: Operand::mem(mem),
                    src: Operand::reg(src),
                });
            }
        }
        Ok(())
    }

    fn emit_call_indirect(
        &mut self,
        asm: &mut AsmBuilder,
        table: &str,
        index: &Expr,
    ) -> Result<()> {
        let g = self.global(table)?;
        let mem = self.array_ref(asm, g, index, 0)?;
        asm.push(Inst::mov(Operand::reg(INT_SCRATCH[2]), Operand::mem(mem)));
        asm.push(Inst::CallInd {
            target: Operand::reg(INT_SCRATCH[2]),
        });
        Ok(())
    }

    fn emit_return(&mut self, asm: &mut AsmBuilder, value: Option<&Expr>) -> Result<()> {
        if let Some(v) = value {
            if self.expr_type(v)?.is_float() {
                let r = self.eval_float(asm, v, 0)?;
                asm.push(Inst::FMov {
                    dst: Operand::reg(Reg::V0),
                    src: Operand::reg(r),
                });
            } else {
                let r = self.eval_int(asm, v, 0)?;
                asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::reg(r)));
            }
        }
        asm.push_jmp(self.epilogue_label.clone());
        Ok(())
    }

    fn emit_print(&mut self, asm: &mut AsmBuilder, value: &Expr) -> Result<()> {
        if self.expr_type(value)?.is_float() {
            let r = self.eval_float(asm, value, 0)?;
            asm.push(Inst::FMov {
                dst: Operand::reg(Reg::V0),
                src: Operand::reg(r),
            });
            asm.push(Inst::Syscall {
                num: janus_ir::SyscallNum::WriteFloat.as_u32(),
            });
        } else {
            let r = self.eval_int(asm, value, 0)?;
            asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::reg(r)));
            asm.push(Inst::Syscall {
                num: janus_ir::SyscallNum::WriteInt.as_u32(),
            });
        }
        Ok(())
    }
}

/// A recognised vectorisable loop body.
#[derive(Debug, Clone)]
struct VectorPlan {
    dst: VecTarget,
    value: Expr,
    lanes: u8,
}

#[derive(Debug, Clone)]
enum VecTarget {
    Global(String),
    Ptr(String),
}

/// Folds integer expressions made only of constants, as any optimising
/// compiler would.
fn const_eval_int(expr: &Expr) -> Option<i64> {
    match expr {
        Expr::ConstI(v) => Some(*v),
        Expr::Binary { op, lhs, rhs } => {
            let a = const_eval_int(lhs)?;
            let b = const_eval_int(rhs)?;
            Some(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div if b != 0 => a.wrapping_div(b),
                BinOp::Rem if b != 0 => a.wrapping_rem(b),
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl(b as u32),
                BinOp::Shr => ((a as u64) >> (b as u32 & 63)) as i64,
                _ => return None,
            })
        }
        _ => None,
    }
}

fn int_binop(op: BinOp, function: &str) -> Result<AluOp> {
    Ok(match op {
        BinOp::Add => AluOp::Add,
        BinOp::Sub => AluOp::Sub,
        BinOp::Mul => AluOp::Mul,
        BinOp::Div => AluOp::Div,
        BinOp::Rem => AluOp::Rem,
        BinOp::And => AluOp::And,
        BinOp::Or => AluOp::Or,
        BinOp::Xor => AluOp::Xor,
        BinOp::Shl => AluOp::Shl,
        BinOp::Shr => AluOp::Shr,
        BinOp::Min | BinOp::Max => {
            return Err(CompileError::TypeMismatch {
                context: format!("min/max on integers in `{function}`"),
            })
        }
    })
}

fn float_binop(op: BinOp, function: &str) -> Result<FpuOp> {
    Ok(match op {
        BinOp::Add => FpuOp::Add,
        BinOp::Sub => FpuOp::Sub,
        BinOp::Mul => FpuOp::Mul,
        BinOp::Div => FpuOp::Div,
        BinOp::Min => FpuOp::Min,
        BinOp::Max => FpuOp::Max,
        _ => {
            return Err(CompileError::TypeMismatch {
                context: format!("integer-only operator on floats in `{function}`"),
            })
        }
    })
}

fn cmp_to_cond(op: CmpOp) -> janus_ir::Cond {
    match op {
        CmpOp::Eq => janus_ir::Cond::Eq,
        CmpOp::Ne => janus_ir::Cond::Ne,
        CmpOp::Lt => janus_ir::Cond::Lt,
        CmpOp::Le => janus_ir::Cond::Le,
        CmpOp::Gt => janus_ir::Cond::Gt,
        CmpOp::Ge => janus_ir::Cond::Ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Function, LValue, Program, Stmt, Ty};
    use crate::options::{CompileOptions, OptLevel};
    use janus_vm::{Process, Vm};

    fn run(program: &Program, options: CompileOptions) -> Vm {
        let bin = Compiler::with_options(options).compile(program).unwrap();
        let mut vm = Vm::new(Process::load(&bin).unwrap());
        vm.run().unwrap();
        vm
    }

    fn sum_program(n: i64) -> Program {
        // s = 0; for i in 0..n { a[i] = i; s = s + a[i] }; print s
        Program::builder("sum")
            .global_i64("a", n as usize)
            .function(
                Function::new("main")
                    .local("i", Ty::I64)
                    .local("s", Ty::I64)
                    .body(vec![
                        Stmt::assign(LValue::var("s"), Expr::const_i(0)),
                        Stmt::simple_for(
                            "i",
                            Expr::const_i(0),
                            Expr::const_i(n),
                            vec![
                                Stmt::assign(LValue::store("a", Expr::var("i")), Expr::var("i")),
                                Stmt::assign(
                                    LValue::var("s"),
                                    Expr::add(Expr::var("s"), Expr::load("a", Expr::var("i"))),
                                ),
                            ],
                        ),
                        Stmt::print(Expr::var("s")),
                    ]),
            )
            .build()
    }

    #[test]
    fn sum_loop_computes_correctly_at_every_opt_level() {
        let expected = (0..100).sum::<i64>();
        for opt in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
            let vm = run(&sum_program(100), CompileOptions::opt(opt));
            assert_eq!(vm.output_ints(), &[expected], "opt level {opt:?}");
        }
    }

    #[test]
    fn unrolled_and_vectorised_binaries_produce_identical_results() {
        // b[i] = a[i] * 2.0 + 1.0, then print the sum of b.
        let n = 37i64; // deliberately not a multiple of the vector width
        let program = Program::builder("saxpy")
            .global(crate::ast::GlobalArray {
                name: "a".into(),
                ty: Ty::F64,
                len: n as usize,
                init: crate::ast::Init::Iota,
            })
            .global_f64("b", n as usize)
            .function(
                Function::new("main")
                    .local("i", Ty::I64)
                    .local("s", Ty::F64)
                    .body(vec![
                        Stmt::simple_for(
                            "i",
                            Expr::const_i(0),
                            Expr::const_i(n),
                            vec![Stmt::assign(
                                LValue::store("b", Expr::var("i")),
                                Expr::add(
                                    Expr::mul(Expr::load("a", Expr::var("i")), Expr::const_f(2.0)),
                                    Expr::const_f(1.0),
                                ),
                            )],
                        ),
                        Stmt::assign(LValue::var("s"), Expr::const_f(0.0)),
                        Stmt::simple_for(
                            "i",
                            Expr::const_i(0),
                            Expr::const_i(n),
                            vec![Stmt::assign(
                                LValue::var("s"),
                                Expr::add(Expr::var("s"), Expr::load("b", Expr::var("i"))),
                            )],
                        ),
                        Stmt::print(Expr::var("s")),
                    ]),
            )
            .build();
        let expected: f64 = (0..n).map(|i| i as f64 * 2.0 + 1.0).sum();
        for options in [
            CompileOptions::opt(OptLevel::O0),
            CompileOptions::gcc_o2(),
            CompileOptions::gcc_o3(),
            CompileOptions::gcc_o3_avx(),
            CompileOptions::icc_o3(),
        ] {
            let vm = run(&program, options);
            assert_eq!(vm.output_floats().len(), 1, "{}", options.describe());
            assert!(
                (vm.output_floats()[0] - expected).abs() < 1e-9,
                "{}: got {} want {expected}",
                options.describe(),
                vm.output_floats()[0]
            );
        }
    }

    #[test]
    fn function_calls_pass_arguments_and_return_values() {
        // fn addmul(x, y) -> x * y + 1 ; main prints addmul(6, 7)
        let program = Program::builder("call")
            .function(
                Function::new("addmul")
                    .param("x", Ty::I64)
                    .param("y", Ty::I64)
                    .returns(Ty::I64)
                    .body(vec![Stmt::Return(Some(Expr::add(
                        Expr::mul(Expr::var("x"), Expr::var("y")),
                        Expr::const_i(1),
                    )))]),
            )
            .function(Function::new("main").local("r", Ty::I64).body(vec![
                Stmt::Call {
                    name: "addmul".into(),
                    args: vec![Expr::const_i(6), Expr::const_i(7)],
                    ret: Some(LValue::var("r")),
                },
                Stmt::print(Expr::var("r")),
            ]))
            .build();
        let vm = run(&program, CompileOptions::gcc_o3());
        assert_eq!(vm.output_ints(), &[43]);
    }

    #[test]
    fn external_call_to_sqrt_via_plt() {
        let program = Program::builder("ext")
            .function(Function::new("main").local("x", Ty::F64).body(vec![
                Stmt::call_ext("sqrt", vec![Expr::const_f(81.0)], Some(LValue::var("x"))),
                Stmt::print(Expr::var("x")),
            ]))
            .build();
        let vm = run(&program, CompileOptions::gcc_o3());
        assert_eq!(vm.output_floats(), &[9.0]);
    }

    #[test]
    fn while_if_and_break_control_flow() {
        // Count multiples of 3 below 50, stopping at the first value >= 30.
        let program = Program::builder("cf")
            .function(
                Function::new("main")
                    .local("i", Ty::I64)
                    .local("count", Ty::I64)
                    .body(vec![
                        Stmt::assign(LValue::var("i"), Expr::const_i(0)),
                        Stmt::assign(LValue::var("count"), Expr::const_i(0)),
                        Stmt::While {
                            cond: crate::ast::Cond::new(
                                Expr::var("i"),
                                crate::ast::CmpOp::Lt,
                                Expr::const_i(50),
                            ),
                            body: vec![
                                Stmt::If {
                                    cond: crate::ast::Cond::new(
                                        Expr::var("i"),
                                        crate::ast::CmpOp::Ge,
                                        Expr::const_i(30),
                                    ),
                                    then: vec![Stmt::Break],
                                    els: vec![],
                                },
                                Stmt::If {
                                    cond: crate::ast::Cond::new(
                                        Expr::rem(Expr::var("i"), Expr::const_i(3)),
                                        crate::ast::CmpOp::Eq,
                                        Expr::const_i(0),
                                    ),
                                    then: vec![Stmt::assign(
                                        LValue::var("count"),
                                        Expr::add(Expr::var("count"), Expr::const_i(1)),
                                    )],
                                    els: vec![],
                                },
                                Stmt::assign(
                                    LValue::var("i"),
                                    Expr::add(Expr::var("i"), Expr::const_i(1)),
                                ),
                            ],
                        },
                        Stmt::print(Expr::var("count")),
                    ]),
            )
            .build();
        let vm = run(&program, CompileOptions::gcc_o3());
        // Multiples of 3 in [0, 30): 0,3,...,27 -> 10 values.
        assert_eq!(vm.output_ints(), &[10]);
    }

    #[test]
    fn pointer_parameters_index_like_compiled_c() {
        // kernel(dst, src, n): dst[i] = src[i] + 1.0
        let n = 16usize;
        let program = Program::builder("ptr")
            .global(crate::ast::GlobalArray {
                name: "src".into(),
                ty: Ty::F64,
                len: n,
                init: crate::ast::Init::Iota,
            })
            .global_f64("dst", n)
            .function(
                Function::new("kernel")
                    .param("d", Ty::Ptr)
                    .param("s", Ty::Ptr)
                    .param("n", Ty::I64)
                    .local("i", Ty::I64)
                    .body(vec![Stmt::simple_for(
                        "i",
                        Expr::const_i(0),
                        Expr::var("n"),
                        vec![Stmt::assign(
                            LValue::store_ptr("d", Expr::var("i")),
                            Expr::add(Expr::load_ptr("s", Expr::var("i")), Expr::const_f(1.0)),
                        )],
                    )]),
            )
            .function(Function::new("main").body(vec![
                Stmt::Call {
                    name: "kernel".into(),
                    args: vec![
                        Expr::addr_of("dst"),
                        Expr::addr_of("src"),
                        Expr::const_i(n as i64),
                    ],
                    ret: None,
                },
                Stmt::print(Expr::load("dst", Expr::const_i(5))),
            ]))
            .build();
        let vm = run(&program, CompileOptions::gcc_o3());
        assert_eq!(vm.output_floats(), &[6.0]);
    }

    #[test]
    fn indirect_calls_through_a_function_table() {
        let program = Program::builder("ind")
            .global_i64("table", 2)
            .global_i64("out", 1)
            .function(Function::new("write_one").body(vec![Stmt::assign(
                LValue::store("out", Expr::const_i(0)),
                Expr::const_i(1),
            )]))
            .function(Function::new("write_two").body(vec![Stmt::assign(
                LValue::store("out", Expr::const_i(0)),
                Expr::const_i(2),
            )]))
            .function(Function::new("main").local("i", Ty::I64).body(vec![
                Stmt::assign(
                    LValue::store("table", Expr::const_i(0)),
                    Expr::AddrOfFn("write_one".into()),
                ),
                Stmt::assign(
                    LValue::store("table", Expr::const_i(1)),
                    Expr::AddrOfFn("write_two".into()),
                ),
                Stmt::CallIndirect {
                    table: "table".into(),
                    index: Expr::const_i(1),
                },
                Stmt::print(Expr::load("out", Expr::const_i(0))),
            ]))
            .build();
        let vm = run(&program, CompileOptions::gcc_o3());
        assert_eq!(vm.output_ints(), &[2]);
    }

    #[test]
    fn undefined_names_are_reported() {
        let program = Program::builder("bad")
            .function(Function::new("main").body(vec![Stmt::print(Expr::var("missing"))]))
            .build();
        let err = Compiler::new().compile(&program).unwrap_err();
        assert!(matches!(err, CompileError::UndefinedVariable { .. }));

        let program = Program::builder("bad2")
            .function(Function::new("main").body(vec![Stmt::assign(
                LValue::store("nowhere", Expr::const_i(0)),
                Expr::const_i(1),
            )]))
            .build();
        let err = Compiler::new().compile(&program).unwrap_err();
        assert!(matches!(err, CompileError::UndefinedArray { .. }));
    }

    #[test]
    fn producer_string_records_the_configuration() {
        let bin = Compiler::with_options(CompileOptions::gcc_o3_avx())
            .compile(&sum_program(4))
            .unwrap();
        assert!(bin.producer().contains("-O3"));
        assert!(bin.producer().contains("-mavx"));
        assert!(bin.producer().contains("sum"));
    }

    #[test]
    fn o0_binaries_keep_locals_on_the_stack() {
        let o0 = Compiler::with_options(CompileOptions::opt(OptLevel::O0))
            .compile(&sum_program(8))
            .unwrap();
        let o3 = Compiler::with_options(CompileOptions::gcc_o3())
            .compile(&sum_program(8))
            .unwrap();
        let count_stack = |bin: &janus_ir::JBinary| {
            janus_ir::disassemble(bin)
                .unwrap()
                .iter()
                .filter(|d| {
                    d.inst
                        .mem_read()
                        .map(|m| m.is_stack_relative())
                        .unwrap_or(false)
                        || d.inst
                            .mem_write()
                            .map(|m| m.is_stack_relative())
                            .unwrap_or(false)
                })
                .count()
        };
        assert!(
            count_stack(&o0) > count_stack(&o3),
            "O0 should touch the stack more often than O3"
        );
    }
}
