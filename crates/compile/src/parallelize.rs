//! Compiler auto-parallelisation (`-ftree-parallelize-loops` / `-parallel`).
//!
//! This is the baseline Janus is compared against in Figure 11 of the paper:
//! a conservative source-level auto-paralleliser that outlines provably
//! independent loops into `fn(start, end)` worker functions and calls the
//! `par_for` runtime. Like real compilers it gives up as soon as aliasing is
//! not statically obvious: loops that access arrays through pointer
//! parameters, carry scalar dependences, call functions or perform IO are left
//! sequential.

use crate::ast::{Expr, Function, LValue, Program, Stmt, Ty};
use crate::options::{CompileOptions, Personality};
use std::collections::HashSet;

/// Applies compiler auto-parallelisation to a program.
#[must_use]
pub fn parallelize(program: &Program, options: &CompileOptions) -> Program {
    let mut out = program.clone();
    let mut new_functions = Vec::new();
    let mut counter = 0usize;
    for f in &mut out.functions {
        let body = std::mem::take(&mut f.body);
        f.body = body
            .into_iter()
            .map(|stmt| {
                transform_stmt(
                    stmt,
                    f.name.clone(),
                    options,
                    &mut new_functions,
                    &mut counter,
                )
            })
            .collect();
    }
    out.functions.extend(new_functions);
    out
}

fn transform_stmt(
    stmt: Stmt,
    fn_name: String,
    options: &CompileOptions,
    new_functions: &mut Vec<Function>,
    counter: &mut usize,
) -> Stmt {
    match stmt {
        Stmt::For {
            var,
            start,
            end,
            step,
            body,
        } => {
            if step == 1 && loop_is_parallelisable(&var, &body, options) {
                *counter += 1;
                let worker_name = format!("{fn_name}__par{counter}");
                let worker = Function::new(worker_name.clone())
                    .param("__start", Ty::I64)
                    .param("__end", Ty::I64)
                    .local(var.clone(), Ty::I64)
                    .body(vec![Stmt::For {
                        var: var.clone(),
                        start: Expr::var("__start"),
                        end: Expr::var("__end"),
                        step: 1,
                        body: body.clone(),
                    }]);
                new_functions.push(worker);
                Stmt::CallExt {
                    name: "par_for".to_string(),
                    args: vec![
                        Expr::AddrOfFn(worker_name),
                        start,
                        end,
                        Expr::const_i(i64::from(options.parallel_threads)),
                    ],
                    ret: None,
                }
            } else {
                Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                }
            }
        }
        // Only top-level loops of each function are considered, matching the
        // conservative behaviour of the baseline compilers.
        other => other,
    }
}

/// Decides whether a loop body is provably independent across iterations
/// without any runtime checking.
fn loop_is_parallelisable(var: &str, body: &[Stmt], options: &CompileOptions) -> bool {
    let mut written_arrays = HashSet::new();
    // First pass: collect written arrays and reject disallowed statements.
    for stmt in body {
        match stmt {
            Stmt::Assign { dst, value } => {
                match dst {
                    LValue::Store { array, index } => {
                        if !index_is_loop_var(index, var) {
                            return false;
                        }
                        written_arrays.insert(array.clone());
                    }
                    // Scalar or pointer writes defeat the static analysis.
                    LValue::Var(_) | LValue::StorePtr { .. } => return false,
                }
                if !expr_is_safe(value, var, options) {
                    return false;
                }
            }
            _ => return false,
        }
    }
    // Second pass: any read of a written array must use exactly the loop
    // index (no cross-iteration reuse).
    for stmt in body {
        if let Stmt::Assign { value, .. } = stmt {
            if !reads_of_written_ok(value, var, &written_arrays) {
                return false;
            }
        }
    }
    // The body must reference no scalars other than the induction variable
    // (otherwise the outlined worker could not see them).
    for stmt in body {
        if let Stmt::Assign { dst, value } = stmt {
            let mut vars = Vec::new();
            value.variables(&mut vars);
            if let LValue::Store { index, .. } = dst {
                index.variables(&mut vars);
            }
            if vars.iter().any(|v| v != var) {
                return false;
            }
        }
    }
    true
}

fn index_is_loop_var(index: &Expr, var: &str) -> bool {
    *index == Expr::Var(var.to_string())
}

/// icc additionally accepts reads at small constant offsets from the loop
/// index (it multi-versions internally); gcc only accepts exact-index reads.
fn index_is_acceptable_read(index: &Expr, var: &str, options: &CompileOptions) -> bool {
    if index_is_loop_var(index, var) {
        return true;
    }
    if options.personality == Personality::Icc {
        if let Expr::Binary { op: _, lhs, rhs } = index {
            return index_is_loop_var(lhs, var) && matches!(**rhs, Expr::ConstI(_));
        }
    }
    false
}

fn expr_is_safe(expr: &Expr, var: &str, options: &CompileOptions) -> bool {
    match expr {
        Expr::ConstI(_) | Expr::ConstF(_) => true,
        Expr::Var(n) => n == var,
        Expr::Load { index, .. } => index_is_acceptable_read(index, var, options),
        // Pointer loads have unknown aliasing: the static compiler gives up.
        Expr::LoadPtr { .. } => false,
        Expr::Binary { lhs, rhs, .. } => {
            expr_is_safe(lhs, var, options) && expr_is_safe(rhs, var, options)
        }
        Expr::Cast { expr, .. } => expr_is_safe(expr, var, options),
        Expr::AddrOfArray(_) | Expr::AddrOfFn(_) => false,
    }
}

fn reads_of_written_ok(expr: &Expr, var: &str, written: &HashSet<String>) -> bool {
    match expr {
        Expr::Load { array, index } => !written.contains(array) || index_is_loop_var(index, var),
        Expr::Binary { lhs, rhs, .. } => {
            reads_of_written_ok(lhs, var, written) && reads_of_written_ok(rhs, var, written)
        }
        Expr::Cast { expr, .. } => reads_of_written_ok(expr, var, written),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::GlobalArray;
    use crate::ast::Init;
    use crate::options::CompileOptions;
    use crate::Compiler;
    use janus_vm::{Process, Vm};

    fn elementwise_program(n: usize) -> Program {
        Program::builder("elem")
            .global(GlobalArray {
                name: "a".into(),
                ty: Ty::F64,
                len: n,
                init: Init::Iota,
            })
            .global_f64("b", n)
            .function(Function::new("main").local("i", Ty::I64).body(vec![
                Stmt::simple_for(
                    "i",
                    Expr::const_i(0),
                    Expr::const_i(n as i64),
                    vec![Stmt::assign(
                        LValue::store("b", Expr::var("i")),
                        Expr::mul(Expr::load("a", Expr::var("i")), Expr::const_f(3.0)),
                    )],
                ),
                Stmt::print(Expr::load("b", Expr::const_i(10))),
            ]))
            .build()
    }

    #[test]
    fn independent_loop_is_outlined_and_still_correct() {
        let p = elementwise_program(128);
        let par = parallelize(&p, &CompileOptions::gcc_parallel(4));
        assert_eq!(
            par.functions.len(),
            2,
            "a worker function should have been created"
        );
        assert!(par
            .function("main")
            .unwrap()
            .body
            .iter()
            .any(|s| matches!(s, Stmt::CallExt { name, .. } if name == "par_for")));

        // End-to-end: the parallelised binary computes the same output.
        let bin = Compiler::with_options(CompileOptions::gcc_parallel(4))
            .compile(&p)
            .unwrap();
        let mut vm = Vm::new(Process::load(&bin).unwrap());
        vm.run().unwrap();
        assert_eq!(vm.output_floats(), &[30.0]);
    }

    #[test]
    fn scalar_dependences_prevent_parallelisation() {
        let p = Program::builder("red")
            .global_f64("a", 64)
            .function(
                Function::new("main")
                    .local("i", Ty::I64)
                    .local("s", Ty::F64)
                    .body(vec![Stmt::simple_for(
                        "i",
                        Expr::const_i(0),
                        Expr::const_i(64),
                        vec![Stmt::assign(
                            LValue::var("s"),
                            Expr::add(Expr::var("s"), Expr::load("a", Expr::var("i"))),
                        )],
                    )]),
            )
            .build();
        let out = parallelize(&p, &CompileOptions::gcc_parallel(8));
        assert_eq!(out.functions.len(), 1, "reduction loop must stay serial");
    }

    #[test]
    fn pointer_accesses_prevent_parallelisation() {
        let p = Program::builder("ptr")
            .function(
                Function::new("kernel")
                    .param("d", Ty::Ptr)
                    .param("n", Ty::I64)
                    .local("i", Ty::I64)
                    .body(vec![Stmt::simple_for(
                        "i",
                        Expr::const_i(0),
                        Expr::var("n"),
                        vec![Stmt::assign(
                            LValue::store_ptr("d", Expr::var("i")),
                            Expr::const_f(1.0),
                        )],
                    )]),
            )
            .function(Function::new("main").body(vec![]))
            .build();
        let out = parallelize(&p, &CompileOptions::gcc_parallel(8));
        assert_eq!(out.functions.len(), 2, "no worker should be added");
    }

    #[test]
    fn icc_accepts_constant_offset_reads_gcc_does_not() {
        // b[i] = a[i + 1] (stencil read of an array that is never written).
        let body = vec![Stmt::assign(
            LValue::store("b", Expr::var("i")),
            Expr::load("a", Expr::add(Expr::var("i"), Expr::const_i(1))),
        )];
        assert!(!loop_is_parallelisable(
            "i",
            &body,
            &CompileOptions::gcc_parallel(8)
        ));
        assert!(loop_is_parallelisable(
            "i",
            &body,
            &CompileOptions::icc_parallel(8)
        ));
    }

    #[test]
    fn write_with_shifted_index_is_rejected() {
        let body = vec![Stmt::assign(
            LValue::store("a", Expr::add(Expr::var("i"), Expr::const_i(1))),
            Expr::const_f(0.0),
        )];
        assert!(!loop_is_parallelisable(
            "i",
            &body,
            &CompileOptions::icc_parallel(8)
        ));
    }
}
