//! The source language consumed by the mini compiler.
//!
//! The language is a tiny structured loop/array language — just enough to
//! express the hot kernels of numeric benchmarks (stencils, reductions,
//! element-wise updates, pointer-parameterised kernels) as well as the
//! control-flow shapes that defeat parallelisation (pointer chasing, indirect
//! calls, IO in loops, irregular induction).

/// Scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit signed integer (also used for pointers).
    I64,
    /// 64-bit IEEE float.
    F64,
    /// A pointer to an array of 64-bit elements.
    Ptr,
}

impl Ty {
    /// Returns `true` for floating-point values.
    #[must_use]
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F64)
    }
}

/// Integer and floating-point binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder (integers only).
    Rem,
    /// Bitwise and (integers only).
    And,
    /// Bitwise or (integers only).
    Or,
    /// Bitwise xor (integers only).
    Xor,
    /// Shift left (integers only).
    Shl,
    /// Shift right (integers only).
    Shr,
    /// Minimum (floats only).
    Min,
    /// Maximum (floats only).
    Max,
}

/// Comparison operators used in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer constant.
    ConstI(i64),
    /// Floating-point constant.
    ConstF(f64),
    /// A scalar variable (parameter or local).
    Var(String),
    /// `array[index]` where `array` is a program global.
    Load {
        /// Global array name.
        array: String,
        /// Element index.
        index: Box<Expr>,
    },
    /// `ptr[index]` where `ptr` is a pointer-typed variable.
    LoadPtr {
        /// Pointer variable name.
        ptr: String,
        /// Element index.
        index: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// The address of a global array (pointer value).
    AddrOfArray(String),
    /// The address of a function (used to build indirect-call tables).
    AddrOfFn(String),
    /// Conversion between integer and float.
    Cast {
        /// Target type.
        to: Ty,
        /// Value to convert.
        expr: Box<Expr>,
    },
}

impl Expr {
    /// Integer constant.
    #[must_use]
    pub fn const_i(v: i64) -> Expr {
        Expr::ConstI(v)
    }

    /// Floating-point constant.
    #[must_use]
    pub fn const_f(v: f64) -> Expr {
        Expr::ConstF(v)
    }

    /// Variable reference.
    #[must_use]
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Global array load.
    #[must_use]
    pub fn load(array: impl Into<String>, index: Expr) -> Expr {
        Expr::Load {
            array: array.into(),
            index: Box::new(index),
        }
    }

    /// Pointer load.
    #[must_use]
    pub fn load_ptr(ptr: impl Into<String>, index: Expr) -> Expr {
        Expr::LoadPtr {
            ptr: ptr.into(),
            index: Box::new(index),
        }
    }

    /// Generic binary operation.
    #[must_use]
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `lhs + rhs`.
    ///
    /// These constructors share names with the `std::ops` traits on purpose:
    /// they are associated functions (`Expr::add(a, b)`), the AST-building
    /// vocabulary every workload is written in, not operators on values.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Add, lhs, rhs)
    }

    /// `lhs - rhs`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Sub, lhs, rhs)
    }

    /// `lhs * rhs`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Mul, lhs, rhs)
    }

    /// `lhs / rhs`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn div(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Div, lhs, rhs)
    }

    /// `lhs % rhs`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn rem(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Rem, lhs, rhs)
    }

    /// Address of a global array.
    #[must_use]
    pub fn addr_of(array: impl Into<String>) -> Expr {
        Expr::AddrOfArray(array.into())
    }

    /// Cast to another scalar type.
    #[must_use]
    pub fn cast(to: Ty, expr: Expr) -> Expr {
        Expr::Cast {
            to,
            expr: Box::new(expr),
        }
    }

    /// Returns every variable mentioned by the expression.
    pub fn variables(&self, out: &mut Vec<String>) {
        match self {
            Expr::ConstI(_) | Expr::ConstF(_) | Expr::AddrOfArray(_) | Expr::AddrOfFn(_) => {}
            Expr::Var(n) => out.push(n.clone()),
            Expr::Load { index, .. } => index.variables(out),
            Expr::LoadPtr { ptr, index } => {
                out.push(ptr.clone());
                index.variables(out);
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.variables(out);
                rhs.variables(out);
            }
            Expr::Cast { expr, .. } => expr.variables(out),
        }
    }
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// `array[index]` where `array` is a program global.
    Store {
        /// Global array name.
        array: String,
        /// Element index.
        index: Expr,
    },
    /// `ptr[index]` where `ptr` is a pointer-typed variable.
    StorePtr {
        /// Pointer variable name.
        ptr: String,
        /// Element index.
        index: Expr,
    },
}

impl LValue {
    /// Scalar variable target.
    #[must_use]
    pub fn var(name: impl Into<String>) -> LValue {
        LValue::Var(name.into())
    }

    /// Global array element target.
    #[must_use]
    pub fn store(array: impl Into<String>, index: Expr) -> LValue {
        LValue::Store {
            array: array.into(),
            index,
        }
    }

    /// Pointer element target.
    #[must_use]
    pub fn store_ptr(ptr: impl Into<String>, index: Expr) -> LValue {
        LValue::StorePtr {
            ptr: ptr.into(),
            index,
        }
    }
}

/// A boolean condition `lhs op rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cond {
    /// Left-hand side.
    pub lhs: Expr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: Expr,
}

impl Cond {
    /// Builds a condition.
    #[must_use]
    pub fn new(lhs: Expr, op: CmpOp, rhs: Expr) -> Cond {
        Cond { lhs, op, rhs }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `dst = value`.
    Assign {
        /// Target.
        dst: LValue,
        /// Value.
        value: Expr,
    },
    /// A counted loop `for var in start..end step step { body }`.
    For {
        /// Loop variable (must be a declared `I64` local).
        var: String,
        /// Initial value.
        start: Expr,
        /// Exclusive upper bound.
        end: Expr,
        /// Increment per iteration (may be negative).
        step: i64,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A `while cond { body }` loop.
    While {
        /// Continuation condition.
        cond: Cond,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if cond { then } else { els }`.
    If {
        /// Condition.
        cond: Cond,
        /// Statements executed when the condition holds.
        then: Vec<Stmt>,
        /// Statements executed otherwise.
        els: Vec<Stmt>,
    },
    /// Direct call to another function in the program.
    Call {
        /// Callee name.
        name: String,
        /// Arguments (at most four integers and four floats).
        args: Vec<Expr>,
        /// Where to store the return value, if any.
        ret: Option<LValue>,
    },
    /// Call to an external (shared-library or runtime) function.
    CallExt {
        /// Imported name (e.g. `"pow"`).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Where to store the return value, if any.
        ret: Option<LValue>,
    },
    /// Indirect call through a table of function addresses.
    CallIndirect {
        /// Global array holding function addresses.
        table: String,
        /// Index into the table.
        index: Expr,
    },
    /// Return from the current function.
    Return(Option<Expr>),
    /// Write a value to the simulated output stream (an IO operation).
    Print(Expr),
    /// Leave the innermost loop.
    Break,
}

impl Stmt {
    /// `dst = value`.
    #[must_use]
    pub fn assign(dst: LValue, value: Expr) -> Stmt {
        Stmt::Assign { dst, value }
    }

    /// A unit-stride counted loop.
    #[must_use]
    pub fn simple_for(var: impl Into<String>, start: Expr, end: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            var: var.into(),
            start,
            end,
            step: 1,
            body,
        }
    }

    /// A counted loop with an explicit step.
    #[must_use]
    pub fn step_for(
        var: impl Into<String>,
        start: Expr,
        end: Expr,
        step: i64,
        body: Vec<Stmt>,
    ) -> Stmt {
        Stmt::For {
            var: var.into(),
            start,
            end,
            step,
            body,
        }
    }

    /// Print statement.
    #[must_use]
    pub fn print(value: Expr) -> Stmt {
        Stmt::Print(value)
    }

    /// External call with a scalar result.
    #[must_use]
    pub fn call_ext(name: impl Into<String>, args: Vec<Expr>, ret: Option<LValue>) -> Stmt {
        Stmt::CallExt {
            name: name.into(),
            args,
            ret,
        }
    }
}

/// How a global array's initial contents are produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// All zeros (lives in `.bss`-like storage).
    Zero,
    /// `a[i] = i` (integers) or `a[i] = i as f64` (floats).
    Iota,
    /// `a[i] = (i * mul + add) % modulus` for integers, or the same value
    /// scaled into `[0, 1)` for floats — cheap deterministic pseudo-data.
    Pattern {
        /// Multiplier.
        mul: i64,
        /// Addend.
        add: i64,
        /// Modulus (must be positive).
        modulus: i64,
    },
    /// Explicit values (padded with zeros).
    ValuesI(Vec<i64>),
    /// Explicit floating-point values (padded with zeros).
    ValuesF(Vec<f64>),
}

/// A global array.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalArray {
    /// Name.
    pub name: String,
    /// Element type ([`Ty::I64`] or [`Ty::F64`]).
    pub ty: Ty,
    /// Number of elements.
    pub len: usize,
    /// Initialisation rule.
    pub init: Init,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (`"main"` is the program entry point).
    pub name: String,
    /// Parameters (name, type); integers/pointers and floats are passed in
    /// separate register classes.
    pub params: Vec<(String, Ty)>,
    /// Local variables.
    pub locals: Vec<(String, Ty)>,
    /// Return type, if the function returns a value.
    pub ret: Option<Ty>,
    /// Function body.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Creates an empty function.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            params: Vec::new(),
            locals: Vec::new(),
            ret: None,
            body: Vec::new(),
        }
    }

    /// Adds a parameter.
    #[must_use]
    pub fn param(mut self, name: impl Into<String>, ty: Ty) -> Function {
        self.params.push((name.into(), ty));
        self
    }

    /// Adds a local variable.
    #[must_use]
    pub fn local(mut self, name: impl Into<String>, ty: Ty) -> Function {
        self.locals.push((name.into(), ty));
        self
    }

    /// Sets the return type.
    #[must_use]
    pub fn returns(mut self, ty: Ty) -> Function {
        self.ret = Some(ty);
        self
    }

    /// Sets the body.
    #[must_use]
    pub fn body(mut self, body: Vec<Stmt>) -> Function {
        self.body = body;
        self
    }

    /// The declared type of a parameter or local, if any.
    #[must_use]
    pub fn var_type(&self, name: &str) -> Option<Ty> {
        self.params
            .iter()
            .chain(self.locals.iter())
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
    }
}

/// A whole program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (used for diagnostics and the producer string).
    pub name: String,
    /// Global arrays.
    pub globals: Vec<GlobalArray>,
    /// Functions; exactly one must be called `main`.
    pub functions: Vec<Function>,
}

impl Program {
    /// Starts building a program.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            program: Program {
                name: name.into(),
                globals: Vec::new(),
                functions: Vec::new(),
            },
        }
    }

    /// Finds a function by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a global by name.
    #[must_use]
    pub fn global(&self, name: &str) -> Option<&GlobalArray> {
        self.globals.iter().find(|g| g.name == name)
    }
}

/// Incremental builder for [`Program`].
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Adds a zero-initialised integer array.
    #[must_use]
    pub fn global_i64(mut self, name: impl Into<String>, len: usize) -> Self {
        self.program.globals.push(GlobalArray {
            name: name.into(),
            ty: Ty::I64,
            len,
            init: Init::Zero,
        });
        self
    }

    /// Adds a zero-initialised floating-point array.
    #[must_use]
    pub fn global_f64(mut self, name: impl Into<String>, len: usize) -> Self {
        self.program.globals.push(GlobalArray {
            name: name.into(),
            ty: Ty::F64,
            len,
            init: Init::Zero,
        });
        self
    }

    /// Adds a global array with an explicit initialisation rule.
    #[must_use]
    pub fn global(mut self, array: GlobalArray) -> Self {
        self.program.globals.push(array);
        self
    }

    /// Adds a function.
    #[must_use]
    pub fn function(mut self, function: Function) -> Self {
        self.program.functions.push(function);
        self
    }

    /// Finishes the program.
    ///
    /// # Panics
    ///
    /// Panics if no `main` function was added.
    #[must_use]
    pub fn build(self) -> Program {
        assert!(
            self.program.function("main").is_some(),
            "program `{}` has no main function",
            self.program.name
        );
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_a_program() {
        let p = Program::builder("p")
            .global_i64("a", 10)
            .global_f64("x", 4)
            .function(
                Function::new("main")
                    .local("i", Ty::I64)
                    .body(vec![Stmt::simple_for(
                        "i",
                        Expr::const_i(0),
                        Expr::const_i(10),
                        vec![Stmt::assign(
                            LValue::store("a", Expr::var("i")),
                            Expr::var("i"),
                        )],
                    )]),
            )
            .build();
        assert_eq!(p.globals.len(), 2);
        assert!(p.function("main").is_some());
        assert!(p.global("a").is_some());
        assert!(p.global("zzz").is_none());
    }

    #[test]
    #[should_panic(expected = "no main function")]
    fn build_without_main_panics() {
        let _ = Program::builder("p").build();
    }

    #[test]
    fn function_var_types() {
        let f = Function::new("f")
            .param("p", Ty::Ptr)
            .local("x", Ty::F64)
            .returns(Ty::F64);
        assert_eq!(f.var_type("p"), Some(Ty::Ptr));
        assert_eq!(f.var_type("x"), Some(Ty::F64));
        assert_eq!(f.var_type("missing"), None);
        assert_eq!(f.ret, Some(Ty::F64));
    }

    #[test]
    fn expr_variables_are_collected() {
        let e = Expr::add(
            Expr::load_ptr("p", Expr::var("i")),
            Expr::mul(Expr::var("j"), Expr::const_i(3)),
        );
        let mut vars = Vec::new();
        e.variables(&mut vars);
        assert_eq!(
            vars,
            vec!["p".to_string(), "i".to_string(), "j".to_string()]
        );
    }

    #[test]
    fn expression_helpers_build_expected_shapes() {
        assert_eq!(
            Expr::add(Expr::const_i(1), Expr::const_i(2)),
            Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::ConstI(1)),
                rhs: Box::new(Expr::ConstI(2)),
            }
        );
        assert!(Ty::F64.is_float());
        assert!(!Ty::I64.is_float());
    }
}
