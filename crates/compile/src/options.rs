//! Compiler configuration: optimisation level, vectorisation and personality.

/// Optimisation level, mirroring the gcc/icc levels used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// No optimisation: every local lives on the stack.
    O0,
    /// Scalars are register-allocated.
    O2,
    /// `-O2` plus inner-loop unrolling (and SSE-style vectorisation when a
    /// [`Vectorize`] width is selected).
    #[default]
    O3,
}

/// Vectorisation width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Vectorize {
    /// No vector instructions.
    #[default]
    None,
    /// 2-lane (SSE-like) packed doubles.
    Sse,
    /// 4-lane (AVX-like) packed doubles, with alignment peeling.
    Avx,
}

impl Vectorize {
    /// Number of `f64` lanes processed per vector instruction (1 = scalar).
    #[must_use]
    pub fn lanes(self) -> u8 {
        match self {
            Vectorize::None => 1,
            Vectorize::Sse => 2,
            Vectorize::Avx => 4,
        }
    }
}

/// Compiler personality: mimics the stylistic differences between gcc and icc
/// binaries observed in the paper (icc unrolls more and vectorises more
/// aggressively, producing fewer iterations per thread for Janus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Personality {
    /// gcc-like: unroll by 2 at `-O3`, vectorise only when asked.
    #[default]
    Gcc,
    /// icc-like: unroll by 4 at `-O3` and vectorise whenever profitable.
    Icc,
}

/// The full compiler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Optimisation level.
    pub opt_level: OptLevel,
    /// Vectorisation width.
    pub vectorize: Vectorize,
    /// Compiler personality.
    pub personality: Personality,
    /// Enable compiler auto-parallelisation (`-ftree-parallelize-loops` /
    /// `-parallel`); parallelised loops call the `par_for` runtime.
    pub parallelize: bool,
    /// Number of threads auto-parallelised loops ask the runtime for.
    pub parallel_threads: u32,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            opt_level: OptLevel::O3,
            vectorize: Vectorize::None,
            personality: Personality::Gcc,
            parallelize: false,
            parallel_threads: 8,
        }
    }
}

impl CompileOptions {
    /// Options with the given optimisation level and every other field at its
    /// default value.
    #[must_use]
    pub fn opt(opt_level: OptLevel) -> CompileOptions {
        CompileOptions {
            opt_level,
            ..CompileOptions::default()
        }
    }

    /// The configuration used for the paper's main evaluation binaries:
    /// `gcc -O3`.
    #[must_use]
    pub fn gcc_o3() -> CompileOptions {
        CompileOptions::default()
    }

    /// `gcc -O2`.
    #[must_use]
    pub fn gcc_o2() -> CompileOptions {
        CompileOptions::opt(OptLevel::O2)
    }

    /// `gcc -O3 -mavx`.
    #[must_use]
    pub fn gcc_o3_avx() -> CompileOptions {
        CompileOptions {
            vectorize: Vectorize::Avx,
            ..CompileOptions::default()
        }
    }

    /// `icc -O3`.
    #[must_use]
    pub fn icc_o3() -> CompileOptions {
        CompileOptions {
            personality: Personality::Icc,
            vectorize: Vectorize::Sse,
            ..CompileOptions::default()
        }
    }

    /// `gcc -O3 -ftree-parallelize-loops=N -floop-parallelize-all`.
    #[must_use]
    pub fn gcc_parallel(threads: u32) -> CompileOptions {
        CompileOptions {
            parallelize: true,
            parallel_threads: threads,
            ..CompileOptions::default()
        }
    }

    /// `icc -O3 -parallel`.
    #[must_use]
    pub fn icc_parallel(threads: u32) -> CompileOptions {
        CompileOptions {
            parallelize: true,
            parallel_threads: threads,
            ..CompileOptions::icc_o3()
        }
    }

    /// The inner-loop unroll factor implied by this configuration.
    #[must_use]
    pub fn unroll_factor(&self) -> usize {
        match (self.opt_level, self.personality) {
            (OptLevel::O0 | OptLevel::O2, _) => 1,
            (OptLevel::O3, Personality::Gcc) => 2,
            (OptLevel::O3, Personality::Icc) => 4,
        }
    }

    /// Whether scalars should be register-allocated.
    #[must_use]
    pub fn register_allocate(&self) -> bool {
        !matches!(self.opt_level, OptLevel::O0)
    }

    /// A short human-readable description (used as the binary's producer
    /// string, e.g. `"jcc -O3 -mavx (gcc)"`).
    #[must_use]
    pub fn describe(&self) -> String {
        let mut s = String::from("jcc ");
        s.push_str(match self.opt_level {
            OptLevel::O0 => "-O0",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
        });
        match self.vectorize {
            Vectorize::None => {}
            Vectorize::Sse => s.push_str(" -msse"),
            Vectorize::Avx => s.push_str(" -mavx"),
        }
        if self.parallelize {
            s.push_str(&format!(" -parallelize={}", self.parallel_threads));
        }
        s.push_str(match self.personality {
            Personality::Gcc => " (gcc)",
            Personality::Icc => " (icc)",
        });
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unroll_factors_follow_personality() {
        assert_eq!(CompileOptions::gcc_o2().unroll_factor(), 1);
        assert_eq!(CompileOptions::gcc_o3().unroll_factor(), 2);
        assert_eq!(CompileOptions::icc_o3().unroll_factor(), 4);
        assert_eq!(CompileOptions::opt(OptLevel::O0).unroll_factor(), 1);
    }

    #[test]
    fn lanes_by_width() {
        assert_eq!(Vectorize::None.lanes(), 1);
        assert_eq!(Vectorize::Sse.lanes(), 2);
        assert_eq!(Vectorize::Avx.lanes(), 4);
    }

    #[test]
    fn describe_mentions_flags() {
        let d = CompileOptions::gcc_o3_avx().describe();
        assert!(d.contains("-O3") && d.contains("-mavx") && d.contains("gcc"));
        let d = CompileOptions::icc_parallel(8).describe();
        assert!(d.contains("parallelize=8") && d.contains("icc"));
    }

    #[test]
    fn o0_disables_register_allocation() {
        assert!(!CompileOptions::opt(OptLevel::O0).register_allocate());
        assert!(CompileOptions::gcc_o3().register_allocate());
    }
}
