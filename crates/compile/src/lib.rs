//! # janus-compile — the mini optimising compiler
//!
//! Janus operates on *compiler-optimised binaries*; the difficulty of its
//! static analysis comes from what optimising compilers do to loops (register
//! allocation, unrolling, peeling, vectorisation). Since neither gcc nor icc
//! can target the Janus Virtual Architecture, this crate provides the stand-in
//! compiler: a small loop/array language ([`ast`]) that is lowered to JVA
//! machine code with a configurable optimisation pipeline ([`CompileOptions`]).
//!
//! Supported pipeline features, mirroring the compiler configurations used in
//! the paper's evaluation:
//!
//! * `-O0` (all locals on the stack), `-O2` (register allocation),
//!   `-O3` (`-O2` + inner-loop unrolling),
//! * SSE-like (2-lane) and AVX-like (4-lane) vectorisation with scalar
//!   remainder loops (`-O3 -mavx`),
//! * a *gcc* and an *icc* personality (icc unrolls and vectorises more
//!   aggressively),
//! * `-parallelize`: conservative compiler auto-parallelisation that outlines
//!   provably independent loops and calls the `par_for` runtime, the baseline
//!   of Figure 11.
//!
//! # Example
//!
//! ```
//! use janus_compile::{ast, CompileOptions, Compiler, OptLevel};
//!
//! // for i in 0..100 { a[i] = i * 2 }  then print a[7]
//! let program = ast::Program::builder("double")
//!     .global_i64("a", 100)
//!     .function(
//!         ast::Function::new("main")
//!             .local("i", ast::Ty::I64)
//!             .body(vec![
//!                 ast::Stmt::simple_for(
//!                     "i",
//!                     ast::Expr::const_i(0),
//!                     ast::Expr::const_i(100),
//!                     vec![ast::Stmt::assign(
//!                         ast::LValue::store("a", ast::Expr::var("i")),
//!                         ast::Expr::mul(ast::Expr::var("i"), ast::Expr::const_i(2)),
//!                     )],
//!                 ),
//!                 ast::Stmt::print(ast::Expr::load("a", ast::Expr::const_i(7))),
//!             ]),
//!     )
//!     .build();
//! let binary = Compiler::with_options(CompileOptions::opt(OptLevel::O2))
//!     .compile(&program)
//!     .expect("compiles");
//! assert!(binary.num_instructions() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
mod codegen;
mod error;
mod options;
mod parallelize;
mod transform;

pub use codegen::Compiler;
pub use error::{CompileError, Result};
pub use options::{CompileOptions, OptLevel, Personality, Vectorize};
