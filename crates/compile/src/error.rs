//! Errors produced by the mini compiler.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CompileError>;

/// Errors raised while lowering a program to JVA machine code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// A variable was referenced that is neither a parameter nor a local.
    UndefinedVariable {
        /// The variable name.
        name: String,
        /// The enclosing function.
        function: String,
    },
    /// An array was referenced that is not a program global.
    UndefinedArray {
        /// The array name.
        name: String,
    },
    /// A function was called that does not exist in the program.
    UndefinedFunction {
        /// The function name.
        name: String,
    },
    /// An expression mixes integer and floating-point values without a cast.
    TypeMismatch {
        /// Description of the offending context.
        context: String,
    },
    /// Too many arguments for the calling convention (max 4 per class).
    TooManyArguments {
        /// The function being called.
        function: String,
    },
    /// The expression nests deeper than the scratch register pool allows.
    ExpressionTooDeep {
        /// The enclosing function.
        function: String,
    },
    /// The backend failed to assemble the generated code.
    Assembly {
        /// The underlying assembler error, formatted.
        reason: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UndefinedVariable { name, function } => {
                write!(f, "undefined variable `{name}` in function `{function}`")
            }
            CompileError::UndefinedArray { name } => write!(f, "undefined array `{name}`"),
            CompileError::UndefinedFunction { name } => write!(f, "undefined function `{name}`"),
            CompileError::TypeMismatch { context } => write!(f, "type mismatch in {context}"),
            CompileError::TooManyArguments { function } => {
                write!(f, "too many arguments in call to `{function}`")
            }
            CompileError::ExpressionTooDeep { function } => {
                write!(f, "expression too deep in function `{function}`")
            }
            CompileError::Assembly { reason } => write!(f, "assembly failed: {reason}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<janus_ir::IrError> for CompileError {
    fn from(e: janus_ir::IrError) -> Self {
        CompileError::Assembly {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_names() {
        let e = CompileError::UndefinedVariable {
            name: "x".into(),
            function: "main".into(),
        };
        assert!(e.to_string().contains('x'));
        assert!(e.to_string().contains("main"));
    }

    #[test]
    fn from_ir_error() {
        let e: CompileError = janus_ir::IrError::UndefinedLabel {
            label: "loop".into(),
        }
        .into();
        assert!(matches!(e, CompileError::Assembly { .. }));
    }
}
