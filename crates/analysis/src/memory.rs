//! Symbolic memory-access analysis and range propagation.
//!
//! Every explicit memory access inside a loop is abstracted into an
//! [`AccessPattern`] expressed in terms of the loop's induction variable and
//! loop-invariant base registers. The paper does this by canonicalising each
//! address into a symbolic polynomial over the SSA graph; here the same
//! result is obtained with a per-block symbolic evaluation that tracks how
//! scratch registers are computed from the induction variable (so that the
//! offset copies produced by unrolling, `a[i+1]`, `a[i+2]`, …, are still
//! recognised as affine walks). When the loop's trip count is known, the
//! range of addresses touched by an access can be computed and compared with
//! other accesses — this is the information behind both the static alias
//! analysis and the `MEM_BOUNDS_CHECK` runtime checks of the paper.

use crate::cfg::FunctionCfg;
use crate::induction::{InductionVar, VarRef};
use crate::loops::NaturalLoop;
use janus_ir::{AluOp, Inst, MemRef, Operand, Reg};
use std::collections::{HashMap, HashSet};

/// The base object an affine access walks over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressBase {
    /// A statically known data address (a global array).
    Global(u64),
    /// A loop-invariant register holding an array base (e.g. a pointer
    /// parameter); its value is unknown statically.
    Reg(Reg),
}

/// The per-iteration addressing behaviour of one memory access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// `base + induction * scale + offset` — a strided array walk.
    Affine {
        /// Base object.
        base: AddressBase,
        /// Stride in bytes per induction-variable increment.
        scale: i64,
        /// Constant byte offset from the base.
        offset: i64,
    },
    /// The same address every iteration (scalar in memory, e.g. a reduction
    /// accumulator or a read-only operand).
    Invariant {
        /// Base object.
        base: AddressBase,
        /// Constant byte offset from the base.
        offset: i64,
    },
    /// A stack slot relative to the frame pointer (a named local variable).
    StackSlot {
        /// Frame-pointer-relative offset.
        offset: i64,
    },
    /// A transient stack-pointer-relative access used to stage call arguments
    /// or materialise constants; always written and consumed within a single
    /// iteration, so it never carries a dependence.
    Spill,
    /// The access could not be expressed in terms of the induction variable
    /// and loop-invariant bases.
    Unknown,
}

/// One memory access within a loop.
#[derive(Debug, Clone, PartialEq)]
pub struct MemAccess {
    /// Address of the accessing instruction.
    pub addr: u64,
    /// `true` for stores, `false` for loads.
    pub is_write: bool,
    /// The raw memory operand.
    pub mem: MemRef,
    /// Bytes transferred.
    pub width: u64,
    /// The recognised addressing pattern.
    pub pattern: AccessPattern,
}

impl MemAccess {
    /// The address range `[lo, hi)` touched over the whole loop, when it can
    /// be bounded statically. `trip_count` is the loop's trip count and
    /// `step` the induction step.
    #[must_use]
    pub fn static_range(&self, trip_count: Option<u64>, step: i64) -> Option<(u64, u64)> {
        match self.pattern {
            AccessPattern::Affine {
                base: AddressBase::Global(g),
                scale,
                offset,
            } => {
                let trips = trip_count?;
                let start = g as i64 + offset;
                let span = (trips as i64 - 1).max(0) * scale * step;
                let (lo, hi) = if span >= 0 {
                    (start, start + span)
                } else {
                    (start + span, start)
                };
                Some((lo as u64, (hi + self.width as i64) as u64))
            }
            AccessPattern::Invariant {
                base: AddressBase::Global(g),
                offset,
            } => {
                let lo = (g as i64 + offset) as u64;
                Some((lo, lo + self.width))
            }
            _ => None,
        }
    }
}

/// Registers whose values do not change inside the loop.
#[must_use]
pub fn invariant_regs(func: &FunctionCfg, nl: &NaturalLoop) -> HashSet<Reg> {
    let mut written: HashSet<Reg> = HashSet::new();
    for &bid in &nl.blocks {
        for d in &func.blocks[bid].insts {
            for r in d.inst.writes() {
                written.insert(r);
            }
        }
    }
    Reg::all().filter(|r| !written.contains(r)).collect()
}

/// The symbolic value of a general-purpose register at one program point,
/// relative to the loop's induction variable.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SymVal {
    /// `coeff * induction + constant`.
    Lin {
        /// Multiplier of the induction variable.
        coeff: i64,
        /// Constant term.
        konst: i64,
    },
    /// `value(base) + constant` where `base` is loop-invariant.
    InvariantPlus {
        /// The invariant register.
        base: Reg,
        /// Constant term.
        konst: i64,
    },
    /// Anything else.
    Unknown,
}

/// Collects and classifies every explicit memory access inside a loop.
#[must_use]
pub fn collect_accesses(
    func: &FunctionCfg,
    nl: &NaturalLoop,
    induction: Option<&InductionVar>,
) -> Vec<MemAccess> {
    let invariant = invariant_regs(func, nl);
    let ind_reg = induction.and_then(|iv| match iv.var {
        VarRef::Reg(r) => Some(r),
        _ => None,
    });
    let mut out = Vec::new();
    for &bid in &nl.blocks {
        // Per-block symbolic state for scratch registers.
        let mut state: HashMap<Reg, SymVal> = HashMap::new();
        let resolve = |state: &HashMap<Reg, SymVal>, r: Reg| -> SymVal {
            if Some(r) == ind_reg {
                SymVal::Lin { coeff: 1, konst: 0 }
            } else if let Some(v) = state.get(&r) {
                *v
            } else if invariant.contains(&r) && r != Reg::FP && r != Reg::SP {
                SymVal::InvariantPlus { base: r, konst: 0 }
            } else {
                SymVal::Unknown
            }
        };
        for d in &func.blocks[bid].insts {
            // Classify memory operands using the state *before* this
            // instruction updates it.
            if !matches!(
                d.inst,
                Inst::Push { .. } | Inst::Pop { .. } | Inst::Call { .. } | Inst::Ret
            ) {
                let width = d.inst.access_width().max(8);
                if let Some(m) = d.inst.mem_read() {
                    out.push(MemAccess {
                        addr: d.addr,
                        is_write: false,
                        mem: m,
                        width,
                        pattern: pattern_with_state(&m, ind_reg, &invariant, &state, &resolve),
                    });
                }
                if let Some(m) = d.inst.mem_write() {
                    out.push(MemAccess {
                        addr: d.addr,
                        is_write: true,
                        mem: m,
                        width,
                        pattern: pattern_with_state(&m, ind_reg, &invariant, &state, &resolve),
                    });
                }
            }
            step_symbolic_state(&d.inst, ind_reg, &mut state, &resolve);
        }
    }
    out
}

fn step_symbolic_state(
    inst: &Inst,
    ind_reg: Option<Reg>,
    state: &mut HashMap<Reg, SymVal>,
    resolve: &dyn Fn(&HashMap<Reg, SymVal>, Reg) -> SymVal,
) {
    match inst {
        Inst::Mov {
            dst: Operand::Reg(d),
            src,
        } if d.is_gpr() => {
            let v = match src {
                Operand::Imm(v) => SymVal::Lin {
                    coeff: 0,
                    konst: *v,
                },
                Operand::Reg(s) if s.is_gpr() => resolve(state, *s),
                _ => SymVal::Unknown,
            };
            state.insert(*d, v);
        }
        Inst::Lea { dst, mem } if dst.is_gpr() => {
            // lea dst, [base + index*scale + disp]
            let mut val = SymVal::Lin {
                coeff: 0,
                konst: mem.disp,
            };
            if let Some(b) = mem.base {
                val = sym_add(val, resolve(state, b));
            }
            if let Some(i) = mem.index {
                val = sym_add(val, sym_mul(resolve(state, i), i64::from(mem.scale)));
            }
            state.insert(*dst, val);
        }
        Inst::Alu {
            op,
            dst: Operand::Reg(d),
            src,
        } if d.is_gpr() => {
            let cur = resolve(state, *d);
            let rhs = match src {
                Operand::Imm(v) => Some(SymVal::Lin {
                    coeff: 0,
                    konst: *v,
                }),
                Operand::Reg(s) if s.is_gpr() => Some(resolve(state, *s)),
                _ => None,
            };
            let new = match (op, rhs) {
                (AluOp::Add, Some(r)) => sym_add(cur, r),
                (AluOp::Sub, Some(r)) => sym_add(cur, sym_mul(r, -1)),
                (AluOp::Mul, Some(SymVal::Lin { coeff: 0, konst })) => sym_mul(cur, konst),
                (AluOp::Shl, Some(SymVal::Lin { coeff: 0, konst })) if (0..63).contains(&konst) => {
                    sym_mul(cur, 1i64 << konst)
                }
                _ => SymVal::Unknown,
            };
            state.insert(*d, new);
        }
        _ => {
            for w in inst.writes() {
                if w.is_gpr() {
                    state.insert(w, SymVal::Unknown);
                }
            }
        }
    }
    // The induction register itself always resolves through `resolve`, even if
    // updated; remove any stale entry so later uses see the canonical value.
    if let Some(ind) = ind_reg {
        if let Some(SymVal::Lin { coeff: 1, konst }) = state.get(&ind).copied() {
            // `ind += step` keeps it linear; treat the post-update value as the
            // canonical induction value again (offset copies within one
            // iteration are what matter for addressing).
            let _ = konst;
            state.remove(&ind);
        }
    }
}

fn sym_add(a: SymVal, b: SymVal) -> SymVal {
    match (a, b) {
        (
            SymVal::Lin {
                coeff: c1,
                konst: k1,
            },
            SymVal::Lin {
                coeff: c2,
                konst: k2,
            },
        ) => SymVal::Lin {
            coeff: c1 + c2,
            konst: k1 + k2,
        },
        (SymVal::InvariantPlus { base, konst }, SymVal::Lin { coeff: 0, konst: k })
        | (SymVal::Lin { coeff: 0, konst: k }, SymVal::InvariantPlus { base, konst }) => {
            SymVal::InvariantPlus {
                base,
                konst: konst + k,
            }
        }
        _ => SymVal::Unknown,
    }
}

fn sym_mul(a: SymVal, m: i64) -> SymVal {
    match a {
        SymVal::Lin { coeff, konst } => SymVal::Lin {
            coeff: coeff * m,
            konst: konst * m,
        },
        _ => SymVal::Unknown,
    }
}

/// Classifies one memory operand using the current symbolic register state.
fn pattern_with_state(
    m: &MemRef,
    ind_reg: Option<Reg>,
    invariant: &HashSet<Reg>,
    state: &HashMap<Reg, SymVal>,
    resolve: &dyn Fn(&HashMap<Reg, SymVal>, Reg) -> SymVal,
) -> AccessPattern {
    // Stack accesses are classified structurally.
    if m.base == Some(Reg::SP) && m.index.is_none() {
        return AccessPattern::Spill;
    }
    if (m.base == Some(Reg::FP) || m.base == Some(Reg::SP)) && m.index.is_none() {
        return AccessPattern::StackSlot { offset: m.disp };
    }
    if m.base == Some(Reg::FP) && m.index.is_some() {
        return AccessPattern::Unknown;
    }

    // Accumulate the address as base? + coeff*induction + constant.
    let mut base_reg: Option<Reg> = None;
    let mut coeff: i64 = 0;
    let mut konst: i64 = m.disp;
    let mut unknown = false;

    let absorb = |val: SymVal,
                  mult: i64,
                  base_reg: &mut Option<Reg>,
                  unknown: &mut bool,
                  coeff: &mut i64,
                  konst: &mut i64| {
        match val {
            SymVal::Lin { coeff: c, konst: k } => {
                *coeff += c * mult;
                *konst += k * mult;
            }
            SymVal::InvariantPlus { base, konst: k } => {
                if mult != 1 || base_reg.is_some() {
                    *unknown = true;
                } else {
                    *base_reg = Some(base);
                    *konst += k;
                }
            }
            SymVal::Unknown => *unknown = true,
        }
    };

    if let Some(b) = m.base {
        if b == Reg::FP || b == Reg::SP {
            return AccessPattern::Unknown;
        }
        absorb(
            resolve(state, b),
            1,
            &mut base_reg,
            &mut unknown,
            &mut coeff,
            &mut konst,
        );
    }
    if let Some(i) = m.index {
        absorb(
            resolve(state, i),
            i64::from(m.scale),
            &mut base_reg,
            &mut unknown,
            &mut coeff,
            &mut konst,
        );
    }
    let _ = (ind_reg, invariant);
    if unknown {
        return AccessPattern::Unknown;
    }
    let base = match base_reg {
        Some(r) => AddressBase::Reg(r),
        None => AddressBase::Global(konst as u64),
    };
    let offset = match base {
        AddressBase::Global(_) => 0,
        AddressBase::Reg(_) => konst,
    };
    if coeff == 0 {
        AccessPattern::Invariant { base, offset }
    } else {
        AccessPattern::Affine {
            base,
            scale: coeff,
            offset,
        }
    }
}

/// Classifies one memory operand against the induction register and the
/// loop-invariant register set, without any surrounding-block context.
///
/// This is the simple structural classification; [`collect_accesses`] uses a
/// richer per-block symbolic evaluation that additionally understands scratch
/// registers derived from the induction variable.
#[must_use]
pub fn classify_pattern(
    m: &MemRef,
    induction: Option<Reg>,
    invariant: &HashSet<Reg>,
) -> AccessPattern {
    let state: HashMap<Reg, SymVal> = HashMap::new();
    let resolve = |s: &HashMap<Reg, SymVal>, r: Reg| -> SymVal {
        if Some(r) == induction {
            SymVal::Lin { coeff: 1, konst: 0 }
        } else if let Some(v) = s.get(&r) {
            *v
        } else if invariant.contains(&r) && r != Reg::FP && r != Reg::SP {
            SymVal::InvariantPlus { base: r, konst: 0 }
        } else {
            SymVal::Unknown
        }
    };
    pattern_with_state(m, induction, invariant, &state, &resolve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_ir::{MemRef, Operand};

    fn inv(regs: &[Reg]) -> HashSet<Reg> {
        regs.iter().copied().collect()
    }

    #[test]
    fn global_affine_access() {
        let m = MemRef {
            base: None,
            index: Some(Reg::R4),
            scale: 8,
            disp: 0x600100,
        };
        let p = classify_pattern(&m, Some(Reg::R4), &inv(&[]));
        assert_eq!(
            p,
            AccessPattern::Affine {
                base: AddressBase::Global(0x600100),
                scale: 8,
                offset: 0
            }
        );
    }

    #[test]
    fn pointer_affine_access() {
        let m = MemRef::base_index(Reg::R8, Reg::R4, 8).with_disp(16);
        let p = classify_pattern(&m, Some(Reg::R4), &inv(&[Reg::R8]));
        assert_eq!(
            p,
            AccessPattern::Affine {
                base: AddressBase::Reg(Reg::R8),
                scale: 8,
                offset: 16
            }
        );
    }

    #[test]
    fn stack_slot_spill_and_invariant_accesses() {
        let m = MemRef::base_disp(Reg::FP, -24);
        assert_eq!(
            classify_pattern(&m, Some(Reg::R4), &inv(&[])),
            AccessPattern::StackSlot { offset: -24 }
        );
        let m = MemRef::base_disp(Reg::SP, 0);
        assert_eq!(
            classify_pattern(&m, Some(Reg::R4), &inv(&[])),
            AccessPattern::Spill
        );
        let m = MemRef::absolute(0x600040);
        assert_eq!(
            classify_pattern(&m, Some(Reg::R4), &inv(&[])),
            AccessPattern::Invariant {
                base: AddressBase::Global(0x600040),
                offset: 0
            }
        );
        let m = MemRef::base_disp(Reg::R9, 8);
        assert_eq!(
            classify_pattern(&m, Some(Reg::R4), &inv(&[Reg::R9])),
            AccessPattern::Invariant {
                base: AddressBase::Reg(Reg::R9),
                offset: 8
            }
        );
    }

    #[test]
    fn non_invariant_index_is_unknown() {
        // a[b[i]] style indirect access: index register is written in the loop
        // and not derived from the induction variable.
        let m = MemRef {
            base: None,
            index: Some(Reg::R5),
            scale: 8,
            disp: 0x600000,
        };
        assert_eq!(
            classify_pattern(&m, Some(Reg::R4), &inv(&[])),
            AccessPattern::Unknown
        );
    }

    #[test]
    fn scratch_register_derived_from_induction_is_affine() {
        // mov r10, r4 ; sub r10, 1 ; mov ..., [0x600000 + r10*8]
        use crate::cfg::recover_functions;
        use crate::dom::Dominators;
        use crate::induction::find_induction;
        use crate::loops::find_loops;
        use janus_ir::{AsmBuilder, Cond};

        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.push(Inst::mov(Operand::reg(Reg::R4), Operand::imm(1)));
        asm.label("loop");
        asm.push(Inst::mov(Operand::reg(Reg::R10), Operand::reg(Reg::R4)));
        asm.push(Inst::alu(
            AluOp::Sub,
            Operand::reg(Reg::R10),
            Operand::imm(1),
        ));
        asm.push(Inst::mov(
            Operand::reg(Reg::R11),
            Operand::mem(MemRef {
                base: None,
                index: Some(Reg::R10),
                scale: 8,
                disp: 0x600000,
            }),
        ));
        asm.push(Inst::mov(
            Operand::mem(MemRef {
                base: None,
                index: Some(Reg::R4),
                scale: 8,
                disp: 0x600000,
            }),
            Operand::reg(Reg::R11),
        ));
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R4),
            Operand::imm(1),
        ));
        asm.push(Inst::cmp(Operand::reg(Reg::R4), Operand::imm(64)));
        asm.push_branch(Cond::Lt, "loop");
        asm.push(Inst::Halt);
        let bin = asm.finish_binary("main").unwrap();
        let f = recover_functions(&bin).unwrap().remove(0);
        let doms = Dominators::compute(&f);
        let loops = find_loops(&f, &doms);
        let iv = find_induction(&f, &loops[0]).unwrap();
        let accesses = collect_accesses(&f, &loops[0], Some(&iv));
        let read = accesses.iter().find(|a| !a.is_write).unwrap();
        assert_eq!(
            read.pattern,
            AccessPattern::Affine {
                base: AddressBase::Global(0x600000 - 8),
                scale: 8,
                offset: 0
            },
            "a[i-1] is an affine walk starting 8 bytes below the array base"
        );
    }

    #[test]
    fn static_range_of_affine_access() {
        let acc = MemAccess {
            addr: 0x400100,
            is_write: true,
            mem: MemRef::absolute(0),
            width: 8,
            pattern: AccessPattern::Affine {
                base: AddressBase::Global(0x600000),
                scale: 8,
                offset: 0,
            },
        };
        let (lo, hi) = acc.static_range(Some(100), 1).unwrap();
        assert_eq!(lo, 0x600000);
        assert_eq!(hi, 0x600000 + 99 * 8 + 8);
        assert!(acc.static_range(None, 1).is_none());

        let inv_acc = MemAccess {
            pattern: AccessPattern::Invariant {
                base: AddressBase::Global(0x600800),
                offset: 0,
            },
            ..acc
        };
        assert_eq!(inv_acc.static_range(Some(5), 1), Some((0x600800, 0x600808)));
    }

    #[test]
    fn vector_access_width_is_respected() {
        let _ = Operand::imm(0);
        let acc = MemAccess {
            addr: 0,
            is_write: false,
            mem: MemRef::absolute(0x600000),
            width: 32,
            pattern: AccessPattern::Affine {
                base: AddressBase::Global(0x600000),
                scale: 8,
                offset: 0,
            },
        };
        let (_, hi) = acc.static_range(Some(4), 4).unwrap();
        // last iteration starts at 0x600000 + 3*4*8 and touches 32 bytes.
        assert_eq!(hi, 0x600000 + 96 + 32);
    }
}
