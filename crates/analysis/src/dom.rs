//! Dominator analysis over a function CFG.

use crate::cfg::{BlockId, FunctionCfg};

/// Dominator sets for every block of a function, computed with the classic
/// iterative data-flow algorithm.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `doms[b]` is the set of blocks that dominate `b` (including `b`),
    /// encoded as a sorted vector.
    doms: Vec<Vec<BlockId>>,
}

impl Dominators {
    /// Computes dominators for `func`.
    #[must_use]
    pub fn compute(func: &FunctionCfg) -> Dominators {
        let n = func.blocks.len();
        if n == 0 {
            return Dominators { doms: Vec::new() };
        }
        let all: Vec<BlockId> = (0..n).collect();
        let mut doms: Vec<Vec<BlockId>> = vec![all.clone(); n];
        doms[0] = vec![0];
        let mut changed = true;
        while changed {
            changed = false;
            for b in 1..n {
                let preds = &func.blocks[b].preds;
                let mut new: Option<Vec<BlockId>> = None;
                for &p in preds {
                    new = Some(match new {
                        None => doms[p].clone(),
                        Some(cur) => intersect(&cur, &doms[p]),
                    });
                }
                let mut new = new.unwrap_or_default();
                if !new.contains(&b) {
                    new.push(b);
                    new.sort_unstable();
                }
                if new != doms[b] {
                    doms[b] = new;
                    changed = true;
                }
            }
        }
        Dominators { doms }
    }

    /// Returns `true` if block `a` dominates block `b`.
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.doms
            .get(b)
            .is_some_and(|d| d.binary_search(&a).is_ok())
    }

    /// The full dominator set of `b`.
    #[must_use]
    pub fn dominators_of(&self, b: BlockId) -> &[BlockId] {
        &self.doms[b]
    }
}

fn intersect(a: &[BlockId], b: &[BlockId]) -> Vec<BlockId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::recover_functions;
    use janus_ir::{AluOp, AsmBuilder, Cond, Inst, Operand, Reg};

    #[test]
    fn diamond_dominance() {
        // entry -> (then | else) -> join
        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.push(Inst::cmp(Operand::reg(Reg::R0), Operand::imm(0)));
        asm.push_branch(Cond::Eq, "else_b");
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R1),
            Operand::imm(1),
        ));
        asm.push_jmp("join");
        asm.label("else_b");
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R1),
            Operand::imm(2),
        ));
        asm.label("join");
        asm.push(Inst::Halt);
        let bin = asm.finish_binary("main").unwrap();
        let f = &recover_functions(&bin).unwrap()[0];
        let doms = Dominators::compute(f);
        // The entry block dominates everything.
        for b in 0..f.blocks.len() {
            assert!(doms.dominates(0, b));
        }
        // Neither branch arm dominates the join block.
        let join = f
            .blocks
            .iter()
            .find(|b| matches!(b.terminator().map(|d| &d.inst), Some(Inst::Halt)))
            .unwrap()
            .id;
        let arms: Vec<_> = f
            .blocks
            .iter()
            .filter(|b| b.id != 0 && b.id != join)
            .map(|b| b.id)
            .collect();
        for arm in arms {
            assert!(
                !doms.dominates(arm, join),
                "arm {arm} must not dominate join"
            );
        }
        assert_eq!(doms.dominators_of(0), &[0]);
    }

    #[test]
    fn every_block_dominates_itself() {
        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.label("l");
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R0),
            Operand::imm(1),
        ));
        asm.push(Inst::cmp(Operand::reg(Reg::R0), Operand::imm(5)));
        asm.push_branch(Cond::Lt, "l");
        asm.push(Inst::Halt);
        let bin = asm.finish_binary("main").unwrap();
        let f = &recover_functions(&bin).unwrap()[0];
        let doms = Dominators::compute(f);
        for b in 0..f.blocks.len() {
            assert!(doms.dominates(b, b));
        }
    }
}
